// Shared experiment harness: one protocol for FriendSeeker and every
// baseline, plus the stratified analyses behind Fig 12/13.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "core/pipeline.h"
#include "data/synthetic.h"
#include "eval/pairs.h"
#include "ml/metrics.h"

namespace fs::eval {

/// A fully-prepared experiment: dataset + labeled 70/30 pair split.
struct Experiment {
  data::Dataset dataset;
  PairSplit split;
  std::string name;
};

/// Builds the standard experiment for a synthetic world preset.
Experiment make_experiment(const data::SyntheticWorldConfig& world_config,
                           const PairSamplingConfig& sampling = {},
                           double train_fraction = 0.7,
                           std::uint64_t split_seed = 7);

/// Same, but over an existing dataset (obfuscation benches re-use the
/// original pair split with a perturbed dataset).
Experiment make_experiment(data::Dataset dataset, const std::string& name,
                           const PairSamplingConfig& sampling = {},
                           double train_fraction = 0.7,
                           std::uint64_t split_seed = 7);

/// Runs a baseline attack on the experiment; returns test-set metrics.
ml::Prf run_attack(baselines::FriendshipAttack& attack,
                   const Experiment& experiment);

/// FriendSeeker behind the common FriendshipAttack interface, so the
/// comparison benches treat all five attacks identically. Also exposes the
/// last full pipeline result (per-iteration records for Fig 10).
class FriendSeekerAttack final : public baselines::FriendshipAttack {
 public:
  explicit FriendSeekerAttack(const core::FriendSeekerConfig& config)
      : seeker_(config) {}

  std::string name() const override { return "friendseeker"; }

  std::vector<int> infer(const data::Dataset& dataset,
                         const std::vector<data::UserPair>& train_pairs,
                         const std::vector<int>& train_labels,
                         const std::vector<data::UserPair>& test_pairs)
      override;

  const core::FriendSeekerResult& last_result() const { return last_result_; }

 private:
  core::FriendSeeker seeker_;
  core::FriendSeekerResult last_result_;
};

/// A FriendSeeker configuration tuned for the laptop-scale synthetic
/// worlds (the paper-default hyperparameters, scaled: tau = 7 days,
/// d = 64, sigma = 200).
core::FriendSeekerConfig default_seeker_config();

/// The four baselines with sensible defaults, name -> instance.
std::vector<std::unique_ptr<baselines::FriendshipAttack>> make_baselines();

// ---- Stratified analyses ----

/// F1 computed only over test pairs selected by `keep`.
ml::Prf stratified_prf(const std::vector<data::UserPair>& test_pairs,
                       const std::vector<int>& test_labels,
                       const std::vector<int>& predictions,
                       const std::function<bool(const data::UserPair&)>& keep);

/// Buckets for "number of common locations" (Fig 12) and "number of
/// check-ins owned by a pair" (Fig 13).
std::vector<std::size_t> pair_common_locations(
    const data::Dataset& dataset, const std::vector<data::UserPair>& pairs);
std::vector<std::size_t> pair_checkin_counts(
    const data::Dataset& dataset, const std::vector<data::UserPair>& pairs);

}  // namespace fs::eval
