#include "eval/pairs.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "ml/split.h"
#include "util/rng.h"

namespace fs::eval {

std::size_t LabeledPairs::positives() const {
  return static_cast<std::size_t>(
      std::count_if(labels.begin(), labels.end(),
                    [](int y) { return y != 0; }));
}

LabeledPairs sample_candidate_pairs(const data::Dataset& dataset,
                                    const PairSamplingConfig& config) {
  const graph::Graph& g = dataset.friendships();
  util::Rng rng(config.seed);

  LabeledPairs out;
  std::set<data::UserPair> used;

  // Positives: every ground-truth friendship.
  for (const graph::Edge& e : g.edges()) {
    const data::UserPair p{e.a, e.b};
    out.pairs.push_back(p);
    out.labels.push_back(1);
    used.insert(p);
  }
  const std::size_t positives = out.pairs.size();
  if (positives == 0)
    throw std::invalid_argument(
        "sample_candidate_pairs: ground-truth graph has no edges");

  const auto negatives_target = static_cast<std::size_t>(
      config.negative_ratio * static_cast<double>(positives));
  const auto hard_target = static_cast<std::size_t>(
      config.hard_negative_fraction *
      static_cast<double>(negatives_target));

  // Hard negatives: friend-of-friend pairs that are not friends.
  std::size_t hard = 0;
  std::size_t attempts = 0;
  while (hard < hard_target && attempts++ < hard_target * 80) {
    const auto pivot =
        static_cast<data::UserId>(rng.index(dataset.user_count()));
    const auto& nbrs = g.neighbors(pivot);
    if (nbrs.size() < 2) continue;
    const data::UserId a = nbrs[rng.index(nbrs.size())];
    const data::UserId b = nbrs[rng.index(nbrs.size())];
    if (a == b || g.has_edge(a, b)) continue;
    const data::UserPair p = data::make_pair_ordered(a, b);
    if (!used.insert(p).second) continue;
    out.pairs.push_back(p);
    out.labels.push_back(0);
    ++hard;
  }

  // Random negatives for the remainder.
  attempts = 0;
  while (out.pairs.size() < positives + negatives_target &&
         attempts++ < negatives_target * 200) {
    const auto a = static_cast<data::UserId>(rng.index(dataset.user_count()));
    const auto b = static_cast<data::UserId>(rng.index(dataset.user_count()));
    if (a == b || g.has_edge(a, b)) continue;
    const data::UserPair p = data::make_pair_ordered(a, b);
    if (!used.insert(p).second) continue;
    out.pairs.push_back(p);
    out.labels.push_back(0);
  }
  return out;
}

PairSplit split_pairs(const LabeledPairs& all, double train_fraction,
                      std::uint64_t seed) {
  util::Rng rng(seed);
  const ml::SplitIndices idx =
      ml::stratified_split(all.labels, train_fraction, rng);
  PairSplit out;
  out.train_pairs = ml::take(all.pairs, idx.train);
  out.train_labels = ml::take(all.labels, idx.train);
  out.test_pairs = ml::take(all.pairs, idx.test);
  out.test_labels = ml::take(all.labels, idx.test);
  return out;
}

}  // namespace fs::eval
