// FNV-1a result fingerprints shared by perf_bench, the golden regression
// test, and the blocking differential tests.
#pragma once

#include <string>

#include "core/pipeline.h"
#include "graph/graph.h"

namespace fs::eval {

/// FNV-1a over everything an attack run computes: per-pair predictions,
/// score bit patterns, and the final graph's adjacency. Two runs are
/// byte-identical iff their digests match.
std::string result_digest(const core::FriendSeekerResult& result);

/// FNV-1a over the final graph's adjacency alone. Unlike result_digest,
/// this is comparable across blocking modes: a blocked run never scores the
/// pruned pairs (their scores differ from a dense run's), but the candidate
/// gate is part of the model, so the inferred graphs must still match bit
/// for bit — this digest is what the differential tests pin.
std::string graph_digest(const graph::Graph& g);

/// Compiler + C library + fs::kern ISA-path fingerprint. Result digests are
/// only bit-comparable between builds that agree on it (FP contraction,
/// libm, and per-ISA accumulation order legitimately change low-order
/// bits), so golden/diff comparisons gate their exact-digest checks on it
/// and fall back to tolerance-banded quality across fingerprints.
std::string toolchain_fingerprint();

/// FNV-1a over a string (canonical-JSON config fingerprints and cache keys
/// share one hash so fingerprints are comparable across tools).
std::string text_digest(const std::string& text);

}  // namespace fs::eval
