#include "eval/harness.h"

#include "baselines/colocation.h"
#include "baselines/distance.h"
#include "baselines/usergraph.h"
#include "baselines/walk2friends.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace fs::eval {

Experiment make_experiment(const data::SyntheticWorldConfig& world_config,
                           const PairSamplingConfig& sampling,
                           double train_fraction, std::uint64_t split_seed) {
  data::SyntheticWorld world = data::generate_world(world_config);
  return make_experiment(std::move(world.dataset), world_config.name,
                         sampling, train_fraction, split_seed);
}

Experiment make_experiment(data::Dataset dataset, const std::string& name,
                           const PairSamplingConfig& sampling,
                           double train_fraction, std::uint64_t split_seed) {
  Experiment e;
  const LabeledPairs all = sample_candidate_pairs(dataset, sampling);
  e.split = split_pairs(all, train_fraction, split_seed);
  e.dataset = std::move(dataset);
  e.name = name;
  return e;
}

ml::Prf run_attack(baselines::FriendshipAttack& attack,
                   const Experiment& experiment) {
  obs::Span timer("eval.attack.run");
  const std::vector<int> predictions =
      attack.infer(experiment.dataset, experiment.split.train_pairs,
                   experiment.split.train_labels,
                   experiment.split.test_pairs);
  const ml::Prf result = ml::prf(experiment.split.test_labels, predictions);
  util::log_info(attack.name(), " on ", experiment.name,
                 ": F1=", result.f1, " P=", result.precision,
                 " R=", result.recall, " (", timer.seconds(), "s)");
  return result;
}

std::vector<int> FriendSeekerAttack::infer(
    const data::Dataset& dataset,
    const std::vector<data::UserPair>& train_pairs,
    const std::vector<int>& train_labels,
    const std::vector<data::UserPair>& test_pairs) {
  last_result_ = seeker_.run(dataset, train_pairs, train_labels, test_pairs);
  return last_result_.test_predictions;
}

core::FriendSeekerConfig default_seeker_config() {
  core::FriendSeekerConfig cfg;
  cfg.sigma = 200;
  cfg.tau_days = 7.0;
  cfg.k = 3;
  cfg.presence.feature_dim = 64;
  cfg.presence.epochs = 14;
  cfg.presence.max_autoencoder_rows = 600;
  return cfg;
}

std::vector<std::unique_ptr<baselines::FriendshipAttack>> make_baselines() {
  std::vector<std::unique_ptr<baselines::FriendshipAttack>> out;
  out.push_back(std::make_unique<baselines::CoLocationAttack>());
  out.push_back(std::make_unique<baselines::DistanceAttack>());
  out.push_back(std::make_unique<baselines::Walk2FriendsAttack>());
  out.push_back(std::make_unique<baselines::UserGraphAttack>());
  return out;
}

ml::Prf stratified_prf(
    const std::vector<data::UserPair>& test_pairs,
    const std::vector<int>& test_labels,
    const std::vector<int>& predictions,
    const std::function<bool(const data::UserPair&)>& keep) {
  std::vector<int> truth, pred;
  for (std::size_t i = 0; i < test_pairs.size(); ++i) {
    if (!keep(test_pairs[i])) continue;
    truth.push_back(test_labels[i]);
    pred.push_back(predictions[i]);
  }
  return ml::prf(truth, pred);
}

std::vector<std::size_t> pair_common_locations(
    const data::Dataset& dataset, const std::vector<data::UserPair>& pairs) {
  std::vector<std::size_t> out;
  out.reserve(pairs.size());
  for (const auto& [a, b] : pairs)
    out.push_back(dataset.common_poi_count(a, b));
  return out;
}

std::vector<std::size_t> pair_checkin_counts(
    const data::Dataset& dataset, const std::vector<data::UserPair>& pairs) {
  std::vector<std::size_t> out;
  out.reserve(pairs.size());
  for (const auto& [a, b] : pairs)
    out.push_back(dataset.checkin_count(a) + dataset.checkin_count(b));
  return out;
}

}  // namespace fs::eval
