// Named bench/test presets: world + seeker scaling shared by perf_bench,
// the golden regression test, and the differential blocking tests — one
// definition so a preset drift cannot silently fork the bench from the
// tests that pin it.
#pragma once

#include <string>

#include "core/pipeline.h"
#include "data/synthetic.h"

namespace fs::eval {

/// World + seeker scaling per preset. "tiny" is sized for CI smoke runs
/// (seconds); the named presets match the bench suite's sweep scale.
struct BenchPreset {
  data::SyntheticWorldConfig world;
  core::FriendSeekerConfig seeker;
};

/// Returns the preset by name: "tiny", "gowalla", or "brightkite".
/// Throws std::invalid_argument for anything else.
BenchPreset bench_preset(const std::string& name);

}  // namespace fs::eval
