#include "eval/digest.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "kern/kern.h"

namespace fs::eval {

namespace {

struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ULL;

  void mix(std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (v >> shift) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }

  void mix_graph(const graph::Graph& g) {
    mix(g.node_count());
    for (graph::NodeId v = 0; v < g.node_count(); ++v)
      for (graph::NodeId w : g.neighbors(v))
        if (v < w) {
          mix(v);
          mix(w);
        }
  }

  std::string hex() const {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
  }
};

}  // namespace

std::string result_digest(const core::FriendSeekerResult& result) {
  Fnv fnv;
  for (int p : result.test_predictions)
    fnv.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(p)));
  for (double s : result.test_scores) {
    std::uint64_t bits;
    std::memcpy(&bits, &s, sizeof(bits));
    fnv.mix(bits);
  }
  fnv.mix_graph(result.final_graph);
  return fnv.hex();
}

std::string graph_digest(const graph::Graph& g) {
  Fnv fnv;
  fnv.mix_graph(g);
  return fnv.hex();
}

std::string toolchain_fingerprint() {
  std::ostringstream oss;
  oss << __VERSION__;
#ifdef __GLIBC__
  oss << " glibc-" << __GLIBC__ << "." << __GLIBC_MINOR__;
#endif
  oss << " kern-" << kern::path_name(kern::active_path());
  return oss.str();
}

std::string text_digest(const std::string& text) {
  Fnv fnv;
  for (unsigned char ch : text) {
    fnv.h ^= ch;
    fnv.h *= 0x100000001b3ULL;
  }
  return fnv.hex();
}

}  // namespace fs::eval
