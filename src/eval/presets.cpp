#include "eval/presets.h"

#include <stdexcept>

#include "eval/harness.h"

namespace fs::eval {

BenchPreset bench_preset(const std::string& name) {
  BenchPreset p;
  p.seeker = default_seeker_config();
  if (name == "tiny") {
    p.world = data::gowalla_like();
    p.world.user_count = 72;
    p.world.poi_count = 200;
    p.world.weeks = 4;
    p.seeker.sigma = 40;
    p.seeker.presence.feature_dim = 32;
    p.seeker.presence.epochs = 6;
    p.seeker.presence.max_autoencoder_rows = 300;
    p.seeker.max_iterations = 3;
    p.seeker.max_svm_train_rows = 600;
    return p;
  }
  if (name == "gowalla" || name == "brightkite") {
    p.world = name == "gowalla" ? data::gowalla_like()
                                : data::brightkite_like();
    p.world.user_count = 320;
    p.world.poi_count = 900;
    p.world.weeks = 10;
    p.world.city_count = 12;
    p.seeker.sigma = 45;
    p.seeker.presence.feature_dim = 48;
    p.seeker.presence.epochs = 10;
    p.seeker.presence.max_autoencoder_rows = 450;
    p.seeker.max_iterations = 5;
    p.seeker.max_svm_train_rows = 1200;
    // The bench presets measure the pruning regime, so they pin the
    // aggressive blocking point: the paper's exact same-slot co-occurrence
    // definition (instead of the recall-padded +-1-slot default) and a
    // 2-hop expansion (the hub-heavy synthetic strong graph makes 3 hops
    // near-total). Quality is graded under exactly this predicate.
    p.seeker.blocking.slot_tolerance = 0;
    p.seeker.blocking.hop_expansion = 2;
    return p;
  }
  throw std::invalid_argument("unknown preset '" + name +
                              "' (tiny | gowalla | brightkite)");
}

}  // namespace fs::eval
