// Candidate-pair sampling protocol.
//
// F1 over a balanced pair population is the paper's metric regime; the
// protocol takes every ground-truth friend pair as a positive and samples
// an equal-sized negative set, mixing "hard" negatives (2-hop neighbors,
// same-city strangers — the false-positive hazard) with random ones.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace fs::eval {

struct PairSamplingConfig {
  double negative_ratio = 1.0;  // negatives per positive
  /// Fraction of negatives drawn from 2-hop (friend-of-friend) pairs.
  /// Real populations are dominated by strangers with no common friends
  /// (Table II: ~81-92 % of non-friends share none), so hard negatives
  /// stay a minority of the sample.
  double hard_negative_fraction = 0.45;
  std::uint64_t seed = 77;
};

struct LabeledPairs {
  std::vector<data::UserPair> pairs;
  std::vector<int> labels;

  std::size_t positives() const;
};

/// Builds the labeled candidate-pair set from the dataset's ground truth.
LabeledPairs sample_candidate_pairs(const data::Dataset& dataset,
                                    const PairSamplingConfig& config = {});

/// 70/30-style stratified split of a labeled pair set.
struct PairSplit {
  std::vector<data::UserPair> train_pairs;
  std::vector<int> train_labels;
  std::vector<data::UserPair> test_pairs;
  std::vector<int> test_labels;
};

PairSplit split_pairs(const LabeledPairs& all, double train_fraction,
                      std::uint64_t seed);

}  // namespace fs::eval
