// Thin RAII + setup helpers over POSIX TCP sockets.
//
// Everything here is deliberately boring: an owning fd wrapper and two
// constructors (listen, connect) that fail loudly with IoError. All actual
// I/O goes through the EINTR-safe helpers in util/binary_io — fs::net never
// calls read/write/accept raw.
//
// IPv4 only (the daemon binds loopback or an explicit interface address;
// name resolution is out of scope for a measurement harness).
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace fs::net {

/// Owning file descriptor; closes on destruction. Move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

/// Creates a non-blocking listening socket bound to host:port (port 0 =
/// kernel-assigned ephemeral). SO_REUSEADDR is set so a restarted daemon
/// can rebind its port while old connections linger in TIME_WAIT. Throws
/// IoError on any failure.
Fd listen_tcp(const std::string& host, std::uint16_t port, int backlog = 64);

/// Blocking connect to host:port. Throws IoError on failure.
Fd connect_tcp(const std::string& host, std::uint16_t port);

/// The locally bound port of a socket (resolves an ephemeral bind).
std::uint16_t local_port(int fd);

/// Sets O_NONBLOCK; returns false (errno set) on failure.
bool set_nonblocking(int fd);

/// Sets SO_RCVTIMEO so blocking reads give up after `timeout_ms` (0 =
/// never). Returns false on failure.
bool set_recv_timeout(int fd, double timeout_ms);

}  // namespace fs::net
