// Minimal HTTP/1.1 for the scrape endpoints — just enough to serve GET
// /metrics, /healthz, and /streamz to curl and a Prometheus scraper.
//
// Deliberate non-goals: keep-alive (every response carries
// `Connection: close`), request bodies, chunked encoding, TLS. The scrape
// endpoints are read-only introspection on a trusted network; the server's
// connection cap, header-size bound, and idle deadline do the hardening.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace fs::net {

struct HttpRequest {
  std::string method;  // "GET"
  std::string target;  // "/metrics" (query string stripped)
};

enum class HttpParseStatus { kNeedMore, kRequest, kError };

/// Parses one request head out of `buffer` (everything up to the blank
/// line; headers themselves are skipped — the endpoints need none). On
/// kRequest, `consumed` is the bytes of the head including its terminator.
/// kError means an unparseable request line.
HttpParseStatus parse_http_request(std::string_view buffer, HttpRequest& out,
                                   std::size_t& consumed);

/// Serializes a full response (status line, minimal headers with
/// Content-Length and Connection: close, body).
std::string http_response(int status, std::string_view content_type,
                          std::string_view body);

}  // namespace fs::net
