#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/error.h"

namespace fs::net {

namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw IoError("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Fd listen_tcp(const std::string& host, std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid())
    throw IoError(std::string("socket() failed: ") + ::strerror(errno));
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  const sockaddr_in addr = make_addr(host, port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0)
    throw IoError("bind(" + host + ":" + std::to_string(port) +
                  ") failed: " + ::strerror(errno));
  if (::listen(fd.get(), backlog) != 0)
    throw IoError(std::string("listen() failed: ") + ::strerror(errno));
  if (!set_nonblocking(fd.get()))
    throw IoError(std::string("O_NONBLOCK failed: ") + ::strerror(errno));
  return fd;
}

Fd connect_tcp(const std::string& host, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid())
    throw IoError(std::string("socket() failed: ") + ::strerror(errno));
  const sockaddr_in addr =
      make_addr(host.empty() ? "127.0.0.1" : host, port);
  while (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr) != 0) {
    if (errno == EINTR) continue;
    throw IoError("connect(" + host + ":" + std::to_string(port) +
                  ") failed: " + ::strerror(errno));
  }
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw IoError(std::string("getsockname() failed: ") + ::strerror(errno));
  return ntohs(addr.sin_port);
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool set_recv_timeout(int fd, double timeout_ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      (timeout_ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) == 0;
}

}  // namespace fs::net
