// FeedClient: replays check-in lines over the wire protocol with retry.
//
// The client is the other half of the at-most-once contract: it keeps the
// full line list, asks the server (hello) how many items have already
// entered the pipeline, sends the remainder, and optionally commits —
// blocking until the server acks that the journal fsync covers everything
// sent. Disconnects anywhere in that sequence (network fault, injected
// net.feed.torn_send, daemon restart) are absorbed by reconnecting under
// the shared runtime::RetryPolicy (bounded attempts, exponential backoff,
// seeded jitter) and resuming from the server's watermark.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/runtime.h"

namespace fs::net {

struct FeedOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Retry budget across connect failures and mid-stream disconnects.
  runtime::RetryPolicy retry;
  /// Send a commit frame after the last line and wait for the durable ack.
  bool commit = true;
  /// Read deadline while waiting for hello/ack; a timeout counts as a
  /// disconnect and retries.
  double ack_timeout_ms = 30000.0;
};

struct FeedReport {
  std::uint64_t lines_total = 0;   // lines offered (blank lines filtered)
  std::uint64_t lines_sent = 0;    // checkin frames sent, incl. resends
  std::uint64_t reconnects = 0;    // connections after the first
  std::uint64_t durable_watermark = 0;  // from the final ack
  bool committed = false;
};

/// Feeds `lines` (already blank-filtered) to host:port. Throws IoError once
/// the retry budget is exhausted without completing.
FeedReport feed_lines(const std::vector<std::string>& lines,
                      const FeedOptions& options);

/// Loads a SNAP file (blank lines filtered, like ReplaySource) and feeds
/// it.
FeedReport feed_file(const std::string& path, const FeedOptions& options);

}  // namespace fs::net
