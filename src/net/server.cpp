#include "net/server.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>

#include "net/http.h"
#include "obs/metrics.h"
#include "util/binary_io.h"
#include "util/error.h"
#include "util/failpoint.h"

namespace fs::net {

namespace {

namespace fp = util::failpoint;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point then, Clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - then).count();
}

/// A printable, bounded description of rejected bytes — what lands in the
/// quarantine sample for a poisoned frame. Never the raw bytes: they are by
/// definition garbage and may be binary.
std::string poison_description(FrameError error, std::size_t bytes) {
  return std::string("net frame rejected (") + frame_error_name(error) +
         ", " + std::to_string(bytes) + " buffered bytes)";
}

}  // namespace

struct NetServer::Conn {
  enum class Kind { kUnknown, kFeed, kHttp };

  Fd fd;
  Kind kind = Kind::kUnknown;
  std::string rbuf;       // protocol-detection / HTTP head staging
  FrameDecoder decoder;   // feed protocol
  std::string wbuf;
  std::size_t woff = 0;
  Clock::time_point last_activity;
  bool wants_ack = false;
  std::uint64_t ack_target = 0;
  bool close_after_write = false;
  bool dead = false;

  bool has_pending_write() const { return woff < wbuf.size(); }
};

class NetServer::Impl {
 public:
  explicit Impl(NetConfig config) : config_(std::move(config)) {}

  ~Impl() { stop(); }

  void start() {
    if (running_.load()) return;
    listener_ = listen_tcp(config_.bind_host, config_.port);
    port_ = local_port(listener_.get());
    stop_requested_.store(false);
    accepting_.store(true);
    register_metrics();
    running_.store(true);
    thread_ = std::thread([this] { loop(); });
  }

  void stop_accepting() { accepting_.store(false); }

  void stop() {
    if (!running_.load() && !thread_.joinable()) return;
    stop_requested_.store(true);
    if (thread_.joinable()) thread_.join();
    running_.store(false);
  }

  bool running() const { return running_.load(); }
  std::uint16_t port() const { return port_; }

  std::size_t drain(std::size_t max_items,
                    std::vector<stream::SourceItem>& out) {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t moved = 0;
    while (moved < max_items && !queue_.empty()) {
      out.push_back(std::move(queue_.front()));
      queue_.pop_front();
      ++moved;
    }
    return moved;
  }

  void add_resume_base(std::uint64_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    resume_base_ += n;
  }

  bool commit_pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_commits_ > 0;
  }

  void publish_durable(std::uint64_t watermark) {
    std::lock_guard<std::mutex> lock(mu_);
    if (watermark > durable_) durable_ = watermark;
  }

  void publish_streamz(std::string json) {
    std::lock_guard<std::mutex> lock(mu_);
    streamz_ = std::move(json);
  }

  NetStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  void register_metrics() {
    auto& m = obs::metrics();
    ctr_conns_ = &m.counter("net.connections_total", {},
                            "TCP connections accepted");
    ctr_shed_ = &m.counter("net.connections_shed_total", {},
                           "connections closed at the connection cap");
    ctr_reaped_ = &m.counter("net.connections_reaped_total", {},
                             "connections killed by the idle deadline");
    ctr_accept_fail_ = &m.counter("net.accept_failures_total", {},
                                  "failed accept(2) calls (incl. injected)");
    ctr_frames_ = &m.counter("net.frames_total", {},
                             "well-formed wire frames decoded");
    ctr_rejected_ = &m.counter("net.frames_rejected_total", {},
                               "frames poisoned to quarantine (CRC/framing)");
    ctr_http_ = &m.counter("net.http_requests_total", {},
                           "HTTP scrape requests served");
    ctr_acked_ = &m.counter("net.commits_acked_total", {},
                            "durable commit acknowledgements sent");
    ctr_bytes_in_ = &m.counter("net.bytes_received_total", {},
                               "bytes read from peers");
    ctr_bytes_out_ = &m.counter("net.bytes_sent_total", {},
                                "bytes written to peers");
    gauge_active_ = &m.gauge("net.connections_active", {},
                             "currently established connections");
  }

  void loop() {
    std::vector<pollfd> fds;
    while (!stop_requested_.load()) {
      fds.clear();
      const bool accepting = accepting_.load() && listener_.valid();
      if (accepting)
        fds.push_back(pollfd{listener_.get(), POLLIN, 0});
      const bool queue_full = queue_is_full();
      for (auto& conn : conns_) {
        short events = 0;
        // A full item queue pauses reads on feed sockets only: TCP
        // backpressure reaches the sender while scrapes stay live.
        if (!(queue_full && conn->kind == Conn::Kind::kFeed)) events |= POLLIN;
        if (conn->has_pending_write()) events |= POLLOUT;
        fds.push_back(pollfd{conn->fd.get(), events, 0});
      }
      const int timeout = static_cast<int>(config_.poll_interval_ms);
      const int ready = ::poll(fds.data(), fds.size(), timeout < 1 ? 1 : timeout);
      if (ready < 0 && errno != EINTR) break;

      std::size_t index = 0;
      if (accepting) {
        if (fds[0].revents & POLLIN) accept_ready();
        index = 1;
      }
      for (std::size_t i = 0; i < conns_.size(); ++i, ++index) {
        Conn& conn = *conns_[i];
        const short revents = index < fds.size() ? fds[index].revents : 0;
        if (conn.dead) continue;
        if (fp::fail("net.conn.drop")) {
          conn.dead = true;  // injected mid-stream disconnect
          continue;
        }
        if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
          // Flush what the peer already sent, then close below on EOF.
          read_ready(conn);
          if (!conn.dead) conn.dead = true;
          continue;
        }
        if (revents & POLLIN) read_ready(conn);
        // Feed decode is retried every iteration, not only on fresh bytes:
        // frames may be sitting in the decoder because the queue was full.
        if (!conn.dead && conn.kind == Conn::Kind::kFeed) decode_frames(conn);
        if (!conn.dead && (revents & POLLOUT)) write_ready(conn);
      }

      send_ready_acks();
      reap_idle();
      remove_dead();
    }
    // Shutdown: close everything; torn tails are still accounted.
    for (auto& conn : conns_) conn->dead = true;
    remove_dead();
    listener_.reset();
    running_.store(false);
  }

  bool queue_is_full() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size() >= config_.queue_capacity;
  }

  void accept_ready() {
    while (true) {
      if (fp::fail("net.accept.fail")) {
        // Injected transient accept(2) failure: counted, connection stays
        // in the backlog and completes on a later iteration.
        bump([](NetStats& s) { ++s.accept_failures; });
        ctr_accept_fail_->add(1);
        return;
      }
      const int raw = util::accept_eintr(listener_.get(), nullptr, nullptr);
      if (raw < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        bump([](NetStats& s) { ++s.accept_failures; });
        ctr_accept_fail_->add(1);
        return;
      }
      Fd fd(raw);
      if (conns_.size() >= config_.max_connections) {
        // Shed: accept-then-close so the peer gets a clean reset instead of
        // an unbounded backlog, and the overflow is visible in metrics.
        bump([](NetStats& s) { ++s.connections_shed; });
        ctr_shed_->add(1);
        continue;
      }
      set_nonblocking(fd.get());
      auto conn = std::make_unique<Conn>();
      conn->fd = std::move(fd);
      conn->last_activity = Clock::now();
      conns_.push_back(std::move(conn));
      bump([this](NetStats& s) {
        ++s.connections_total;
        s.connections_active = conns_.size();
      });
      ctr_conns_->add(1);
      gauge_active_->set(static_cast<double>(conns_.size()));
    }
  }

  void read_ready(Conn& conn) {
    char buf[1 << 16];
    while (true) {
      const ssize_t n = util::read_eintr(conn.fd.get(), buf, sizeof buf);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        conn.dead = true;
        return;
      }
      if (n == 0) {  // orderly EOF
        conn.dead = true;
        return;
      }
      conn.last_activity = Clock::now();
      bump([n](NetStats& s) { s.bytes_received += static_cast<std::uint64_t>(n); });
      ctr_bytes_in_->add(static_cast<std::uint64_t>(n));
      ingest_bytes(conn, buf, static_cast<std::size_t>(n));
      if (conn.dead) return;
      if (static_cast<std::size_t>(n) < sizeof buf) return;
    }
  }

  void ingest_bytes(Conn& conn, const char* data, std::size_t bytes) {
    if (conn.kind == Conn::Kind::kUnknown) {
      conn.rbuf.append(data, bytes);
      if (conn.rbuf.size() < 4) return;
      if (std::memcmp(conn.rbuf.data(), "FSN1", 4) == 0) {
        conn.kind = Conn::Kind::kFeed;
        conn.decoder.feed(conn.rbuf.data(), conn.rbuf.size());
        conn.rbuf.clear();
        conn.rbuf.shrink_to_fit();
      } else {
        conn.kind = Conn::Kind::kHttp;
      }
    } else if (conn.kind == Conn::Kind::kFeed) {
      conn.decoder.feed(data, bytes);
      return;
    } else {
      conn.rbuf.append(data, bytes);
    }
    if (conn.kind == Conn::Kind::kHttp) handle_http(conn);
  }

  void handle_http(Conn& conn) {
    if (conn.rbuf.size() > config_.max_http_header_bytes) {
      queue_response(conn, http_response(431, "text/plain",
                                         "request head too large\n"));
      return;
    }
    HttpRequest request;
    std::size_t consumed = 0;
    switch (parse_http_request(conn.rbuf, request, consumed)) {
      case HttpParseStatus::kNeedMore:
        return;
      case HttpParseStatus::kError:
        queue_response(conn,
                       http_response(400, "text/plain", "bad request\n"));
        return;
      case HttpParseStatus::kRequest:
        break;
    }
    conn.rbuf.erase(0, consumed);
    bump([](NetStats& s) { ++s.http_requests; });
    ctr_http_->add(1);
    if (request.method != "GET") {
      queue_response(conn, http_response(405, "text/plain",
                                         "only GET is served here\n"));
      return;
    }
    if (request.target == "/metrics") {
      queue_response(conn,
                     http_response(200, "text/plain; version=0.0.4",
                                   obs::metrics().to_prometheus()));
    } else if (request.target == "/healthz") {
      queue_response(conn, http_response(200, "text/plain", "ok\n"));
    } else if (request.target == "/streamz") {
      queue_response(conn, http_response(200, "application/json",
                                         streamz_body()));
    } else {
      queue_response(conn, http_response(404, "text/plain", "not found\n"));
    }
  }

  std::string streamz_body() {
    std::string daemon_json;
    NetStats snapshot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      daemon_json = streamz_;
      snapshot = stats_;
      snapshot.connections_active = conns_.size();
    }
    if (daemon_json.empty()) daemon_json = "null";
    std::string net = "{";
    const auto field = [&net](const char* key, std::uint64_t value,
                              bool last = false) {
      net += std::string("\"") + key + "\":" + std::to_string(value) +
             (last ? "" : ",");
    };
    field("connections_total", snapshot.connections_total);
    field("connections_active", snapshot.connections_active);
    field("connections_shed", snapshot.connections_shed);
    field("connections_reaped", snapshot.connections_reaped);
    field("accept_failures", snapshot.accept_failures);
    field("frames_total", snapshot.frames_total);
    field("frames_rejected", snapshot.frames_rejected);
    field("torn_tails", snapshot.torn_tails);
    field("http_requests", snapshot.http_requests);
    field("commits_acked", snapshot.commits_acked);
    field("enqueued_total", snapshot.enqueued_total);
    field("bytes_received", snapshot.bytes_received);
    field("bytes_sent", snapshot.bytes_sent, /*last=*/true);
    net += "}";
    return "{\"daemon\":" + daemon_json + ",\"net\":" + net + "}\n";
  }

  void decode_frames(Conn& conn) {
    Frame frame;
    while (!conn.dead) {
      if (queue_is_full()) return;  // resumes next iteration
      const DecodeStatus status = conn.decoder.next(frame);
      if (status == DecodeStatus::kNeedMore) return;
      if (status == DecodeStatus::kError) {
        const FrameError error = conn.decoder.error();
        poison(conn, error);
        if (conn.decoder.can_resync()) {
          conn.decoder.resync();
          continue;
        }
        conn.dead = true;  // unframeable stream: no boundary to resync to
        return;
      }
      handle_frame(conn, frame);
    }
  }

  void handle_frame(Conn& conn, Frame& frame) {
    bump([](NetStats& s) { ++s.frames_total; });
    ctr_frames_->add(1);
    switch (frame.type) {
      case FrameType::kHello: {
        std::uint64_t watermark;
        {
          std::lock_guard<std::mutex> lock(mu_);
          watermark = resume_base_ + enqueued_total_;
        }
        queue_frame(conn, encode_frame_u64(FrameType::kHello, watermark));
        write_ready(conn);  // the client blocks on this; don't wait a poll
        break;
      }
      case FrameType::kCheckin: {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(
            stream::SourceItem{std::move(frame.payload), std::nullopt});
        ++enqueued_total_;
        ++stats_.enqueued_total;
        break;
      }
      case FrameType::kCommit: {
        std::lock_guard<std::mutex> lock(mu_);
        if (!conn.wants_ack) ++pending_commits_;
        conn.wants_ack = true;
        conn.ack_target = resume_base_ + enqueued_total_;
        break;
      }
      case FrameType::kAck:
        // Server-bound acks are a protocol violation; drop the peer.
        bump([](NetStats& s) { ++s.frames_rejected; });
        ctr_rejected_->add(1);
        conn.dead = true;
        break;
    }
  }

  /// Routes rejected bytes into the stream as a poison item: it consumes an
  /// ordinal downstream and lands in the quarantine census, so the loss is
  /// accounted exactly like a malformed check-in line would be.
  void poison(Conn& conn, FrameError error) {
    const auto reason = error == FrameError::kCrcMismatch
                            ? stream::RejectReason::kFrameCorrupt
                            : stream::RejectReason::kFrameMalformed;
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(stream::SourceItem{
        poison_description(error, conn.decoder.buffered()), reason});
    ++enqueued_total_;
    ++stats_.enqueued_total;
    ++stats_.frames_rejected;
    ctr_rejected_->add(1);
  }

  void queue_frame(Conn& conn, std::string frame) {
    conn.wbuf.erase(0, conn.woff);
    conn.woff = 0;
    conn.wbuf += frame;
  }

  void queue_response(Conn& conn, std::string response) {
    queue_frame(conn, std::move(response));
    conn.close_after_write = true;
  }

  void write_ready(Conn& conn) {
    while (conn.has_pending_write()) {
      std::size_t len = conn.wbuf.size() - conn.woff;
      const std::size_t writable = fp::truncate("net.write.torn", len);
      const ssize_t n =
          util::write_eintr(conn.fd.get(), conn.wbuf.data() + conn.woff,
                            writable == 0 ? 1 : writable);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        conn.dead = true;
        return;
      }
      conn.woff += static_cast<std::size_t>(n);
      conn.last_activity = Clock::now();
      bump([n](NetStats& s) { s.bytes_sent += static_cast<std::uint64_t>(n); });
      ctr_bytes_out_->add(static_cast<std::uint64_t>(n));
      if (writable < len) {
        // Injected torn write: the byte stream is now desynchronized with
        // the peer; close instead of sending a frame the decoder would
        // poison on the other end.
        conn.dead = true;
        return;
      }
    }
    if (conn.close_after_write) conn.dead = true;
  }

  void send_ready_acks() {
    std::uint64_t durable;
    {
      std::lock_guard<std::mutex> lock(mu_);
      durable = durable_;
    }
    for (auto& conn : conns_) {
      if (conn->dead || !conn->wants_ack) continue;
      if (durable < conn->ack_target) continue;
      {
        std::lock_guard<std::mutex> lock(mu_);
        conn->wants_ack = false;
        if (pending_commits_ > 0) --pending_commits_;
        ++stats_.commits_acked;
      }
      ctr_acked_->add(1);
      queue_frame(*conn, encode_frame_u64(FrameType::kAck, durable));
      // Kick the write immediately; POLLOUT picks up any remainder.
      write_ready(*conn);
    }
  }

  void reap_idle() {
    if (config_.idle_timeout_ms <= 0) return;
    const auto now = Clock::now();
    for (auto& conn : conns_) {
      if (conn->dead) continue;
      if (ms_since(conn->last_activity, now) > config_.idle_timeout_ms) {
        conn->dead = true;
        bump([](NetStats& s) { ++s.connections_reaped; });
        ctr_reaped_->add(1);
      }
    }
  }

  void remove_dead() {
    bool removed = false;
    for (auto it = conns_.begin(); it != conns_.end();) {
      Conn& conn = **it;
      if (!conn.dead) {
        ++it;
        continue;
      }
      if (conn.kind == Conn::Kind::kFeed && conn.decoder.buffered() > 0) {
        // Torn tail: a partial frame died with the connection. No ordinal —
        // the client was never acked for it and resends after reconnect.
        bump([](NetStats& s) { ++s.torn_tails; });
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (conn.wants_ack && pending_commits_ > 0) --pending_commits_;
      }
      it = conns_.erase(it);
      removed = true;
    }
    if (removed) {
      bump([this](NetStats& s) { s.connections_active = conns_.size(); });
      gauge_active_->set(static_cast<double>(conns_.size()));
    }
  }

  template <typename Fn>
  void bump(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mu_);
    fn(stats_);
  }

  NetConfig config_;
  Fd listener_;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> accepting_{true};
  std::atomic<bool> running_{false};

  // Poll-thread-only state.
  std::vector<std::unique_ptr<Conn>> conns_;

  // Shared state (daemon thread + poll thread).
  mutable std::mutex mu_;
  std::deque<stream::SourceItem> queue_;
  std::uint64_t resume_base_ = 0;
  std::uint64_t enqueued_total_ = 0;
  std::uint64_t durable_ = 0;
  std::size_t pending_commits_ = 0;
  std::string streamz_;
  NetStats stats_;

  // Metric handles (resolved once at start()).
  obs::Counter* ctr_conns_ = nullptr;
  obs::Counter* ctr_shed_ = nullptr;
  obs::Counter* ctr_reaped_ = nullptr;
  obs::Counter* ctr_accept_fail_ = nullptr;
  obs::Counter* ctr_frames_ = nullptr;
  obs::Counter* ctr_rejected_ = nullptr;
  obs::Counter* ctr_http_ = nullptr;
  obs::Counter* ctr_acked_ = nullptr;
  obs::Counter* ctr_bytes_in_ = nullptr;
  obs::Counter* ctr_bytes_out_ = nullptr;
  obs::Gauge* gauge_active_ = nullptr;
};

NetServer::NetServer(NetConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}
NetServer::~NetServer() = default;

void NetServer::start() { impl_->start(); }
void NetServer::stop_accepting() { impl_->stop_accepting(); }
void NetServer::stop() { impl_->stop(); }
bool NetServer::running() const { return impl_->running(); }
std::uint16_t NetServer::port() const { return impl_->port(); }
std::size_t NetServer::drain(std::size_t max_items,
                             std::vector<stream::SourceItem>& out) {
  return impl_->drain(max_items, out);
}
void NetServer::add_resume_base(std::uint64_t n) { impl_->add_resume_base(n); }
bool NetServer::commit_pending() const { return impl_->commit_pending(); }
void NetServer::publish_durable(std::uint64_t watermark) {
  impl_->publish_durable(watermark);
}
void NetServer::publish_streamz(std::string json) {
  impl_->publish_streamz(std::move(json));
}
NetStats NetServer::stats() const { return impl_->stats(); }

}  // namespace fs::net
