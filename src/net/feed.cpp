#include "net/feed.h"

#include <errno.h>
#include <fcntl.h>
#include <unistd.h>

#include "net/frame.h"
#include "net/socket.h"
#include "util/binary_io.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace fs::net {

namespace {

namespace fp = util::failpoint;

/// A retryable transport fault (disconnect, timeout, torn send). Converted
/// to IoError only when the retry budget runs out.
struct TransportFault {
  std::string what;
};

void send_frame(int fd, const std::string& frame) {
  // net.feed.torn_send cuts this frame short; the partial write followed by
  // the disconnect (TransportFault → reconnect) is exactly a torn network
  // write as the server sees it.
  const std::size_t writable = fp::truncate("net.feed.torn_send", frame.size());
  if (!util::write_all_eintr(fd, frame.data(), writable))
    throw TransportFault{"send failed"};
  if (writable != frame.size())
    throw TransportFault{"torn send injected (" + std::to_string(writable) +
                         "/" + std::to_string(frame.size()) + " bytes)"};
}

/// Blocking read of the next well-formed frame; SO_RCVTIMEO bounds the
/// wait. Any decode error or EOF is a transport fault (the client never
/// trusts a desynchronized stream).
Frame read_frame(int fd, FrameDecoder& decoder) {
  Frame frame;
  while (true) {
    switch (decoder.next(frame)) {
      case DecodeStatus::kFrame:
        return frame;
      case DecodeStatus::kError:
        throw TransportFault{std::string("undecodable server frame: ") +
                             frame_error_name(decoder.error())};
      case DecodeStatus::kNeedMore:
        break;
    }
    char buf[1 << 12];
    const ssize_t n = util::read_eintr(fd, buf, sizeof buf);
    if (n == 0) throw TransportFault{"server closed the connection"};
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw TransportFault{"timed out waiting for the server"};
      throw TransportFault{"recv failed"};
    }
    decoder.feed(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace

FeedReport feed_lines(const std::vector<std::string>& lines,
                      const FeedOptions& options) {
  FeedReport report;
  report.lines_total = lines.size();
  runtime::Retrier retrier(options.retry);
  bool first_attempt = true;
  std::string last_fault;
  while (true) {
    if (!first_attempt) ++report.reconnects;
    try {
      Fd fd = connect_tcp(options.host, options.port);
      set_recv_timeout(fd.get(), options.ack_timeout_ms);
      FrameDecoder decoder;

      // Hello exchange: learn how much already entered the pipeline.
      send_frame(fd.get(), encode_frame(FrameType::kHello, ""));
      const Frame hello = read_frame(fd.get(), decoder);
      if (hello.type != FrameType::kHello)
        throw TransportFault{"expected hello, got another frame type"};
      const auto watermark = frame_u64(hello);
      if (!watermark)
        throw TransportFault{"hello frame with malformed watermark"};

      for (std::uint64_t i = *watermark; i < lines.size(); ++i) {
        fp::fail("net.feed.stall");  // latency-action: simulated slow peer
        send_frame(fd.get(), encode_frame(FrameType::kCheckin, lines[i]));
        ++report.lines_sent;
      }
      if (!options.commit) return report;

      send_frame(fd.get(), encode_frame(FrameType::kCommit, ""));
      const Frame ack = read_frame(fd.get(), decoder);
      if (ack.type != FrameType::kAck)
        throw TransportFault{"expected ack, got another frame type"};
      const auto durable = frame_u64(ack);
      if (!durable) throw TransportFault{"ack frame with malformed watermark"};
      report.durable_watermark = *durable;
      report.committed = true;
      return report;
    } catch (const TransportFault& fault) {
      last_fault = fault.what;
    } catch (const IoError& error) {  // connect failure
      last_fault = error.what();
    }
    first_attempt = false;
    if (!retrier.retry())
      throw IoError("feed failed after " + std::to_string(retrier.failures()) +
                    " attempts (last: " + last_fault + ")");
  }
}

FeedReport feed_file(const std::string& path, const FeedOptions& options) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw IoError("cannot open feed input: " + path);
  std::string content;
  char buf[1 << 16];
  while (true) {
    const ssize_t n = util::read_eintr(fd, buf, sizeof buf);
    if (n <= 0) break;
    content.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < content.size()) {
    auto nl = content.find('\n', start);
    if (nl == std::string::npos) nl = content.size();
    std::string line = content.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    start = nl + 1;
    if (util::trim(line).empty()) continue;  // same filter as ReplaySource
    lines.push_back(std::move(line));
  }
  return feed_lines(lines, options);
}

}  // namespace fs::net
