// NetServer: the poll(2)-based TCP front end of `friendseeker serve
// --listen`, plus SocketSource, the fs::stream adapter that drains it.
//
// One background thread runs the whole server: accept, protocol detection
// (first bytes "FSN1" = feed protocol, anything else = HTTP), frame
// decoding, scrape responses, deadlines. The daemon thread interacts
// through a mutex-guarded exchange:
//
//     poll thread                      daemon thread (tick loop)
//     -----------                      -------------------------
//     decoded check-in frames  ──────▶ SocketSource::poll  (drain)
//     poisoned frames (CRC/framing) ─▶ (same queue, poison-tagged)
//     commit requested?        ◀────── after_tick: sync_journal +
//     durable watermark        ◀────── publish_durable
//     /streamz body            ◀────── publish_streamz
//
// Hardening (the point of this subsystem):
//   * bounded connection cap — overflow is accepted, counted, closed
//   * per-connection idle deadline — stalled peers (slow-loris senders,
//     scrape clients that never read) are reaped, so no client can delay
//     ingestion
//   * bounded item queue — when full, feed sockets stop being read and TCP
//     backpressure propagates to the sender
//   * bounded receive/HTTP-head buffers — no length field or header flood
//     can allocate unbounded memory
//   * every rejected byte is accounted: CRC-failed and unframeable frames
//     become poison items (quarantined with ordinals downstream), torn
//     tails at disconnect are counted and resent by the client
//
// Resume/ack semantics: the server's hello reply carries
// resume_base + enqueued_total — the number of items that have ever
// entered the pipeline, in consumed-ordinal terms. A reconnecting client
// skips that many of its own lines (at-most-once). A commit records
// ack_target = that same watermark; the ack is sent only once the daemon
// has journaled-and-fsynced past it.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "stream/source.h"

namespace fs::net {

struct NetConfig {
  std::string bind_host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral (read back via NetServer::port())
  /// Established-connection cap; further accepts are shed (closed+counted).
  std::size_t max_connections = 64;
  /// A connection with no read/write progress for this long is reaped.
  double idle_timeout_ms = 30000.0;
  /// poll(2) timeout — the latency floor for reaping and ack delivery.
  double poll_interval_ms = 20.0;
  /// HTTP request-head bound (431 + close beyond it).
  std::size_t max_http_header_bytes = 8192;
  /// Decoded-item queue bound; at the bound feed sockets stop being read.
  std::size_t queue_capacity = 4096;
};

/// Monotonic totals since start(); all reads give a consistent snapshot.
struct NetStats {
  std::uint64_t connections_total = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t connections_shed = 0;    // over the cap
  std::uint64_t connections_reaped = 0;  // idle-deadline kills
  std::uint64_t accept_failures = 0;     // injected or real accept errors
  std::uint64_t frames_total = 0;        // well-formed frames decoded
  std::uint64_t frames_rejected = 0;     // poisoned (CRC/framing)
  std::uint64_t torn_tails = 0;          // partial frame at disconnect
  std::uint64_t http_requests = 0;
  std::uint64_t commits_acked = 0;
  std::uint64_t enqueued_total = 0;      // items handed to the stream
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_sent = 0;
};

class NetServer {
 public:
  explicit NetServer(NetConfig config);
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, launches the poll thread. Throws IoError on bind
  /// failure (port taken, bad address).
  void start();

  /// Closes the listener (new connections refused) but keeps serving
  /// established ones — the first phase of a graceful drain.
  void stop_accepting();

  /// Stops the poll thread and closes every connection. Idempotent.
  void stop();

  bool running() const;

  /// The bound port (resolves an ephemeral request after start()).
  std::uint16_t port() const;

  // ---- daemon-thread interface -----------------------------------------

  /// Moves up to max_items decoded items out of the queue (SocketSource's
  /// poll body). Returns the number appended.
  std::size_t drain(std::size_t max_items,
                    std::vector<stream::SourceItem>& out);

  /// Adds `n` to the resume base — the consumed-line count recovered from
  /// snapshot+journal, so hello watermarks line up with engine ordinals.
  void add_resume_base(std::uint64_t n);

  /// True when some feed connection has an unacknowledged commit — the
  /// daemon responds by fsyncing the journal and publishing the watermark.
  bool commit_pending() const;

  /// Publishes the journaled-and-durable ordinal count; acks whose target
  /// is covered are sent on the next poll iteration.
  void publish_durable(std::uint64_t watermark);

  /// Publishes the /streamz JSON body (daemon stats; the server wraps it
  /// with its own connection stats).
  void publish_streamz(std::string json);

  NetStats stats() const;

 private:
  struct Conn;
  class Impl;
  std::unique_ptr<Impl> impl_;
};

/// fs::stream adapter: the daemon polls the server's decoded-item queue
/// like any other source. Never exhausted (a listener outlives any one
/// client); skip_lines feeds recovery's consumed count back as the resume
/// base.
class SocketSource : public stream::EventSource {
 public:
  explicit SocketSource(NetServer& server) : server_(server) {}

  std::size_t poll(std::size_t max_items,
                   std::vector<stream::SourceItem>& out) override {
    return server_.drain(max_items, out);
  }
  bool exhausted() const override { return false; }
  void skip_lines(std::uint64_t n) override { server_.add_resume_base(n); }

 private:
  NetServer& server_;
};

}  // namespace fs::net
