#include "net/frame.h"

#include <cstring>

#include "util/binary_io.h"

namespace fs::net {

namespace {

constexpr char kMagicBytes[4] = {'F', 'S', 'N', '1'};

std::uint32_t magic_value() {
  std::uint32_t value;
  std::memcpy(&value, kMagicBytes, sizeof value);
  return value;
}

bool valid_type(std::uint32_t type) {
  return type >= static_cast<std::uint32_t>(FrameType::kHello) &&
         type <= static_cast<std::uint32_t>(FrameType::kAck);
}

}  // namespace

const char* frame_error_name(FrameError error) {
  switch (error) {
    case FrameError::kNone: return "none";
    case FrameError::kBadMagic: return "bad_magic";
    case FrameError::kBadType: return "bad_type";
    case FrameError::kOversized: return "oversized";
    case FrameError::kCrcMismatch: return "crc_mismatch";
  }
  return "unknown";
}

std::string encode_frame(FrameType type, std::string_view payload) {
  std::string frame;
  frame.resize(kFrameHeaderBytes + payload.size());
  const std::uint32_t magic = magic_value();
  const auto type_u32 = static_cast<std::uint32_t>(type);
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = util::crc32(payload.data(), payload.size());
  std::memcpy(frame.data(), &magic, 4);
  std::memcpy(frame.data() + 4, &type_u32, 4);
  std::memcpy(frame.data() + 8, &len, 4);
  std::memcpy(frame.data() + 12, &crc, 4);
  std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(),
              payload.size());
  return frame;
}

std::string encode_frame_u64(FrameType type, std::uint64_t value) {
  char payload[sizeof value];
  std::memcpy(payload, &value, sizeof value);
  return encode_frame(type, std::string_view(payload, sizeof value));
}

std::optional<std::uint64_t> frame_u64(const Frame& frame) {
  if (frame.payload.size() != sizeof(std::uint64_t)) return std::nullopt;
  std::uint64_t value;
  std::memcpy(&value, frame.payload.data(), sizeof value);
  return value;
}

void FrameDecoder::feed(const char* data, std::size_t bytes) {
  compact();
  buffer_.append(data, bytes);
}

void FrameDecoder::compact() {
  // Drop the consumed prefix once it dominates the buffer, so a long-lived
  // connection doesn't grow its receive buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

DecodeStatus FrameDecoder::next(Frame& out) {
  if (error_ != FrameError::kNone) return DecodeStatus::kError;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return DecodeStatus::kNeedMore;
  const char* head = buffer_.data() + consumed_;
  std::uint32_t magic, type, len, crc;
  std::memcpy(&magic, head, 4);
  std::memcpy(&type, head + 4, 4);
  std::memcpy(&len, head + 8, 4);
  std::memcpy(&crc, head + 12, 4);
  if (magic != magic_value()) {
    error_ = FrameError::kBadMagic;
    return DecodeStatus::kError;
  }
  if (!valid_type(type)) {
    error_ = FrameError::kBadType;
    return DecodeStatus::kError;
  }
  if (len > kMaxFramePayload) {
    error_ = FrameError::kOversized;
    return DecodeStatus::kError;
  }
  if (available < kFrameHeaderBytes + len) return DecodeStatus::kNeedMore;
  const char* payload = head + kFrameHeaderBytes;
  if (util::crc32(payload, len) != crc) {
    error_ = FrameError::kCrcMismatch;
    bad_frame_bytes_ = kFrameHeaderBytes + len;
    return DecodeStatus::kError;
  }
  out.type = static_cast<FrameType>(type);
  out.payload.assign(payload, len);
  consumed_ += kFrameHeaderBytes + len;
  return DecodeStatus::kFrame;
}

void FrameDecoder::resync() {
  if (error_ != FrameError::kCrcMismatch) return;
  consumed_ += bad_frame_bytes_;
  bad_frame_bytes_ = 0;
  error_ = FrameError::kNone;
  compact();
}

}  // namespace fs::net
