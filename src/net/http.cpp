#include "net/http.h"

namespace fs::net {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    default: return "Error";
  }
}

}  // namespace

HttpParseStatus parse_http_request(std::string_view buffer, HttpRequest& out,
                                   std::size_t& consumed) {
  // The head ends at the first blank line; tolerate bare-\n clients.
  std::size_t head_end = buffer.find("\r\n\r\n");
  std::size_t terminator = 4;
  if (head_end == std::string_view::npos) {
    head_end = buffer.find("\n\n");
    terminator = 2;
    if (head_end == std::string_view::npos) return HttpParseStatus::kNeedMore;
  }
  consumed = head_end + terminator;

  std::size_t line_end = buffer.find('\n');
  std::string_view line = buffer.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

  const auto first_space = line.find(' ');
  if (first_space == std::string_view::npos) return HttpParseStatus::kError;
  const auto second_space = line.find(' ', first_space + 1);
  if (second_space == std::string_view::npos) return HttpParseStatus::kError;
  out.method = std::string(line.substr(0, first_space));
  std::string_view target =
      line.substr(first_space + 1, second_space - first_space - 1);
  const auto query = target.find('?');
  if (query != std::string_view::npos) target = target.substr(0, query);
  if (target.empty() || target[0] != '/') return HttpParseStatus::kError;
  out.target = std::string(target);
  return HttpParseStatus::kRequest;
}

std::string http_response(int status, std::string_view content_type,
                          std::string_view body) {
  std::string response = "HTTP/1.1 " + std::to_string(status) + " " +
                         status_text(status) + "\r\n";
  response += "Content-Type: ";
  response += content_type;
  response += "\r\nContent-Length: " + std::to_string(body.size()) +
              "\r\nConnection: close\r\n\r\n";
  response += body;
  return response;
}

}  // namespace fs::net
