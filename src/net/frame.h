// The check-in wire protocol: length-framed, CRC32-checked.
//
// Frame layout (host-endian u32s, like every durable artifact in this
// repo — the feeder and daemon share a machine or an architecture):
//
//   [u32 magic "FSN1"][u32 type][u32 payload-bytes][u32 crc32(payload)]
//   [payload]
//
// Types:
//   kHello   1  client → server: empty payload, opens a feed session.
//               server → client: u64 resume watermark (how many items the
//               server has ever enqueued — the client skips that many of
//               its own lines, giving at-most-once delivery across
//               reconnects and daemon restarts).
//   kCheckin 2  client → server: payload is one SNAP check-in line.
//   kCommit  3  client → server: empty payload; requests a durable ack
//               once everything delivered so far is fsynced.
//   kAck     4  server → client: u64 durable watermark (journaled ordinal
//               count; sent only after the journal fsync covers the
//               commit's target).
//
// Decode failures are typed, because they recover differently:
//   * kCrcMismatch — the frame boundary is known (header was sane), so the
//     connection can resync past the bad payload; the payload bytes are
//     poisoned into the quarantine as frame_corrupt.
//   * kBadMagic / kBadType / kOversized — the byte stream is unframeable;
//     the server poisons a frame_malformed marker and closes (there is no
//     boundary to resync to).
// A partial frame at EOF is a torn tail: discarded without an ordinal (the
// client never had it acknowledged, so it resends after reconnect).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace fs::net {

enum class FrameType : std::uint32_t {
  kHello = 1,
  kCheckin = 2,
  kCommit = 3,
  kAck = 4,
};

/// Largest accepted payload. A check-in line is ~100 bytes; anything near
/// this bound is garbage or an attack, and bounding it keeps a malicious
/// length field from allocating unbounded memory.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;

inline constexpr std::size_t kFrameHeaderBytes = 4 * sizeof(std::uint32_t);

struct Frame {
  FrameType type = FrameType::kCheckin;
  std::string payload;
};

enum class DecodeStatus { kNeedMore, kFrame, kError };

enum class FrameError { kNone, kBadMagic, kBadType, kOversized, kCrcMismatch };

const char* frame_error_name(FrameError error);

/// Encodes one frame (header + payload).
std::string encode_frame(FrameType type, std::string_view payload);

/// Hello/ack carry a bare u64 payload.
std::string encode_frame_u64(FrameType type, std::uint64_t value);

/// Extracts the u64 payload of a hello/ack frame; nullopt on size mismatch.
std::optional<std::uint64_t> frame_u64(const Frame& frame);

/// Incremental frame decoder over a TCP byte stream.
class FrameDecoder {
 public:
  /// Appends raw bytes received from the peer.
  void feed(const char* data, std::size_t bytes);

  /// Tries to decode the next frame. kFrame fills `out`; kNeedMore means
  /// feed() more bytes; kError sets error() and leaves the cursor ON the
  /// bad frame — call resync() (CRC mismatch only) to skip it, or drop the
  /// connection for the unframeable errors.
  DecodeStatus next(Frame& out);

  FrameError error() const { return error_; }
  /// True when the error is recoverable (known frame boundary).
  bool can_resync() const { return error_ == FrameError::kCrcMismatch; }
  /// Skips the CRC-failed frame and clears the error.
  void resync();

  /// Bytes buffered but not yet consumed (a non-zero value at connection
  /// EOF is a torn tail).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  void compact();

  std::string buffer_;
  std::size_t consumed_ = 0;
  FrameError error_ = FrameError::kNone;
  std::size_t bad_frame_bytes_ = 0;  // full size of the frame to skip
};

}  // namespace fs::net
