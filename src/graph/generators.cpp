#include "graph/generators.h"

#include <stdexcept>

namespace fs::graph {

Graph erdos_renyi(std::size_t n, double p, util::Rng& rng) {
  Graph g(n);
  if (p <= 0.0) return g;
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = a + 1; b < n; ++b)
      if (rng.chance(p)) g.add_edge(a, b);
  return g;
}

Graph watts_strogatz(std::size_t n, std::size_t k_ring, double beta,
                     util::Rng& rng) {
  if (k_ring % 2 != 0 || k_ring < 2)
    throw std::invalid_argument("watts_strogatz: k_ring must be even >= 2");
  if (n <= k_ring)
    throw std::invalid_argument("watts_strogatz: need n > k_ring");
  Graph g(n);
  // Ring lattice.
  for (NodeId v = 0; v < n; ++v)
    for (std::size_t j = 1; j <= k_ring / 2; ++j)
      g.add_edge(v, static_cast<NodeId>((v + j) % n));
  // Rewire each lattice edge (v, v+j) with probability beta.
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t j = 1; j <= k_ring / 2; ++j) {
      if (!rng.chance(beta)) continue;
      const auto w = static_cast<NodeId>((v + j) % n);
      if (!g.has_edge(v, w)) continue;  // Already rewired away.
      // Pick a new endpoint; skip if saturated.
      if (g.degree(v) >= n - 1) continue;
      NodeId target;
      do {
        target = static_cast<NodeId>(rng.index(n));
      } while (target == v || g.has_edge(v, target));
      g.remove_edge(v, w);
      g.add_edge(v, target);
    }
  }
  return g;
}

Graph barabasi_albert(std::size_t n, std::size_t m, util::Rng& rng) {
  if (m < 1) throw std::invalid_argument("barabasi_albert: m must be >= 1");
  if (n <= m) throw std::invalid_argument("barabasi_albert: need n > m");
  Graph g(n);
  // Repeated-endpoint list: sampling uniformly from it is sampling
  // proportionally to degree.
  std::vector<NodeId> endpoints;
  // Seed: star over the first m+1 nodes.
  for (NodeId v = 1; v <= m; ++v) {
    g.add_edge(0, v);
    endpoints.push_back(0);
    endpoints.push_back(v);
  }
  for (NodeId v = static_cast<NodeId>(m + 1); v < n; ++v) {
    std::vector<NodeId> chosen;
    while (chosen.size() < m) {
      const NodeId candidate = endpoints[rng.index(endpoints.size())];
      if (candidate == v) continue;
      bool dup = false;
      for (NodeId c : chosen) dup |= (c == candidate);
      if (!dup) chosen.push_back(candidate);
    }
    for (NodeId c : chosen) {
      g.add_edge(v, c);
      endpoints.push_back(v);
      endpoints.push_back(c);
    }
  }
  return g;
}

}  // namespace fs::graph
