// Compact undirected graph over dense node ids (Definition 5's social graph).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace fs::graph {

using NodeId = std::uint32_t;

/// Undirected edge with a <= b canonical ordering.
struct Edge {
  NodeId a = 0;
  NodeId b = 0;

  Edge() = default;
  Edge(NodeId x, NodeId y) : a(x < y ? x : y), b(x < y ? y : x) {}

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Undirected simple graph with sorted adjacency vectors.
///
/// Mutation is batched: add/remove edges freely, then neighbors() and
/// has_edge() reflect the change immediately (adjacency is kept sorted on
/// every mutation — edge updates are O(degree), which is cheap at social-
/// graph degrees).
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count) : adjacency_(node_count) {}

  static Graph from_edges(std::size_t node_count,
                          const std::vector<Edge>& edges);

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Adds an undirected edge; self-loops and duplicates are ignored.
  /// Returns true if the edge was new.
  bool add_edge(NodeId a, NodeId b);

  /// Removes an edge; returns true if it existed.
  bool remove_edge(NodeId a, NodeId b);

  bool has_edge(NodeId a, NodeId b) const;

  std::size_t degree(NodeId v) const { return adjacency_.at(v).size(); }

  const std::vector<NodeId>& neighbors(NodeId v) const {
    return adjacency_.at(v);
  }

  /// All edges in canonical (a < b) order, sorted.
  std::vector<Edge> edges() const;

  /// Sorted common neighbors of a and b.
  std::vector<NodeId> common_neighbors(NodeId a, NodeId b) const;
  std::size_t common_neighbor_count(NodeId a, NodeId b) const;

  /// Number of edges present in exactly one of the two graphs (symmetric
  /// difference). Graphs must have equal node counts.
  static std::size_t edge_symmetric_difference(const Graph& x,
                                               const Graph& y);

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace fs::graph
