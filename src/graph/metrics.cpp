#include "graph/metrics.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "util/rng.h"

namespace fs::graph {

double edge_change_ratio(const Graph& previous, const Graph& current) {
  const std::size_t diff = Graph::edge_symmetric_difference(previous, current);
  const std::size_t denom = std::max<std::size_t>(1, current.edge_count());
  return static_cast<double>(diff) / static_cast<double>(denom);
}

double clustering_coefficient(const Graph& g, NodeId v) {
  const auto& nbrs = g.neighbors(v);
  if (nbrs.size() < 2) return 0.0;
  std::size_t closed = 0;
  for (std::size_t i = 0; i < nbrs.size(); ++i)
    for (std::size_t j = i + 1; j < nbrs.size(); ++j)
      if (g.has_edge(nbrs[i], nbrs[j])) ++closed;
  const std::size_t possible = nbrs.size() * (nbrs.size() - 1) / 2;
  return static_cast<double>(closed) / static_cast<double>(possible);
}

double average_clustering(const Graph& g) {
  if (g.node_count() == 0) return 0.0;
  double total = 0.0;
  for (NodeId v = 0; v < g.node_count(); ++v)
    total += clustering_coefficient(g, v);
  return total / static_cast<double>(g.node_count());
}

std::vector<std::size_t> connected_components(const Graph& g) {
  constexpr std::size_t kUnset = static_cast<std::size_t>(-1);
  std::vector<std::size_t> label(g.node_count(), kUnset);
  std::size_t next = 0;
  std::queue<NodeId> frontier;
  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (label[start] != kUnset) continue;
    label[start] = next;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (NodeId w : g.neighbors(v)) {
        if (label[w] != kUnset) continue;
        label[w] = next;
        frontier.push(w);
      }
    }
    ++next;
  }
  return label;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats stats;
  if (g.node_count() == 0) return stats;
  stats.min = g.degree(0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const std::size_t d = g.degree(v);
    stats.mean += static_cast<double>(d);
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
    if (d == 0) ++stats.isolated;
  }
  stats.mean /= static_cast<double>(g.node_count());
  return stats;
}

double estimate_average_path_length(const Graph& g, std::size_t samples,
                                    std::uint64_t seed) {
  if (g.node_count() < 2) return 0.0;
  util::Rng rng(seed);
  double total = 0.0;
  std::size_t pairs = 0;
  std::vector<int> dist(g.node_count());
  for (std::size_t s = 0; s < samples; ++s) {
    const auto src = static_cast<NodeId>(rng.index(g.node_count()));
    std::fill(dist.begin(), dist.end(), -1);
    std::queue<NodeId> frontier;
    dist[src] = 0;
    frontier.push(src);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (NodeId w : g.neighbors(v)) {
        if (dist[w] != -1) continue;
        dist[w] = dist[v] + 1;
        frontier.push(w);
      }
    }
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == src || dist[v] <= 0) continue;
      total += dist[v];
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

}  // namespace fs::graph
