#include "graph/heuristics.h"

#include <cmath>
#include <queue>
#include <vector>

namespace fs::graph {

double common_neighbors_score(const Graph& g, NodeId a, NodeId b) {
  return static_cast<double>(g.common_neighbor_count(a, b));
}

double jaccard_score(const Graph& g, NodeId a, NodeId b) {
  const std::size_t common = g.common_neighbor_count(a, b);
  const std::size_t unioned = g.degree(a) + g.degree(b) - common;
  if (unioned == 0) return 0.0;
  return static_cast<double>(common) / static_cast<double>(unioned);
}

double adamic_adar_score(const Graph& g, NodeId a, NodeId b) {
  double score = 0.0;
  for (NodeId z : g.common_neighbors(a, b)) {
    const std::size_t deg = g.degree(z);
    if (deg > 1) score += 1.0 / std::log(static_cast<double>(deg));
  }
  return score;
}

double preferential_attachment_score(const Graph& g, NodeId a, NodeId b) {
  return static_cast<double>(g.degree(a)) * static_cast<double>(g.degree(b));
}

double katz_score(const Graph& g, NodeId a, NodeId b, double beta,
                  int max_len) {
  // walks[v] = number of length-l walks from a to v, updated iteratively.
  std::vector<double> walks(g.node_count(), 0.0);
  std::vector<double> next(g.node_count(), 0.0);
  walks[a] = 1.0;
  double score = 0.0;
  double beta_pow = 1.0;
  for (int len = 1; len <= max_len; ++len) {
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (walks[v] == 0.0) continue;
      for (NodeId w : g.neighbors(v)) next[w] += walks[v];
    }
    walks.swap(next);
    beta_pow *= beta;
    score += beta_pow * walks[b];
  }
  return score;
}

double resource_allocation_score(const Graph& g, NodeId a, NodeId b) {
  double score = 0.0;
  for (NodeId z : g.common_neighbors(a, b)) {
    const std::size_t deg = g.degree(z);
    if (deg > 0) score += 1.0 / static_cast<double>(deg);
  }
  return score;
}

double local_path_score(const Graph& g, NodeId a, NodeId b, double epsilon) {
  // walks2[v] = #length-2 walks a->v; walks3 via one more expansion.
  std::vector<double> walks1(g.node_count(), 0.0);
  for (NodeId w : g.neighbors(a)) walks1[w] = 1.0;
  std::vector<double> walks2(g.node_count(), 0.0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (walks1[v] == 0.0) continue;
    for (NodeId w : g.neighbors(v)) walks2[w] += walks1[v];
  }
  std::vector<double> walks3(g.node_count(), 0.0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (walks2[v] == 0.0) continue;
    for (NodeId w : g.neighbors(v)) walks3[w] += walks2[v];
  }
  return walks2[b] + epsilon * walks3[b];
}

int shortest_path_length(const Graph& g, NodeId a, NodeId b, int max_depth) {
  if (a == b) return 0;
  std::vector<int> dist(g.node_count(), -1);
  std::queue<NodeId> frontier;
  dist[a] = 0;
  frontier.push(a);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    if (dist[v] >= max_depth) continue;
    for (NodeId w : g.neighbors(v)) {
      if (dist[w] != -1) continue;
      dist[w] = dist[v] + 1;
      if (w == b) return dist[w];
      frontier.push(w);
    }
  }
  return -1;
}

}  // namespace fs::graph
