#include "graph/khop.h"

#include <algorithm>
#include <stdexcept>

namespace fs::graph {

std::vector<Edge> KHopSubgraph::edges() const {
  std::vector<Edge> out;
  for (const auto& bucket : paths_by_length)
    for (const Path& path : bucket)
      for (std::size_t i = 0; i + 1 < path.size(); ++i)
        out.emplace_back(path[i], path[i + 1]);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

/// Depth-first enumeration of simple a->b paths of exactly `target_len`
/// edges, avoiding excluded vertices. `stack` carries the partial path.
/// One instance is reused across target lengths so the node-count-sized
/// marker buffer is allocated once per pair, not once per length.
class PathEnumerator {
 public:
  PathEnumerator(const Graph& g, NodeId b,
                 const std::vector<char>& excluded, std::size_t cap,
                 int max_len)
      : g_(g), b_(b), excluded_(excluded), cap_(cap),
        on_stack_(g.node_count(), 0) {
    stack_.reserve(static_cast<std::size_t>(max_len) + 1);
  }

  void run(NodeId a, int target_len, std::vector<Path>& out) {
    target_len_ = target_len;
    out_ = &out;
    stack_.push_back(a);
    on_stack_[a] = 1;
    dfs(a, 0);
    on_stack_[a] = 0;
    stack_.pop_back();
  }

 private:
  void dfs(NodeId v, int depth) {
    if (out_->size() >= cap_) return;
    if (depth == target_len_ - 1) {
      // One hop left: succeed iff v is adjacent to b (and b not already on
      // the stack — b never is, because interior vertices skip it below).
      if (g_.has_edge(v, b_)) {
        Path path = stack_;
        path.push_back(b_);
        out_->push_back(std::move(path));
      }
      return;
    }
    for (NodeId w : g_.neighbors(v)) {
      if (w == b_) continue;  // b may only appear as the final vertex.
      if (excluded_[w] || on_stack_[w]) continue;
      stack_.push_back(w);
      on_stack_[w] = 1;
      dfs(w, depth + 1);
      on_stack_[w] = 0;
      stack_.pop_back();
      if (out_->size() >= cap_) return;
    }
  }

  const Graph& g_;
  NodeId b_;
  int target_len_ = 0;
  const std::vector<char>& excluded_;
  std::size_t cap_;
  std::vector<Path>* out_ = nullptr;
  std::vector<char> on_stack_;
  Path stack_;
};

}  // namespace

KHopSubgraph extract_khop_subgraph(const Graph& g, NodeId a, NodeId b,
                                   const KHopOptions& options) {
  if (options.k < 2)
    throw std::invalid_argument("extract_khop_subgraph: k must be >= 2");
  if (a >= g.node_count() || b >= g.node_count())
    throw std::out_of_range("extract_khop_subgraph: node id out of range");
  if (a == b)
    throw std::invalid_argument("extract_khop_subgraph: a == b");

  KHopSubgraph result;
  result.a = a;
  result.b = b;
  result.k = options.k;
  result.paths_by_length.resize(static_cast<std::size_t>(options.k - 1));

  // Vertices excluded from later rounds. Interior vertices of found paths
  // are excluded (a and b never are); excluding a vertex removes all its
  // incident edges from the working graph, which implements the paper's
  // "exclude all nodes and edges" step without copying the graph.
  std::vector<char> excluded(g.node_count(), 0);

  PathEnumerator enumerator(g, b, excluded, options.max_paths_per_length,
                            options.k);
  for (int length = 2; length <= options.k; ++length) {
    auto& bucket = result.paths_by_length[static_cast<std::size_t>(length - 2)];
    enumerator.run(a, length, bucket);
    for (const Path& path : bucket)
      for (std::size_t i = 1; i + 1 < path.size(); ++i)
        excluded[path[i]] = 1;
  }
  return result;
}

std::vector<std::size_t> khop_path_counts(const Graph& g, NodeId a, NodeId b,
                                          const KHopOptions& options) {
  const KHopSubgraph sub = extract_khop_subgraph(g, a, b, options);
  std::vector<std::size_t> counts;
  counts.reserve(sub.paths_by_length.size());
  for (const auto& bucket : sub.paths_by_length) counts.push_back(bucket.size());
  return counts;
}

}  // namespace fs::graph
