#include "graph/graph.h"

#include <algorithm>
#include <stdexcept>

namespace fs::graph {

Graph Graph::from_edges(std::size_t node_count,
                        const std::vector<Edge>& edges) {
  Graph g(node_count);
  for (const Edge& e : edges) g.add_edge(e.a, e.b);
  return g;
}

namespace {
bool sorted_contains(const std::vector<NodeId>& v, NodeId x) {
  return std::binary_search(v.begin(), v.end(), x);
}

void sorted_insert(std::vector<NodeId>& v, NodeId x) {
  v.insert(std::lower_bound(v.begin(), v.end(), x), x);
}

bool sorted_erase(std::vector<NodeId>& v, NodeId x) {
  auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) return false;
  v.erase(it);
  return true;
}
}  // namespace

bool Graph::add_edge(NodeId a, NodeId b) {
  if (a == b) return false;
  if (a >= node_count() || b >= node_count())
    throw std::out_of_range("Graph::add_edge: node id out of range");
  if (sorted_contains(adjacency_[a], b)) return false;
  sorted_insert(adjacency_[a], b);
  sorted_insert(adjacency_[b], a);
  ++edge_count_;
  return true;
}

bool Graph::remove_edge(NodeId a, NodeId b) {
  if (a >= node_count() || b >= node_count())
    throw std::out_of_range("Graph::remove_edge: node id out of range");
  if (!sorted_erase(adjacency_[a], b)) return false;
  sorted_erase(adjacency_[b], a);
  --edge_count_;
  return true;
}

bool Graph::has_edge(NodeId a, NodeId b) const {
  if (a >= node_count() || b >= node_count()) return false;
  // Probe the smaller adjacency list.
  const auto& adj =
      adjacency_[a].size() <= adjacency_[b].size() ? adjacency_[a]
                                                   : adjacency_[b];
  const NodeId target = adjacency_[a].size() <= adjacency_[b].size() ? b : a;
  return sorted_contains(adj, target);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count_);
  for (NodeId v = 0; v < node_count(); ++v)
    for (NodeId w : adjacency_[v])
      if (v < w) out.emplace_back(v, w);
  return out;
}

std::vector<NodeId> Graph::common_neighbors(NodeId a, NodeId b) const {
  std::vector<NodeId> out;
  const auto& va = adjacency_.at(a);
  const auto& vb = adjacency_.at(b);
  std::set_intersection(va.begin(), va.end(), vb.begin(), vb.end(),
                        std::back_inserter(out));
  return out;
}

std::size_t Graph::common_neighbor_count(NodeId a, NodeId b) const {
  const auto& va = adjacency_.at(a);
  const auto& vb = adjacency_.at(b);
  std::size_t count = 0;
  auto ia = va.begin();
  auto ib = vb.begin();
  while (ia != va.end() && ib != vb.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

std::size_t Graph::edge_symmetric_difference(const Graph& x, const Graph& y) {
  if (x.node_count() != y.node_count())
    throw std::invalid_argument(
        "Graph::edge_symmetric_difference: node count mismatch");
  std::size_t diff = 0;
  for (NodeId v = 0; v < x.node_count(); ++v) {
    const auto& vx = x.adjacency_[v];
    const auto& vy = y.adjacency_[v];
    auto ia = vx.begin();
    auto ib = vy.begin();
    while (ia != vx.end() || ib != vy.end()) {
      if (ib == vy.end() || (ia != vx.end() && *ia < *ib)) {
        if (*ia > v) ++diff;
        ++ia;
      } else if (ia == vx.end() || *ib < *ia) {
        if (*ib > v) ++diff;
        ++ib;
      } else {
        ++ia;
        ++ib;
      }
    }
  }
  return diff;
}

}  // namespace fs::graph
