// Random-graph generators.
//
// The synthetic world builds its ground-truth social graph from these
// (human societies are small-world networks — the paper leans on that for
// the k=3 choice), and tests use them as structured fixtures.
#pragma once

#include "graph/graph.h"
#include "util/rng.h"

namespace fs::graph {

/// Erdos-Renyi G(n, p).
Graph erdos_renyi(std::size_t n, double p, util::Rng& rng);

/// Watts-Strogatz small-world: ring lattice with `k_ring` nearest neighbors
/// per side rewired with probability `beta`. Requires even `k_ring` >= 2.
Graph watts_strogatz(std::size_t n, std::size_t k_ring, double beta,
                     util::Rng& rng);

/// Barabasi-Albert preferential attachment with `m` edges per new node.
Graph barabasi_albert(std::size_t n, std::size_t m, util::Rng& rng);

}  // namespace fs::graph
