// Classical link-prediction heuristics.
//
// These serve two roles: (i) the phase-2 ablation that pits the k-hop
// reachable subgraph against conventional structural features, and (ii)
// sanity baselines in tests.
#pragma once

#include "graph/graph.h"

namespace fs::graph {

/// |N(a) ∩ N(b)|.
double common_neighbors_score(const Graph& g, NodeId a, NodeId b);

/// |N(a) ∩ N(b)| / |N(a) ∪ N(b)|; 0 when both degrees are 0.
double jaccard_score(const Graph& g, NodeId a, NodeId b);

/// Σ_{z ∈ N(a) ∩ N(b)} 1 / log(deg z), skipping degree-1 commons.
double adamic_adar_score(const Graph& g, NodeId a, NodeId b);

/// deg(a) * deg(b).
double preferential_attachment_score(const Graph& g, NodeId a, NodeId b);

/// Truncated Katz index: Σ_{l=1..max_len} beta^l * |walks of length l|.
/// Walk counts are computed by iterated sparse adjacency multiplication of
/// the indicator vector of `a`, so cost is O(max_len * |E|).
double katz_score(const Graph& g, NodeId a, NodeId b, double beta = 0.05,
                  int max_len = 4);

/// BFS shortest-path length between a and b, or -1 if disconnected or
/// farther than `max_depth`.
int shortest_path_length(const Graph& g, NodeId a, NodeId b,
                         int max_depth = 16);

/// Resource-allocation index: Σ_{z ∈ N(a) ∩ N(b)} 1 / deg(z).
/// (Zhou, Lü & Zhang 2009 — the harsher-penalty sibling of Adamic-Adar.)
double resource_allocation_score(const Graph& g, NodeId a, NodeId b);

/// Local-path index (Lü, Jin & Zhou, Phys. Rev. E 2009 — the paper's
/// reference [27]): |paths of length 2| + epsilon * |paths of length 3|,
/// computed by sparse adjacency multiplication.
double local_path_score(const Graph& g, NodeId a, NodeId b,
                        double epsilon = 0.01);

}  // namespace fs::graph
