// Whole-graph measurements: convergence tracking for the iterative phase and
// small-world diagnostics for the synthetic world.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace fs::graph {

/// Fraction of edges changed between consecutive refinement iterations:
/// |E(x) Δ E(y)| / max(1, |E(y)|). The paper stops when this drops
/// below 1 %.
double edge_change_ratio(const Graph& previous, const Graph& current);

/// Local clustering coefficient of v (0 when degree < 2).
double clustering_coefficient(const Graph& g, NodeId v);

/// Mean local clustering coefficient over all nodes.
double average_clustering(const Graph& g);

/// Connected components as a label per node (labels are 0-based, dense).
std::vector<std::size_t> connected_components(const Graph& g);

struct DegreeStats {
  double mean = 0.0;
  std::size_t min = 0;
  std::size_t max = 0;
  std::size_t isolated = 0;  // degree-0 nodes
};

DegreeStats degree_stats(const Graph& g);

/// Mean shortest-path length estimated from `samples` random source nodes
/// (exact BFS per source, unreachable pairs skipped).
double estimate_average_path_length(const Graph& g, std::size_t samples,
                                    std::uint64_t seed);

}  // namespace fs::graph
