// k-hop reachable subgraph (Section III-C.1, Theorem 1).
//
// For a user pair (a, b), the subgraph collects a-b paths by increasing
// length l = 2..k; after each round every interior vertex of a found path is
// excluded from the working graph, so (i) every retained path is an induced
// path and (ii) paths of different lengths share no edges — exactly the
// construction the paper proves in Theorem 1 and illustrates in Fig. 4.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace fs::graph {

/// A path is the full vertex sequence from a to b inclusive.
using Path = std::vector<NodeId>;

struct KHopSubgraph {
  NodeId a = 0;
  NodeId b = 0;
  int k = 0;

  /// paths_by_length[i] holds every retained path of length i + 2
  /// (a path's length is its edge count).
  std::vector<std::vector<Path>> paths_by_length;

  std::size_t path_count() const {
    std::size_t n = 0;
    for (const auto& bucket : paths_by_length) n += bucket.size();
    return n;
  }

  /// Number of paths of exactly `length` edges (2 <= length <= k).
  std::size_t path_count_of_length(int length) const {
    const int idx = length - 2;
    if (idx < 0 || idx >= static_cast<int>(paths_by_length.size())) return 0;
    return paths_by_length[static_cast<std::size_t>(idx)].size();
  }

  /// All distinct edges appearing on retained paths.
  std::vector<Edge> edges() const;

  bool empty() const { return path_count() == 0; }
};

struct KHopOptions {
  int k = 3;
  /// Safety valve against pathological hubs: per-length cap on enumerated
  /// paths. Real social graphs at our scale stay far below it.
  std::size_t max_paths_per_length = 4096;
};

/// Extracts the k-hop reachable subgraph between a and b on `g`.
/// The direct edge (a, b), if present, is never part of the subgraph
/// (lengths start at 2) — the feature describes *indirect* proximity.
KHopSubgraph extract_khop_subgraph(const Graph& g, NodeId a, NodeId b,
                                   const KHopOptions& options = {});

/// Convenience: number of length-l paths for l = 2..k as a dense vector
/// (index 0 <-> length 2). Used by Fig. 5's census.
std::vector<std::size_t> khop_path_counts(const Graph& g, NodeId a, NodeId b,
                                          const KHopOptions& options = {});

}  // namespace fs::graph
