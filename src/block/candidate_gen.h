// Candidate-pair blocking: generation and universe filtering from the
// co-occurrence index.
//
// Two co-occurrence tiers drive the blocking decision:
//
//   * *cell* co-occurrence — the pair shares a (grid, slot +/- tolerance)
//     cell. This is the paper-side precondition for a JOC with any overlap
//     structure; a pair without it has disjoint spatial-temporal masses.
//   * *strong* co-occurrence — the pair visited the same POI in the same
//     (grid, slot), i.e. the JOC's n_ab channel is non-zero somewhere.
//     Strong edges approximate the pairs phase 1 can light up, so the
//     strong-co-occurrence graph is the substrate for hop expansion:
//     phase 2 discovers hidden friends via k-hop paths through inferred
//     edges, and a pair more than `hop_expansion` strong-hops apart cannot
//     accumulate social-proximity mass under the inferred graphs these
//     presets produce.
//
// The recall-loss contract (documented in DESIGN.md): a genuinely hidden
// friend pair that neither co-occurs nor sits within the hop-expansion
// radius is pruned from the scored universe and predicted non-friend. Such
// prunes are counted (BlockingStats::pruned_pairs, the
// block.candidates_pruned metric) so a run can report what blocking cost.
#pragma once

#include <cstdint>
#include <vector>

#include "block/cell_index.h"
#include "graph/graph.h"

namespace fs::block {

enum class BlockingMode {
  kOff,   // dense universe: every supplied pair is scored
  kOn,    // blocked universe: only candidates survive
  kAuto,  // kOn when the universe exceeds auto_min_pairs, kOff below
};

struct BlockingConfig {
  BlockingMode mode = BlockingMode::kAuto;
  /// Slots of temporal tolerance for cell co-occurrence: a shared grid with
  /// slots at most this far apart blocks the pair together. 0 = exact
  /// (grid, slot) sharing, the JOC's own granularity.
  int slot_tolerance = 1;
  /// Pairs within this many hops in the strong-co-occurrence graph stay in
  /// the scored universe even without direct cell co-occurrence, so
  /// phase 2's k-hop closure still sees 2-hop strangers (cyber friends).
  /// 0 disables expansion.
  int hop_expansion = 3;
  /// kAuto enables blocking only above this universe size; the balanced
  /// eval protocol's sampled universes stay dense, full-population
  /// universes get blocked.
  std::size_t auto_min_pairs = 20000;
};

/// Resolves kAuto against the actual universe size.
bool blocking_enabled(const BlockingConfig& config, std::size_t universe_pairs);

struct BlockingStats {
  std::size_t universe_pairs = 0;   // pairs supplied (dense universe)
  std::size_t scored_pairs = 0;     // pairs kept for scoring
  std::size_t pruned_pairs = 0;     // universe - scored
  std::size_t cell_candidates = 0;  // kept via cell co-occurrence
  std::size_t hop_candidates = 0;   // kept via hop expansion only
  std::size_t forced_pairs = 0;     // kept because the caller forced them
};

/// The strong-co-occurrence graph: one edge per user pair sharing at least
/// one (cell, slot, POI) visit. Built by grouping the inverted index by
/// (cellslot, poi) — near-linear in check-in volume, never O(n^2).
graph::Graph strong_cooccurrence_graph(const CellIndex& index);

/// Appends the cell tier's candidate pairs whose *anchor* cell lies in a
/// grid of [grid_lo, grid_hi): within-cell pairs plus the forward
/// slot-tolerance window (which never leaves the anchor's grid, so anchor
/// ranges partition the cell tier exactly — the property the sharded
/// generator leans on: the shard-ordered union over a grid partition equals
/// the monolithic scan). Pairs are appended unsorted and may repeat.
void append_cell_tier_pairs(const CellIndex& index, std::uint32_t grid_lo,
                            std::uint32_t grid_hi, int slot_tolerance,
                            std::vector<data::UserPair>& out);

/// Appends the hop tier: every pair at most `hop_expansion` hops apart in
/// the strong-co-occurrence graph. Inherently global (BFS closure over
/// users, not cells) — the sharded generator runs it once after the
/// per-shard cell tiers are merged. No-op when hop_expansion <= 0.
void append_hop_tier_pairs(const CellIndex& index, int hop_expansion,
                           std::vector<data::UserPair>& out);

/// Generates every candidate pair from the index alone (no dense
/// enumeration): cell-co-occurring pairs from per-cell user lists joined
/// across the slot-tolerance window, unioned with pairs at most
/// `hop_expansion` hops apart in the strong graph. Sorted, de-duplicated.
std::vector<data::UserPair> generate_candidate_pairs(
    const CellIndex& index, const BlockingConfig& config);

/// Per-pair keep mask for a fixed universe: keep[i] is 1 when universe[i]
/// cell-co-occurs or sits within hop_expansion strong-hops. `strong` must
/// be strong_cooccurrence_graph(index). Stats (when non-null) receive the
/// tier counts; forced pairs are the caller's to add afterwards.
std::vector<char> filter_universe(const CellIndex& index,
                                  const graph::Graph& strong,
                                  const std::vector<data::UserPair>& universe,
                                  const BlockingConfig& config,
                                  BlockingStats* stats = nullptr);

/// Breadth-first reachability test bounded at `hops` edges. `depth_scratch`
/// is resized to the node count and reused across calls (entries are
/// reset on exit via the touched list).
bool within_hops(const graph::Graph& g, graph::NodeId a, graph::NodeId b,
                 int hops, std::vector<int>& depth_scratch,
                 std::vector<graph::NodeId>& queue_scratch);

}  // namespace fs::block
