#include "block/feature_cache.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace fs::block {

namespace {

// Blocks target ~256 KiB of row payload so budget charges are granular
// enough to trip a tight --max-memory-mb before the arena balloons, but a
// tiny run still fits in one or two blocks.
constexpr std::size_t kTargetBlockBytes = 256 * 1024;

std::size_t rows_per_block_for(std::size_t width) {
  if (width == 0) return 0;
  const std::size_t rows = kTargetBlockBytes / (width * sizeof(double));
  return std::max<std::size_t>(rows, 16);
}

}  // namespace

void FeatureCache::RowStore::reset(std::size_t new_width) {
  blocks.clear();
  charges.clear();  // releases every block's MemoryCharge
  of_pair.clear();
  free_slots.clear();
  rows = 0;
  width = new_width;
  rows_per_block = rows_per_block_for(new_width);
}

bool FeatureCache::RowStore::erase(const data::UserPair& pair) {
  const auto it = of_pair.find(pair);
  if (it == of_pair.end()) return false;
  free_slots.push_back(it->second);
  of_pair.erase(it);
  return true;
}

std::size_t FeatureCache::RowStore::clear_rows() {
  const std::size_t dropped = of_pair.size();
  of_pair.clear();
  free_slots.clear();
  rows = 0;  // blocks and charges stay allocated for reuse
  return dropped;
}

const double* FeatureCache::RowStore::row(std::uint32_t index) const {
  return blocks[index / rows_per_block].get() +
         (index % rows_per_block) * width;
}

const double* FeatureCache::RowStore::find(const data::UserPair& pair) const {
  const auto it = of_pair.find(pair);
  if (it == of_pair.end()) {
    misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits.fetch_add(1, std::memory_order_relaxed);
  return row(it->second);
}

double* FeatureCache::RowStore::insert(const data::UserPair& pair) {
  if (!free_slots.empty()) {
    const auto index = free_slots.back();
    free_slots.pop_back();
    of_pair.emplace(pair, index);
    return const_cast<double*>(row(index));
  }
  if (rows == blocks.size() * rows_per_block) {
    const std::size_t block_bytes = rows_per_block * width * sizeof(double);
    // Charge before allocating so BudgetError fires with the arena intact.
    runtime::MemoryCharge charge(context, block_bytes, charge_label);
    blocks.push_back(std::make_unique<double[]>(rows_per_block * width));
    charges.push_back(std::move(charge));
  }
  const auto index = static_cast<std::uint32_t>(rows++);
  of_pair.emplace(pair, index);
  return const_cast<double*>(row(index));
}

void FeatureCache::prepare(std::uint64_t signature, std::size_t joc_width,
                           std::size_t presence_width,
                           runtime::ExecutionContext* context) {
  // A JOC row survives when the signature still matches — or, once, when
  // the caller vouched for the surviving rows under the new signature
  // (carry_joc_across_next_prepare after delta invalidation). Presence rows
  // never ride the carry: the model they are a function of retrained.
  const bool joc_reusable =
      bound_ && joc_.width == joc_width &&
      (signature_ == signature || carry_joc_once_);
  const bool presence_reusable = bound_ && signature_ == signature &&
                                 presence_.width == presence_width;
  if (!joc_reusable) joc_.reset(joc_width);
  if (!presence_reusable) presence_.reset(presence_width);
  signature_ = signature;
  bound_ = true;
  carry_joc_once_ = false;
  joc_.charge_label = "block.cache.joc";
  presence_.charge_label = "block.cache.presence";
  // Re-home existing charges onto the new run's context: release from the
  // old one, charge the new one. A run sharing the cache must see cached
  // bytes under its own --max-memory-mb.
  for (RowStore* store : {&joc_, &presence_}) {
    if (store->context == context) continue;
    std::vector<runtime::MemoryCharge> moved;
    moved.reserve(store->charges.size());
    for (runtime::MemoryCharge& old : store->charges) {
      runtime::MemoryCharge fresh(context, old.bytes(), store->charge_label);
      moved.push_back(std::move(fresh));
    }
    store->charges = std::move(moved);  // old charges release here
    store->context = context;
  }
}

std::size_t FeatureCache::invalidate_joc_touching(
    const std::vector<data::UserId>& users) {
  if (users.empty() || joc_.of_pair.empty()) return 0;
  std::unordered_set<data::UserId> touched(users.begin(), users.end());
  std::vector<data::UserPair> stale;
  for (const auto& [pair, index] : joc_.of_pair)
    if (touched.count(pair.first) != 0 || touched.count(pair.second) != 0)
      stale.push_back(pair);
  for (const auto& pair : stale) joc_.erase(pair);
  return stale.size();
}

std::size_t FeatureCache::invalidate_presence_all() {
  return presence_.clear_rows();
}

FeatureCache::Stats FeatureCache::stats() const {
  Stats s;
  s.joc_hits = joc_.hits.load(std::memory_order_relaxed);
  s.joc_misses = joc_.misses.load(std::memory_order_relaxed);
  s.presence_hits = presence_.hits.load(std::memory_order_relaxed);
  s.presence_misses = presence_.misses.load(std::memory_order_relaxed);
  s.joc_rows = joc_.live_rows();
  s.presence_rows = presence_.live_rows();
  s.bytes = bytes();
  return s;
}

}  // namespace fs::block
