#include "block/cell_index.h"

#include <algorithm>

#include "obs/trace.h"
#include "par/par.h"

namespace fs::block {

namespace {

/// Windowed two-pointer merge over sorted cellslot lists: a match is two
/// entries in the same grid whose slots differ by at most `tolerance`.
bool profiles_cooccur(std::span<const std::uint32_t> a,
                      std::span<const std::uint32_t> b,
                      std::size_t slot_count, int tolerance) {
  const auto tol = static_cast<std::uint32_t>(tolerance);
  std::size_t lo = 0;
  for (const std::uint32_t ca : a) {
    const std::uint32_t grid = ca / slot_count;
    const std::uint32_t window_begin = ca >= tol ? ca - tol : 0;
    while (lo < b.size() && b[lo] < window_begin) ++lo;
    for (std::size_t j = lo; j < b.size() && b[j] <= ca + tol; ++j)
      if (b[j] / slot_count == grid) return true;
  }
  return false;
}

}  // namespace

CellIndex::CellIndex(const data::Dataset& dataset,
                     const geo::SpatialDivision& division,
                     const geo::TimeSlotting& slots,
                     runtime::ExecutionContext* context)
    : grid_count_(division.cell_count()),
      slot_count_(slots.slot_count()),
      cell_profiles_(dataset.user_count()),
      poi_visits_(dataset.user_count()) {
  obs::Span span("block.cell_index.build");
  span.arg("users", static_cast<double>(dataset.user_count()));

  // Per-user profiles: each user writes only its own slot, so the region is
  // byte-identical at any thread count. Binning dominates the build cost.
  par::ParallelOptions popts;
  popts.context = context;
  popts.what = "block.cell_index.profiles";
  popts.grain = 16;
  par::parallel_for(dataset.user_count(), popts, [&](std::size_t u) {
    const auto user = static_cast<data::UserId>(u);
    auto& visits = poi_visits_[u];
    visits.reserve(dataset.trajectory(user).size());
    for (const data::CheckIn& c : dataset.trajectory(user)) {
      const std::size_t grid = division.cell_of(c.location);
      const std::size_t slot = slots.slot_of(c.time);
      visits.push_back(PoiVisit{
          static_cast<std::uint32_t>(grid * slot_count_ + slot), c.poi});
    }
    std::sort(visits.begin(), visits.end());
    visits.erase(std::unique(visits.begin(), visits.end()), visits.end());
  });

  finalize_from_visits();
  span.arg("occupied_cells", static_cast<double>(occupied_.size()));
}

CellIndex CellIndex::from_parts(std::size_t grid_count, std::size_t slot_count,
                                std::vector<std::vector<PoiVisit>> poi_visits) {
  CellIndex index;
  index.grid_count_ = grid_count;
  index.slot_count_ = slot_count;
  index.cell_profiles_.resize(poi_visits.size());
  index.poi_visits_ = std::move(poi_visits);
  index.finalize_from_visits();
  return index;
}

void CellIndex::finalize_from_visits() {
  // Profiles are the visit lists with the POI dimension collapsed; visits
  // are sorted by (cellslot, poi), so a run of equal cellslots is adjacent.
  for (std::size_t u = 0; u < poi_visits_.size(); ++u) {
    auto& profile = cell_profiles_[u];
    profile.clear();
    profile.reserve(poi_visits_[u].size());
    for (const PoiVisit& v : poi_visits_[u])
      if (profile.empty() || profile.back() != v.cellslot)
        profile.push_back(v.cellslot);
  }

  // Inverted cellslot -> users index (CSR over occupied cells). Sequential
  // and deterministic: users ascend, so each cell's list is born sorted.
  std::vector<std::pair<std::uint32_t, data::UserId>> postings;
  std::size_t total = 0;
  for (const auto& profile : cell_profiles_) total += profile.size();
  postings.reserve(total);
  for (data::UserId u = 0; u < cell_profiles_.size(); ++u)
    for (std::uint32_t cell : cell_profiles_[u]) postings.push_back({cell, u});
  std::sort(postings.begin(), postings.end());

  cell_users_.reserve(postings.size());
  for (const auto& [cell, user] : postings) {
    if (occupied_.empty() || occupied_.back() != cell) {
      occupied_.push_back(cell);
      cell_offsets_.push_back(cell_users_.size());
    }
    cell_users_.push_back(user);
  }
  cell_offsets_.push_back(cell_users_.size());

  // Content fingerprint: dimensions plus every profile entry.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(grid_count_);
  mix(slot_count_);
  mix(cell_profiles_.size());
  for (const auto& visits : poi_visits_) {
    mix(visits.size());
    for (const PoiVisit& v : visits) {
      mix(v.cellslot);
      mix(v.poi);
    }
  }
  signature_ = h;
}

std::span<const data::UserId> CellIndex::users_in_cell(
    std::uint32_t cellslot) const {
  const auto it =
      std::lower_bound(occupied_.begin(), occupied_.end(), cellslot);
  if (it == occupied_.end() || *it != cellslot) return {};
  const auto idx = static_cast<std::size_t>(it - occupied_.begin());
  return {cell_users_.data() + cell_offsets_[idx],
          cell_offsets_[idx + 1] - cell_offsets_[idx]};
}

bool CellIndex::cooccur(data::UserId a, data::UserId b,
                        int slot_tolerance) const {
  return profiles_cooccur(cell_profile(a), cell_profile(b), slot_count_,
                          slot_tolerance);
}

bool CellIndex::strong_cooccur(data::UserId a, data::UserId b) const {
  const auto va = poi_visits(a);
  const auto vb = poi_visits(b);
  std::size_t ia = 0, ib = 0;
  while (ia < va.size() && ib < vb.size()) {
    if (va[ia] < vb[ib]) {
      ++ia;
    } else if (vb[ib] < va[ia]) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace fs::block
