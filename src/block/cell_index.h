// Inverted spatial-temporal co-occurrence index (the blocking substrate).
//
// The attack's natural candidate universe is all O(n^2) user pairs, but
// mobility-based link inference hinges on who ever co-occurs: pairs sharing
// no (grid, slot) cell of the spatial-temporal division are overwhelmingly
// non-friends (Table II: 81-92 % of non-friends share no common location).
// The CellIndex turns the division into two retrieval structures:
//
//   * a per-user *cell profile* — the sorted, de-duplicated list of
//     (grid, slot) cells the user ever checked into — for O(|A| + |B|)
//     pairwise co-occurrence tests with a slot tolerance; and
//   * an inverted (grid, slot[, poi]) -> users index, so candidate pairs
//     can be *generated* from co-occupancy instead of enumerated densely.
//
// Both are pure functions of (dataset, division, slots); the signature()
// fingerprint keys downstream caches so they invalidate exactly when the
// division, tau, or the data change.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "geo/spatial_division.h"
#include "geo/time_slots.h"
#include "util/runtime.h"

namespace fs::block {

class CellIndex {
 public:
  /// One check-in group: the user visited `poi` inside cell `cellslot`
  /// (grid * slot_count + slot) at least once.
  struct PoiVisit {
    std::uint32_t cellslot = 0;
    data::PoiId poi = 0;

    friend bool operator==(const PoiVisit&, const PoiVisit&) = default;
    friend auto operator<=>(const PoiVisit&, const PoiVisit&) = default;
  };

  /// Builds the index. The per-user profile pass fans out over fs::par
  /// (users are disjoint slots, so the result is byte-identical at any
  /// thread count); the inverted index is assembled sequentially.
  CellIndex(const data::Dataset& dataset, const geo::SpatialDivision& division,
            const geo::TimeSlotting& slots,
            runtime::ExecutionContext* context = nullptr);

  /// Assembles an index from already-binned per-user visit lists (each
  /// sorted and de-duplicated) — the merge point of the sharded build: a
  /// shard-ordered concatenation of per-shard fragments yields the same
  /// visit lists the monolithic constructor bins, so profiles, the inverted
  /// index, and the signature come out byte-identical. Shares the finalize
  /// path with the constructor; there is exactly one place that derives
  /// them.
  static CellIndex from_parts(std::size_t grid_count, std::size_t slot_count,
                              std::vector<std::vector<PoiVisit>> poi_visits);

  std::size_t user_count() const { return cell_profiles_.size(); }
  std::size_t grid_count() const { return grid_count_; }
  std::size_t slot_count() const { return slot_count_; }

  /// Sorted unique (grid, slot) cells the user ever checked into.
  std::span<const std::uint32_t> cell_profile(data::UserId user) const {
    return cell_profiles_.at(user);
  }

  /// Sorted unique (cellslot, poi) visits of the user.
  std::span<const PoiVisit> poi_visits(data::UserId user) const {
    return poi_visits_.at(user);
  }

  /// Users with at least one check-in inside `cellslot`, sorted ascending.
  /// Empty span for unoccupied cells.
  std::span<const data::UserId> users_in_cell(std::uint32_t cellslot) const;

  /// Occupied cellslots, sorted ascending (the inverted index's keys).
  std::span<const std::uint32_t> occupied_cells() const { return occupied_; }

  /// True when a and b share a grid cell in slots at most `slot_tolerance`
  /// apart — the blocking predicate. Tolerance 0 is exact-(cell, slot)
  /// co-occurrence, the same granularity the JOC's n_ab channel uses.
  bool cooccur(data::UserId a, data::UserId b, int slot_tolerance) const;

  /// True when a and b visited the same POI inside the same (cell, slot) —
  /// the "strong" co-occurrence that makes the pair's JOC carry n_ab mass.
  bool strong_cooccur(data::UserId a, data::UserId b) const;

  /// FNV-1a fingerprint of the full index content (profiles + dimensions).
  /// Two datasets cast into the same division and slotting collide only if
  /// their binned occupancy is identical, which is exactly when cached
  /// per-pair features are reusable.
  std::uint64_t signature() const { return signature_; }

 private:
  CellIndex() = default;
  /// Derives cell_profiles_, the CSR inverted index, and the signature from
  /// poi_visits_ (which must be sorted unique per user).
  void finalize_from_visits();

  std::size_t grid_count_ = 0;
  std::size_t slot_count_ = 0;
  std::vector<std::vector<std::uint32_t>> cell_profiles_;
  std::vector<std::vector<PoiVisit>> poi_visits_;
  // Inverted index in CSR form over occupied cellslots.
  std::vector<std::uint32_t> occupied_;       // sorted occupied cellslot ids
  std::vector<std::size_t> cell_offsets_;     // occupied_.size() + 1
  std::vector<data::UserId> cell_users_;      // concatenated sorted user lists
  std::uint64_t signature_ = 0;
};

}  // namespace fs::block
