#include "block/candidate_gen.h"

#include <algorithm>
#include <queue>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fs::block {

bool blocking_enabled(const BlockingConfig& config,
                      std::size_t universe_pairs) {
  switch (config.mode) {
    case BlockingMode::kOff:
      return false;
    case BlockingMode::kOn:
      return true;
    case BlockingMode::kAuto:
      return universe_pairs >= config.auto_min_pairs;
  }
  return false;
}

graph::Graph strong_cooccurrence_graph(const CellIndex& index) {
  obs::Span span("block.strong_graph.build");
  // Invert per-user (cellslot, poi) visits into (cellslot, poi) -> users
  // groups; every pair inside a group shares that exact visit. Group sizes
  // are bounded by per-POI-per-slot popularity, so the join never touches
  // the O(n^2) pair space.
  std::vector<std::pair<CellIndex::PoiVisit, data::UserId>> postings;
  std::size_t total = 0;
  for (data::UserId u = 0; u < index.user_count(); ++u)
    total += index.poi_visits(u).size();
  postings.reserve(total);
  for (data::UserId u = 0; u < index.user_count(); ++u)
    for (const CellIndex::PoiVisit& v : index.poi_visits(u))
      postings.push_back({v, u});
  std::sort(postings.begin(), postings.end());

  graph::Graph g(index.user_count());
  std::size_t begin = 0;
  while (begin < postings.size()) {
    std::size_t end = begin + 1;
    while (end < postings.size() && postings[end].first == postings[begin].first)
      ++end;
    for (std::size_t i = begin; i < end; ++i)
      for (std::size_t j = i + 1; j < end; ++j)
        g.add_edge(postings[i].second, postings[j].second);
    begin = end;
  }
  span.arg("edges", static_cast<double>(g.edge_count()));
  return g;
}

bool within_hops(const graph::Graph& g, graph::NodeId a, graph::NodeId b,
                 int hops, std::vector<int>& depth_scratch,
                 std::vector<graph::NodeId>& queue_scratch) {
  if (a == b) return true;
  if (hops <= 0) return false;
  depth_scratch.resize(g.node_count(), -1);
  queue_scratch.clear();
  queue_scratch.push_back(a);
  depth_scratch[a] = 0;
  bool found = false;
  for (std::size_t head = 0; head < queue_scratch.size() && !found; ++head) {
    const graph::NodeId v = queue_scratch[head];
    const int depth = depth_scratch[v];
    if (depth >= hops) break;  // queue is depth-ordered
    for (graph::NodeId w : g.neighbors(v)) {
      if (depth_scratch[w] >= 0) continue;
      if (w == b) {
        found = true;
        break;
      }
      depth_scratch[w] = depth + 1;
      queue_scratch.push_back(w);
    }
  }
  for (const graph::NodeId v : queue_scratch) depth_scratch[v] = -1;
  depth_scratch[a] = -1;
  return found;
}

void append_cell_tier_pairs(const CellIndex& index, std::uint32_t grid_lo,
                            std::uint32_t grid_hi, int slot_tolerance,
                            std::vector<data::UserPair>& out) {
  // Join each occupied anchor cell's user list against the lists of cells
  // in the same grid at most slot_tolerance slots away. Only the forward
  // window [cell, cell + tolerance] is joined — the backward half is the
  // same pair seen from the other cell. The window join may *read* cells
  // past the anchor range (the index is global); only anchors are bounded.
  const auto occupied = index.occupied_cells();
  const auto slot_count = static_cast<std::uint32_t>(index.slot_count());
  const auto tol =
      static_cast<std::uint32_t>(std::max(0, slot_tolerance));
  const std::size_t begin = static_cast<std::size_t>(
      std::lower_bound(occupied.begin(), occupied.end(),
                       grid_lo * slot_count) -
      occupied.begin());
  for (std::size_t i = begin; i < occupied.size(); ++i) {
    const std::uint32_t cell = occupied[i];
    const std::uint32_t grid = cell / slot_count;
    if (grid >= grid_hi) break;
    const auto users = index.users_in_cell(cell);
    // Within the cell itself.
    for (std::size_t x = 0; x < users.size(); ++x)
      for (std::size_t y = x + 1; y < users.size(); ++y)
        out.push_back(data::make_pair_ordered(users[x], users[y]));
    // Against later cells inside the tolerance window and the same grid.
    for (std::size_t j = i + 1;
         j < occupied.size() && occupied[j] <= cell + tol; ++j) {
      if (occupied[j] / slot_count != grid) continue;
      for (const data::UserId u : users)
        for (const data::UserId v : index.users_in_cell(occupied[j]))
          if (u != v) out.push_back(data::make_pair_ordered(u, v));
    }
  }
}

void append_hop_tier_pairs(const CellIndex& index, int hop_expansion,
                           std::vector<data::UserPair>& out) {
  if (hop_expansion <= 0) return;
  const graph::Graph strong = strong_cooccurrence_graph(index);
  std::vector<int> depth(strong.node_count(), -1);
  std::vector<graph::NodeId> queue;
  for (graph::NodeId a = 0; a < strong.node_count(); ++a) {
    queue.clear();
    queue.push_back(a);
    depth[a] = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const graph::NodeId v = queue[head];
      if (depth[v] >= hop_expansion) break;
      for (graph::NodeId w : strong.neighbors(v)) {
        if (depth[w] >= 0) continue;
        depth[w] = depth[v] + 1;
        queue.push_back(w);
        if (w > a) out.push_back({a, w});
      }
    }
    for (const graph::NodeId v : queue) depth[v] = -1;
  }
}

std::vector<data::UserPair> generate_candidate_pairs(
    const CellIndex& index, const BlockingConfig& config) {
  obs::Span span("block.candidates.generate");
  std::vector<data::UserPair> out;

  // Cell tier over every grid at once (the sharded path calls the same
  // helper per grid range and unions the results).
  append_cell_tier_pairs(index, 0,
                         static_cast<std::uint32_t>(index.grid_count()),
                         config.slot_tolerance, out);

  append_hop_tier_pairs(index, config.hop_expansion, out);

  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  span.arg("candidates", static_cast<double>(out.size()));
  return out;
}

std::vector<char> filter_universe(const CellIndex& index,
                                  const graph::Graph& strong,
                                  const std::vector<data::UserPair>& universe,
                                  const BlockingConfig& config,
                                  BlockingStats* stats) {
  obs::Span span("block.universe.filter");
  std::vector<char> keep(universe.size(), 0);
  std::vector<int> depth;
  std::vector<graph::NodeId> queue;
  std::size_t cell_kept = 0;
  std::size_t hop_kept = 0;
  for (std::size_t i = 0; i < universe.size(); ++i) {
    const auto [a, b] = universe[i];
    if (index.cooccur(a, b, config.slot_tolerance)) {
      keep[i] = 1;
      ++cell_kept;
    } else if (config.hop_expansion > 0 &&
               within_hops(strong, a, b, config.hop_expansion, depth,
                           queue)) {
      keep[i] = 1;
      ++hop_kept;
    }
  }
  if (stats != nullptr) {
    stats->universe_pairs = universe.size();
    stats->cell_candidates = cell_kept;
    stats->hop_candidates = hop_kept;
    stats->scored_pairs = cell_kept + hop_kept;
    stats->pruned_pairs = universe.size() - stats->scored_pairs;
  }
  span.arg("kept", static_cast<double>(cell_kept + hop_kept));
  return keep;
}

}  // namespace fs::block
