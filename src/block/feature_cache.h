// Memoized per-pair feature store: JOC rows and presence features, keyed by
// user pair under a (division, tau, model) signature.
//
// The pipeline's dominant repeated cost is rebuilding identical per-pair
// artifacts: the flattened JOC cuboid and the autoencoder's presence
// feature are pure functions of (pair, division, tau, trained model), yet a
// dense run rematerializes them wholesale. The cache memoizes both, so
//
//   * phase 2's refinement iterations fetch presence rows instead of
//     re-deriving them every pass, and
//   * a caller that owns a cache across runs (same dataset, same division,
//     same seeds) pays the feature build once.
//
// Storage is a chunked arena: rows live in fixed-size blocks whose
// addresses never move as the cache grows, so `find_*` pointers handed to
// parallel readers stay valid while the region runs. Each new block is
// charged against the run's ExecutionContext memory budget (BudgetError
// propagates to the caller before the allocation happens), and the total
// is mirrored into the block.cache.bytes gauge by the pipeline.
//
// Invalidation is signature-driven: prepare() drops everything exactly when
// the signature or the row widths change, and is a no-op (entries survive,
// hits accrue) otherwise. The signature must cover everything the rows are
// a function of — the CellIndex content hash covers (dataset, division,
// tau); callers fold in model configuration and training-set identity.
//
// Streaming adds a finer grain: a delta of events touches a handful of
// users, and a JOC row is a pure function of its pair's own occupancy — so
// invalidate_joc_touching() evicts exactly the rows of touched users
// (freed slots are reused), presence rows (functions of the globally
// retrained model) drop wholesale via invalidate_presence_all(), and
// carry_joc_across_next_prepare() lets the next prepare() adopt the new
// signature while keeping the surviving JOC rows instead of nuking the
// cache because one event arrived.
//
// Concurrency contract: find_* are safe from parallel regions (lookups are
// const; hit/miss counters are relaxed atomics). insert_* and prepare()
// are single-threaded — the pipeline computes the miss list sequentially,
// allocates slots sequentially, and only the row *fill* fans out.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "util/runtime.h"

namespace fs::block {

class FeatureCache {
 public:
  struct Stats {
    std::uint64_t joc_hits = 0;
    std::uint64_t joc_misses = 0;
    std::uint64_t presence_hits = 0;
    std::uint64_t presence_misses = 0;
    std::size_t joc_rows = 0;
    std::size_t presence_rows = 0;
    std::size_t bytes = 0;

    std::uint64_t hits() const { return joc_hits + presence_hits; }
    std::uint64_t misses() const { return joc_misses + presence_misses; }
    double hit_rate() const {
      const std::uint64_t total = hits() + misses();
      return total == 0 ? 0.0
                        : static_cast<double>(hits()) /
                              static_cast<double>(total);
    }
  };

  FeatureCache() = default;

  /// Binds the cache to a signature and row widths. Entries survive only
  /// when all three match the previous binding; otherwise the arenas drop
  /// and their memory charges release. The context (may be null) is
  /// captured for charging blocks allocated until the next prepare().
  /// Counters are never reset by a matching prepare(), so hit rates
  /// accumulate across runs sharing the cache.
  void prepare(std::uint64_t signature, std::size_t joc_width,
               std::size_t presence_width,
               runtime::ExecutionContext* context);

  std::uint64_t signature() const { return signature_; }
  std::size_t joc_width() const { return joc_.width; }
  std::size_t presence_width() const { return presence_.width; }

  /// Cached JOC row of the pair, or nullptr. Counts one hit or miss.
  const double* find_joc(const data::UserPair& pair) const {
    return joc_.find(pair);
  }
  /// Allocates (and indexes) the pair's JOC row; the caller fills it. The
  /// pair must not be present. May throw BudgetError on a new block.
  double* insert_joc(const data::UserPair& pair) { return joc_.insert(pair); }

  const double* find_presence(const data::UserPair& pair) const {
    return presence_.find(pair);
  }
  double* insert_presence(const data::UserPair& pair) {
    return presence_.insert(pair);
  }

  /// Evicts every cached JOC row whose pair contains any of `users`,
  /// returning the number of rows dropped. Freed slots go on a free list
  /// and are reused by later inserts, so repeated deltas do not grow the
  /// arena. Single-threaded, like insert_*.
  std::size_t invalidate_joc_touching(const std::vector<data::UserId>& users);

  /// Evicts every presence row (a retrained presence model invalidates all
  /// of them at once); arena blocks and their charges are kept for reuse.
  std::size_t invalidate_presence_all();

  /// One-shot escape hatch from whole-signature invalidation: the NEXT
  /// prepare() may adopt a *different* signature while keeping surviving
  /// JOC rows (the JOC width must still match; presence drops as usual).
  /// The caller owns the proof obligation that every stale row was already
  /// evicted via invalidate_joc_touching() — e.g. the stream daemon, which
  /// knows exactly which users an event delta touched.
  void carry_joc_across_next_prepare() { carry_joc_once_ = true; }

  /// Arena bytes currently held (blocks, not map overhead).
  std::size_t bytes() const { return joc_.bytes() + presence_.bytes(); }

  Stats stats() const;

 private:
  struct PairHash {
    std::size_t operator()(const data::UserPair& p) const noexcept {
      std::uint64_t v = (static_cast<std::uint64_t>(p.first) << 32) |
                        static_cast<std::uint64_t>(p.second);
      // splitmix64 finalizer.
      v ^= v >> 30;
      v *= 0xbf58476d1ce4e5b9ULL;
      v ^= v >> 27;
      v *= 0x94d049bb133111ebULL;
      v ^= v >> 31;
      return static_cast<std::size_t>(v);
    }
  };

  struct RowStore {
    std::size_t width = 0;
    std::size_t rows_per_block = 0;
    std::size_t rows = 0;
    std::vector<std::unique_ptr<double[]>> blocks;
    std::vector<runtime::MemoryCharge> charges;
    std::vector<std::uint32_t> free_slots;  // erased row indices, reusable
    std::unordered_map<data::UserPair, std::uint32_t, PairHash> of_pair;
    runtime::ExecutionContext* context = nullptr;
    const char* charge_label = "block.cache";
    mutable std::atomic<std::uint64_t> hits{0};
    mutable std::atomic<std::uint64_t> misses{0};

    void reset(std::size_t new_width);
    const double* find(const data::UserPair& pair) const;
    double* insert(const data::UserPair& pair);
    /// Drops the pair's row (slot goes on the free list). False if absent.
    bool erase(const data::UserPair& pair);
    /// Drops every row, keeping blocks and charges for reuse.
    std::size_t clear_rows();
    std::size_t live_rows() const { return rows - free_slots.size(); }
    const double* row(std::uint32_t index) const;
    std::size_t bytes() const {
      return blocks.size() * rows_per_block * width * sizeof(double);
    }
  };

  std::uint64_t signature_ = 0;
  bool bound_ = false;
  bool carry_joc_once_ = false;
  RowStore joc_;
  RowStore presence_;
};

}  // namespace fs::block
