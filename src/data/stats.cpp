#include "data/stats.h"

#include <algorithm>

namespace fs::data {

DatasetStats dataset_stats(const Dataset& ds) {
  DatasetStats s;
  s.pois = ds.poi_count();
  s.users = ds.user_count();
  s.checkins = ds.checkin_count();
  s.links = ds.friendships().edge_count();
  s.mean_checkins_per_user =
      s.users == 0 ? 0.0
                   : static_cast<double>(s.checkins) /
                         static_cast<double>(s.users);
  return s;
}

CoPresenceCensus co_presence_census(const Dataset& ds,
                                    const std::vector<UserPair>& friends,
                                    const std::vector<UserPair>& non_friends) {
  CoPresenceCensus census;
  const graph::Graph& g = ds.friendships();

  auto tally = [&](const std::vector<UserPair>& pairs, double (&cells)[2][2]) {
    if (pairs.empty()) return;
    std::size_t counts[2][2] = {{0, 0}, {0, 0}};
    for (const auto& [a, b] : pairs) {
      const int cl = ds.common_poi_count(a, b) > 0 ? 1 : 0;
      const int cf = g.common_neighbor_count(a, b) > 0 ? 1 : 0;
      ++counts[cl][cf];
    }
    for (int cl = 0; cl < 2; ++cl)
      for (int cf = 0; cf < 2; ++cf)
        cells[cl][cf] = static_cast<double>(counts[cl][cf]) /
                        static_cast<double>(pairs.size());
  };

  tally(friends, census.friends);
  tally(non_friends, census.non_friends);
  census.friend_pairs = friends.size();
  census.non_friend_pairs = non_friends.size();
  return census;
}

CountCdf::CountCdf(const std::vector<std::size_t>& values) {
  total_ = values.size();
  std::size_t max_value = 0;
  for (std::size_t v : values) max_value = std::max(max_value, v);
  histogram_.assign(max_value + 1, 0);
  for (std::size_t v : values) ++histogram_[v];
}

double CountCdf::at(std::size_t x) const {
  if (total_ == 0) return 0.0;
  std::size_t cum = 0;
  const std::size_t upto = std::min(x, histogram_.size() - 1);
  for (std::size_t v = 0; v <= upto; ++v) cum += histogram_[v];
  return static_cast<double>(cum) / static_cast<double>(total_);
}

std::vector<std::size_t> common_poi_counts(
    const Dataset& ds, const std::vector<UserPair>& pairs) {
  std::vector<std::size_t> out;
  out.reserve(pairs.size());
  for (const auto& [a, b] : pairs) out.push_back(ds.common_poi_count(a, b));
  return out;
}

std::vector<std::size_t> common_friend_counts(
    const graph::Graph& g, const std::vector<UserPair>& pairs) {
  std::vector<std::size_t> out;
  out.reserve(pairs.size());
  for (const auto& [a, b] : pairs)
    out.push_back(g.common_neighbor_count(a, b));
  return out;
}

}  // namespace fs::data
