// Check-in dataset model (Definitions 1-5): POIs, check-ins, trajectories,
// and the ground-truth social graph.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "geo/latlng.h"
#include "geo/time_slots.h"
#include "graph/graph.h"

namespace fs::data {

using UserId = graph::NodeId;
using PoiId = std::uint32_t;

/// An unordered user pair; by convention first < second.
using UserPair = std::pair<UserId, UserId>;

inline UserPair make_pair_ordered(UserId a, UserId b) {
  return a < b ? UserPair{a, b} : UserPair{b, a};
}

/// A point of interest. The paper's Definition 1 carries a radius; check-ins
/// are already POI-resolved here, so the radius only matters during synthesis
/// and is not stored.
struct Poi {
  geo::LatLng location;
  std::uint16_t category = 0;  // venue category (used by the Yu et al. baseline)
};

/// A check-in (Definition 2): user u visited POI p at time t. The raw
/// coordinate is retained because obfuscation mechanisms perturb it.
struct CheckIn {
  UserId user = 0;
  PoiId poi = 0;
  geo::Timestamp time = 0;
  geo::LatLng location;
};

/// An immutable check-in dataset with per-user trajectory indexing.
class Dataset {
 public:
  Dataset() = default;

  /// Builds the dataset: sorts check-ins by (user, time) and indexes
  /// per-user trajectories. `friendships` is the ground truth social graph;
  /// its node count must equal `user_count`.
  static Dataset build(std::size_t user_count, std::vector<Poi> pois,
                       std::vector<CheckIn> checkins,
                       graph::Graph friendships);

  std::size_t user_count() const { return user_count_; }
  std::size_t poi_count() const { return pois_.size(); }
  std::size_t checkin_count() const { return checkins_.size(); }

  const Poi& poi(PoiId id) const { return pois_.at(id); }
  const std::vector<Poi>& pois() const { return pois_; }
  const std::vector<CheckIn>& checkins() const { return checkins_; }
  const graph::Graph& friendships() const { return friendships_; }

  /// The user's trajectory (Definition 3), time-ordered.
  std::span<const CheckIn> trajectory(UserId user) const;

  std::size_t checkin_count(UserId user) const {
    return trajectory(user).size();
  }

  /// Sorted distinct POIs the user ever visited.
  std::vector<PoiId> visited_pois(UserId user) const;

  /// Number of distinct POIs visited by both users (the co-location count
  /// used by Table II / Fig 1 / Fig 12).
  std::size_t common_poi_count(UserId a, UserId b) const;

  /// Observation window [begin, end): derived from the data at build time.
  geo::Timestamp window_begin() const { return window_begin_; }
  geo::Timestamp window_end() const { return window_end_; }

  /// All POI coordinates, indexable by PoiId (for spatial division builds).
  std::vector<geo::LatLng> poi_coordinates() const;

  /// Returns a copy with the same POIs/graph but different check-ins
  /// (obfuscation mechanisms produce these).
  Dataset with_checkins(std::vector<CheckIn> checkins) const;

 private:
  std::size_t user_count_ = 0;
  std::vector<Poi> pois_;
  std::vector<CheckIn> checkins_;
  std::vector<std::size_t> user_offsets_;  // user_count_ + 1 entries
  graph::Graph friendships_;
  geo::Timestamp window_begin_ = 0;
  geo::Timestamp window_end_ = 0;
};

}  // namespace fs::data
