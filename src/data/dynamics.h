// Temporal dynamics of the ground-truth graph: friendships form and
// dissolve *during* the observation window (Merritt et al., PAPERS.md),
// while a static trace pretends every edge existed for the whole window.
//
// apply_temporal_drift models that mismatch from the attacker's side: the
// labels stay fixed (the pair IS a friendship at evaluation time), but the
// mobility evidence for a drifting pair only covers part of the window —
// a dissolving friendship stops producing co-locations after its breakup,
// a forming one produces none before it starts. This is the paper's
// sparse-evidence hard case turned into a sweepable axis.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace fs::data {

/// Returns a copy of `ds` where a `fraction` of ground-truth friend edges
/// drift: selected edges alternate between DISSOLVING (the pair's shared
/// evidence is erased from the second half of the observation window) and
/// FORMING (erased from the first half). Evidence erasure removes the
/// higher-id endpoint's check-ins at POIs both endpoints visit inside the
/// inactive half-window; each user always keeps at least one check-in.
/// The friendship graph (and thus every label and pair split) is
/// unchanged. Deterministic in (ds, fraction, seed).
Dataset apply_temporal_drift(const Dataset& ds, double fraction,
                             std::uint64_t seed);

}  // namespace fs::data
