// Countermeasure mechanisms from Section IV-D: hiding, in-grid blurring,
// cross-grid blurring. Each returns a perturbed copy of the dataset.
#pragma once

#include "data/dataset.h"
#include "geo/quadtree.h"
#include "util/rng.h"

namespace fs::data {

/// Randomly removes `ratio` of all check-ins, but never a user's last
/// remaining check-in (the paper's exact rule, preserving data utility).
Dataset hide_checkins(const Dataset& ds, double ratio, util::Rng& rng);

/// Rate-coupled hiding for ratio sweeps: each check-in draws one fixed
/// uniform from (seed, check-in index) and is hidden iff it falls below
/// `ratio`, so the hidden set at a lower ratio is a strict subset of the
/// hidden set at any higher ratio — the evidence loss is nested and a sweep
/// is monotone by construction (the property the scenario arena's defense
/// axis is graded against). The "never a user's last check-in" rule is kept
/// by always exempting each user's highest-draw record. Marginally each
/// non-exempt check-in is hidden with probability `ratio`, matching
/// hide_checkins in distribution.
Dataset hide_checkins_coupled(const Dataset& ds, double ratio,
                              std::uint64_t seed);

/// Replaces the POI of `ratio` of check-ins with another POI in the SAME
/// quadtree grid cell (in-grid blurring). A check-in whose cell holds no
/// other POI is left unchanged.
Dataset blur_in_grid(const Dataset& ds, double ratio,
                     const geo::QuadtreeDivision& division, util::Rng& rng);

/// Replaces the POI of `ratio` of check-ins with a POI from a randomly
/// chosen NEIGHBORING grid cell (cross-grid blurring). Falls back to
/// in-grid replacement when no neighbor cell holds a POI.
Dataset blur_cross_grid(const Dataset& ds, double ratio,
                        const geo::QuadtreeDivision& division,
                        util::Rng& rng);

}  // namespace fs::data
