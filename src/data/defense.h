// FriendGuard: a friendship-aware obfuscation mechanism.
//
// The paper's conclusion names as future work "design an obfuscation
// mechanism to effectively protect friendship from being unveiled by
// inference attacks". This module implements that extension. The insight is
// that FriendSeeker (and every attack evaluated here) feeds on PAIRWISE
// evidence, while hiding and blurring perturb check-ins INDIVIDUALLY —
// wasting most of their budget on records that never supported any pairwise
// inference. FriendGuard spends the same budget only where it hurts the
// attacker:
//
//   1. Score each check-in by the pairwise evidence it creates: the number
//      of OTHER users' check-ins at the same POI within a time window
//      (temporal co-occurrence), plus how rare the POI is (rare shared
//      POIs are strong friendship evidence).
//   2. Perturb the highest-evidence check-ins first, by either relocating
//      them to a popular hub POI in the same grid (evidence blending: the
//      record keeps its grid cell — utility — but now looks like hub
//      noise) or re-timing them within the week (breaking temporal
//      alignment while preserving the weekly activity profile).
//
// The countermeasure bench compares FriendGuard with hiding/blurring at
// equal budget.
#pragma once

#include "data/dataset.h"
#include "geo/quadtree.h"
#include "util/rng.h"

namespace fs::data {

struct FriendGuardConfig {
  /// Fraction of check-ins the defender may perturb (the budget; directly
  /// comparable to the hiding/blurring ratio).
  double budget = 0.3;
  /// Co-occurrence window used when scoring evidence.
  geo::Timestamp cooccurrence_window = 24 * 3600;
  /// Weight of POI rarity in the evidence score.
  double rarity_weight = 1.0;
  /// Probability of relocating (vs re-timing) a selected check-in.
  double relocate_probability = 0.5;
  std::uint64_t seed = 91;
};

/// Evidence score of every check-in (index-aligned with
/// dataset.checkins()). Exposed for tests and analysis.
std::vector<double> checkin_evidence_scores(const Dataset& dataset,
                                            const FriendGuardConfig& config);

/// Applies FriendGuard and returns the protected dataset. The quadtree
/// division defines "same grid" for relocation.
Dataset friend_guard(const Dataset& dataset,
                     const geo::QuadtreeDivision& division,
                     const FriendGuardConfig& config);

}  // namespace fs::data
