// Loaders for the SNAP check-in formats used by Gowalla and Brightkite, so
// the real traces drop into this pipeline unchanged when available:
//
//   checkins: <user-ID> \t <ISO-8601 time> \t <lat> \t <lng> \t <location-ID>
//   edges:    <user-ID> \t <user-ID>
//
// User and location ids are re-densified; users with fewer than
// `min_checkins` records are dropped (the paper excludes users who never
// check in or check in only once).
#pragma once

#include <string>

#include "data/dataset.h"

namespace fs::data {

struct LoadOptions {
  int min_checkins = 2;
  /// Cap on users (0 = unlimited) for subsampled experiments.
  std::size_t max_users = 0;
};

/// Parses "2010-10-19T23:55:27Z" into epoch seconds (UTC, proleptic
/// Gregorian). Throws on malformed input.
geo::Timestamp parse_iso8601_utc(const std::string& text);

/// Loads a SNAP-format dataset from a check-ins file and an edges file.
Dataset load_checkins_snap(const std::string& checkins_path,
                           const std::string& edges_path,
                           const LoadOptions& options = {});

/// Serializes a dataset back out in SNAP format (round-trip testing, and
/// handing synthetic worlds to external tools).
void save_checkins_snap(const Dataset& ds, const std::string& checkins_path,
                        const std::string& edges_path);

}  // namespace fs::data
