// Loaders for the SNAP check-in formats used by Gowalla and Brightkite, so
// the real traces drop into this pipeline unchanged when available:
//
//   checkins: <user-ID> \t <ISO-8601 time> \t <lat> \t <lng> \t <location-ID>
//   edges:    <user-ID> \t <user-ID>
//
// User and location ids are re-densified; users with fewer than
// `min_checkins` records are dropped (the paper excludes users who never
// check in or check in only once).
//
// Real traces are dirty. `Strictness::kStrict` (the default) throws
// fs::ParseError on the first malformed record; `Strictness::kPermissive`
// quarantines malformed and out-of-range records into a `LoadReport`
// (per-category counters plus a few sample lines) and loads the rest.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/error.h"
#include "util/runtime.h"

namespace fs::data {

enum class Strictness {
  kStrict,      // throw on the first malformed record
  kPermissive,  // quarantine malformed records, keep loading
};

struct LoadOptions {
  int min_checkins = 2;
  /// Cap on users (0 = unlimited) for subsampled experiments.
  std::size_t max_users = 0;
  Strictness strictness = Strictness::kStrict;
  /// How many quarantined lines to keep verbatim in the report.
  std::size_t max_sample_lines = 5;
  /// Retry policy for opening the input files (transient I/O: NFS hiccups,
  /// slow mounts). Each retry is reported into `diagnostics` when set;
  /// exhausted retries surface the original fs::IoError.
  runtime::RetryPolicy open_retry = open_retry_defaults();
  /// Optional sink for retry/degradation reports during loading.
  util::Diagnostics* diagnostics = nullptr;
  /// Optional governance: a cooperative cancellation point runs every few
  /// thousand lines (a partial dataset is never usable, so both
  /// cancellation and deadline expiry abort the load with a typed error).
  runtime::ExecutionContext* context = nullptr;

  static runtime::RetryPolicy open_retry_defaults() {
    runtime::RetryPolicy policy;
    policy.max_attempts = 2;
    policy.backoff_ms = 1.0;
    return policy;
  }
};

/// Per-category census of what permissive loading quarantined. Counters
/// are exact regardless of the two-pass streaming implementation.
struct LoadReport {
  // Check-in file.
  std::size_t checkin_lines = 0;        // non-empty lines seen
  std::size_t accepted_checkins = 0;    // parsed into the dataset
  std::size_t short_lines = 0;          // fewer than 5 fields
  std::size_t bad_timestamps = 0;       // unparseable/impossible dates
  std::size_t bad_numbers = 0;          // unparseable ids/coordinates
  std::size_t out_of_range_coords = 0;  // |lat| > 90 or |lng| > 180
  // Edge file.
  std::size_t edge_lines = 0;
  std::size_t accepted_edges = 0;
  std::size_t short_edge_lines = 0;
  std::size_t bad_edge_numbers = 0;
  // Activity filtering (not quarantine — these records were valid).
  std::size_t users_below_activity_floor = 0;
  std::size_t users_dropped_by_cap = 0;
  /// Up to LoadOptions::max_sample_lines quarantined lines, verbatim.
  std::vector<std::string> sample_bad_lines;

  std::size_t quarantined_checkins() const {
    return short_lines + bad_timestamps + bad_numbers + out_of_range_coords;
  }
  std::size_t quarantined_edges() const {
    return short_edge_lines + bad_edge_numbers;
  }
  /// Human-readable multi-line summary for the CLI.
  std::string summary() const;
};

/// Parses "2010-10-19T23:55:27Z" into epoch seconds (UTC, proleptic
/// Gregorian). Validates the calendar date (days-in-month, leap years) and
/// rejects trailing garbage after the seconds field (an optional 'Z' and
/// trailing whitespace are allowed). Throws fs::ParseError on bad input.
geo::Timestamp parse_iso8601_utc(const std::string& text);

/// One validated check-in record before user/POI densification — what a
/// parsed SNAP line carries. The streaming ingestion path accumulates these
/// and assembles datasets incrementally; the file loader produces them
/// line by line.
struct RawRecord {
  long long user = 0;
  geo::Timestamp time = 0;
  geo::LatLng location;
  long long poi = 0;
};

/// Assembles a Dataset from already-validated records and raw-id edges with
/// the *exact* selection semantics of load_checkins_snap: the min_checkins
/// activity floor, the max_users cap, user densification ascending by
/// original id, POIs interned in record order among kept records, and
/// edges mapped through the surviving users. Kept in lockstep with the
/// file loader by a differential test so the streaming path can never fork
/// from batch loading. Only the activity-filter counters of `report` are
/// filled (records here are already validated).
Dataset assemble_from_records(
    const std::vector<RawRecord>& records,
    const std::vector<std::pair<long long, long long>>& raw_edges,
    const LoadOptions& options = {}, LoadReport* report = nullptr,
    std::vector<long long>* user_ids_out = nullptr);

/// Reads a SNAP edges file into raw-id pairs, honouring the options'
/// strict/permissive semantics (quarantined lines land in `report` when
/// permissive) and the open-retry policy. Shared by the file loader and
/// the streaming service.
std::vector<std::pair<long long, long long>> read_edges_file(
    const std::string& edges_path, const LoadOptions& options = {},
    LoadReport* report = nullptr);

/// Loads a SNAP-format dataset from a check-ins file and an edges file.
/// Missing/unreadable files throw fs::IoError in both modes. If `report`
/// is non-null it is reset and filled with the load census.
Dataset load_checkins_snap(const std::string& checkins_path,
                           const std::string& edges_path,
                           const LoadOptions& options = {},
                           LoadReport* report = nullptr);

/// Serializes a dataset back out in SNAP format (round-trip testing, and
/// handing synthetic worlds to external tools). Coordinates are written
/// with 7 decimal places (~1 cm), the precision real SNAP traces carry.
void save_checkins_snap(const Dataset& ds, const std::string& checkins_path,
                        const std::string& edges_path);

}  // namespace fs::data
