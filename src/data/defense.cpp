#include "data/defense.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace fs::data {

std::vector<double> checkin_evidence_scores(const Dataset& dataset,
                                            const FriendGuardConfig& config) {
  const auto& checkins = dataset.checkins();

  // Group check-in indices by POI, time-sorted, to count co-occurrences
  // with a sliding window.
  std::vector<std::vector<std::size_t>> by_poi(dataset.poi_count());
  for (std::size_t i = 0; i < checkins.size(); ++i)
    by_poi[checkins[i].poi].push_back(i);

  // POI popularity (distinct visitors) for the rarity term.
  std::vector<std::size_t> popularity(dataset.poi_count(), 0);
  for (PoiId p = 0; p < dataset.poi_count(); ++p) {
    std::vector<UserId> visitors;
    for (std::size_t idx : by_poi[p]) visitors.push_back(checkins[idx].user);
    std::sort(visitors.begin(), visitors.end());
    visitors.erase(std::unique(visitors.begin(), visitors.end()),
                   visitors.end());
    popularity[p] = visitors.size();
  }

  std::vector<double> scores(checkins.size(), 0.0);
  for (PoiId p = 0; p < dataset.poi_count(); ++p) {
    auto& events = by_poi[p];
    std::sort(events.begin(), events.end(),
              [&](std::size_t x, std::size_t y) {
                return checkins[x].time < checkins[y].time;
              });
    const double rarity =
        config.rarity_weight /
        std::log(2.0 + static_cast<double>(popularity[p]));
    // Sliding window: count other-user check-ins within the window.
    std::size_t lo = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const geo::Timestamp t = checkins[events[i]].time;
      while (checkins[events[lo]].time + config.cooccurrence_window < t)
        ++lo;
      std::size_t cooccurrences = 0;
      for (std::size_t j = lo; j < events.size(); ++j) {
        if (checkins[events[j]].time > t + config.cooccurrence_window) break;
        if (checkins[events[j]].user != checkins[events[i]].user)
          ++cooccurrences;
      }
      scores[events[i]] =
          static_cast<double>(cooccurrences) * rarity +
          (popularity[p] > 1 ? rarity : 0.0);
    }
  }
  return scores;
}

Dataset friend_guard(const Dataset& dataset,
                     const geo::QuadtreeDivision& division,
                     const FriendGuardConfig& config) {
  if (config.budget < 0.0 || config.budget > 1.0)
    throw std::invalid_argument("friend_guard: budget must be in [0, 1]");

  const std::vector<double> scores =
      checkin_evidence_scores(dataset, config);
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return scores[x] > scores[y];
  });

  const auto budget_count = static_cast<std::size_t>(
      config.budget * static_cast<double>(scores.size()));
  util::Rng rng(config.seed);

  std::vector<CheckIn> out(dataset.checkins());
  const geo::Timestamp week = 7 * geo::kSecondsPerDay;
  for (std::size_t rank = 0; rank < budget_count && rank < order.size();
       ++rank) {
    const std::size_t idx = order[rank];
    if (scores[idx] <= 0.0) break;  // remaining records carry no evidence
    CheckIn& c = out[idx];
    if (rng.chance(config.relocate_probability)) {
      // Evidence blending: move to the most popular POI in the same grid
      // (the "hub") — the record stays in its spatial cell but no longer
      // pins a rare shared place.
      const std::size_t cell = division.cell_of_poi(c.poi);
      const auto& candidates = division.cell_pois(cell);
      if (candidates.size() > 1) {
        PoiId replacement = c.poi;
        // Pick any other POI in the cell, favoring a different one.
        for (int attempt = 0; attempt < 4 && replacement == c.poi; ++attempt)
          replacement = candidates[rng.index(candidates.size())];
        if (replacement != c.poi) {
          c.poi = replacement;
          c.location = dataset.poi(replacement).location;
          continue;
        }
      }
      // Fall through to re-timing when the cell has no alternative.
    }
    // Re-timing: shift to a uniformly random moment within +-half a week,
    // clamped into the observation window. Breaks co-occurrence alignment
    // but keeps the record (and roughly its week) for utility.
    const geo::Timestamp jitter =
        static_cast<geo::Timestamp>(rng.range(-week / 2, week / 2));
    c.time = std::clamp(c.time + jitter, dataset.window_begin(),
                        dataset.window_end() - 1);
  }
  return dataset.with_checkins(std::move(out));
}

}  // namespace fs::data
