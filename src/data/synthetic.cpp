#include "data/synthetic.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <stdexcept>

#include "util/rng.h"

namespace fs::data {

SyntheticWorldConfig gowalla_like() {
  SyntheticWorldConfig c;
  c.name = "gowalla-like";
  c.user_count = 500;
  c.poi_count = 1500;
  c.mean_real_degree = 4.0;
  c.city_count = 7;
  c.city_sigma_deg = 0.16;        // more dispersed POIs (paper Sec IV-B)
  c.countryside_fraction = 0.14;
  c.checkin_alpha = 1.62;         // sparser check-ins (53 per user avg)
  c.max_checkins_per_user = 150;
  c.covisit_friend_prob = 0.50;   // co-visit evidence is the exception
  c.covisit_events_mean = 1.6;
  c.cyber_edge_fraction = 0.42;
  c.seed = 1001;
  return c;
}

SyntheticWorldConfig brightkite_like() {
  SyntheticWorldConfig c;
  c.name = "brightkite-like";
  c.user_count = 520;
  c.poi_count = 1300;
  c.mean_real_degree = 4.2;
  c.city_count = 5;
  c.city_sigma_deg = 0.10;        // tighter geography
  c.countryside_fraction = 0.08;
  c.checkin_alpha = 1.45;         // denser check-ins (91 per user avg)
  c.max_checkins_per_user = 220;
  c.covisit_friend_prob = 0.62;   // denser than gowalla, still sparse
  c.covisit_events_mean = 2.0;
  c.cyber_edge_fraction = 0.38;
  c.seed = 2002;
  return c;
}

bool SyntheticWorld::is_cyber_edge(UserId a, UserId b) const {
  const graph::Edge e(a, b);
  return std::find(cyber_edges.begin(), cyber_edges.end(), e) !=
         cyber_edges.end();
}

namespace {

double home_distance_km(const geo::LatLng& a, const geo::LatLng& b) {
  return geo::equirectangular_m(a, b) / 1000.0;
}

}  // namespace

SyntheticWorld generate_world(const SyntheticWorldConfig& cfg) {
  if (cfg.user_count < 10)
    throw std::invalid_argument("generate_world: need >= 10 users");
  if (cfg.city_count < 1 || cfg.poi_count < cfg.city_count)
    throw std::invalid_argument("generate_world: bad city/poi counts");

  util::Rng rng(cfg.seed);
  SyntheticWorld world;

  // ---- City centers and sizes (uneven: bigger cities attract more). ----
  std::vector<geo::LatLng> city_center(cfg.city_count);
  std::vector<double> city_weight(cfg.city_count);
  for (std::size_t c = 0; c < cfg.city_count; ++c) {
    city_center[c] = {rng.uniform(0.0, cfg.region_span_deg),
                      rng.uniform(0.0, cfg.region_span_deg)};
    city_weight[c] = 0.4 + rng.uniform();  // in [0.4, 1.4)
  }

  // ---- POIs: clustered around cities plus uniform countryside. ----
  std::vector<Poi> pois(cfg.poi_count);
  for (std::size_t i = 0; i < cfg.poi_count; ++i) {
    Poi& p = pois[i];
    if (rng.chance(cfg.countryside_fraction)) {
      p.location = {rng.uniform(0.0, cfg.region_span_deg),
                    rng.uniform(0.0, cfg.region_span_deg)};
    } else {
      const std::size_t c = rng.weighted_index(city_weight);
      p.location = {
          rng.normal(city_center[c].lat, cfg.city_sigma_deg),
          rng.normal(city_center[c].lng, cfg.city_sigma_deg)};
      p.location.lat = std::clamp(p.location.lat, 0.0, cfg.region_span_deg);
      p.location.lng = std::clamp(p.location.lng, 0.0, cfg.region_span_deg);
    }
    p.category = static_cast<std::uint16_t>(rng.index(cfg.category_count));
  }

  // Index POIs by nearest city (for personal pools).
  std::vector<std::vector<PoiId>> city_pois(cfg.city_count);
  for (std::size_t i = 0; i < cfg.poi_count; ++i) {
    std::size_t best = 0;
    double best_d = 1e18;
    for (std::size_t c = 0; c < cfg.city_count; ++c) {
      const double d = home_distance_km(pois[i].location, city_center[c]);
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    city_pois[best].push_back(static_cast<PoiId>(i));
  }
  for (auto& list : city_pois)
    if (list.empty()) list.push_back(0);  // degenerate guard

  // Hub venues: the first few POIs of each city, visited by everyone who
  // lives there.
  std::vector<std::vector<PoiId>> city_hubs(cfg.city_count);
  for (std::size_t c = 0; c < cfg.city_count; ++c) {
    const std::size_t hubs =
        std::min(cfg.hubs_per_city, city_pois[c].size());
    city_hubs[c].assign(city_pois[c].begin(),
                        city_pois[c].begin() + static_cast<long>(hubs));
  }

  // ---- Users: home city + home location. ----
  world.home_city.resize(cfg.user_count);
  world.home_location.resize(cfg.user_count);
  std::vector<std::vector<UserId>> city_users(cfg.city_count);
  for (UserId u = 0; u < cfg.user_count; ++u) {
    const std::size_t c = rng.weighted_index(city_weight);
    world.home_city[u] = static_cast<std::uint32_t>(c);
    world.home_location[u] = {
        rng.normal(city_center[c].lat, cfg.city_sigma_deg * 0.8),
        rng.normal(city_center[c].lng, cfg.city_sigma_deg * 0.8)};
    city_users[c].push_back(u);
  }

  // ---- Real-world friendships: same-city, distance-attached. ----
  graph::Graph g(cfg.user_count);
  std::set<graph::Edge> real_set;
  const std::size_t target_real_edges = static_cast<std::size_t>(
      cfg.mean_real_degree * static_cast<double>(cfg.user_count) / 2.0);
  std::size_t attempts = 0;
  const std::size_t max_attempts = target_real_edges * 60;
  while (real_set.size() < target_real_edges && attempts++ < max_attempts) {
    const std::size_t c = rng.weighted_index(city_weight);
    const auto& residents = city_users[c];
    if (residents.size() < 2) continue;
    const UserId a = residents[rng.index(residents.size())];
    const UserId b = residents[rng.index(residents.size())];
    if (a == b) continue;
    const double d_km =
        home_distance_km(world.home_location[a], world.home_location[b]);
    if (!rng.chance(std::exp(-d_km / cfg.home_attachment_km))) continue;
    if (g.add_edge(a, b)) real_set.insert(graph::Edge(a, b));
  }
  // Triadic closure inside the real graph (raises clustering like real MSNs).
  {
    std::vector<graph::Edge> snapshot(real_set.begin(), real_set.end());
    for (const graph::Edge& e : snapshot) {
      for (UserId z : g.neighbors(e.a)) {
        if (z == e.b || g.has_edge(z, e.b)) continue;
        if (world.home_city[z] != world.home_city[e.b]) continue;
        if (rng.chance(cfg.triadic_closure_prob)) {
          if (g.add_edge(z, e.b)) real_set.insert(graph::Edge(z, e.b));
        }
      }
    }
  }

  // ---- Cyber friendships: friend-of-friend biased, mobility-blind. ----
  // Cyber friends are strangers in the real world but embedded in common
  // social circles — the generator gives each cyber pair MULTIPLE shared
  // neighbors (like-minded communities), which is exactly the structure
  // phase 2 exploits and which random or single-pivot non-friend pairs
  // lack.
  std::set<graph::Edge> cyber_set;
  const std::size_t target_cyber_edges = static_cast<std::size_t>(
      cfg.cyber_edge_fraction / (1.0 - cfg.cyber_edge_fraction) *
      static_cast<double>(real_set.size()));
  attempts = 0;
  while (cyber_set.size() < target_cyber_edges &&
         attempts++ < target_cyber_edges * 200) {
    UserId a = 0, b = 0;
    if (rng.chance(cfg.cyber_fof_bias)) {
      // Close a 2-hop path: pick a pivot with >= 2 neighbors.
      const auto pivot = static_cast<UserId>(rng.index(cfg.user_count));
      const auto& nbrs = g.neighbors(pivot);
      if (nbrs.size() < 2) continue;
      a = nbrs[rng.index(nbrs.size())];
      b = nbrs[rng.index(nbrs.size())];
    } else {
      a = static_cast<UserId>(rng.index(cfg.user_count));
      b = static_cast<UserId>(rng.index(cfg.user_count));
    }
    if (a == b || g.has_edge(a, b)) continue;
    // Cyber friends are "usually strangers in the real world" (paper
    // Sec I): prefer pairs living in different cities, whose mobility
    // overlap is negligible.
    if (world.home_city[a] == world.home_city[b] && rng.chance(0.8))
      continue;
    if (g.add_edge(a, b)) {
      cyber_set.insert(graph::Edge(a, b));
      // Weave the pair into a shared circle: connect b to a few more of
      // a's friends (and vice versa), so genuine cyber friends end up with
      // several common neighbors.
      for (int extra = 0; extra < cfg.cyber_circle_edges; ++extra) {
        const UserId host = rng.chance(0.5) ? a : b;
        const UserId guest = host == a ? b : a;
        const auto& host_nbrs = g.neighbors(host);
        if (host_nbrs.empty()) continue;
        const UserId c = host_nbrs[rng.index(host_nbrs.size())];
        if (c == guest || g.has_edge(c, guest)) continue;
        if (g.add_edge(c, guest)) cyber_set.insert(graph::Edge(c, guest));
      }
    }
  }

  world.real_edges.assign(real_set.begin(), real_set.end());
  world.cyber_edges.assign(cyber_set.begin(), cyber_set.end());

  // ---- Personal POI pools. ----
  std::vector<std::vector<PoiId>> pool(cfg.user_count);
  std::vector<std::vector<double>> pool_weight(cfg.user_count);
  for (UserId u = 0; u < cfg.user_count; ++u) {
    const std::size_t home = world.home_city[u];
    const auto& local = city_pois[home];
    std::set<PoiId> chosen;
    // Home-city POIs, nearer ones preferred (rejection on distance).
    std::size_t local_target = static_cast<std::size_t>(
        static_cast<double>(cfg.pois_per_user) *
        (1.0 - cfg.travel_poi_fraction));
    local_target = std::max<std::size_t>(1, local_target);
    std::size_t guard = 0;
    while (chosen.size() < std::min(local_target, local.size()) &&
           guard++ < local_target * 50) {
      const PoiId cand = local[rng.index(local.size())];
      const double d_km =
          home_distance_km(pois[cand].location, world.home_location[u]);
      if (rng.chance(std::exp(-d_km / (cfg.home_attachment_km * 1.5))))
        chosen.insert(cand);
    }
    // Travel POIs anywhere.
    const std::size_t travel_target = cfg.pois_per_user - chosen.size();
    for (std::size_t t = 0; t < travel_target; ++t)
      chosen.insert(static_cast<PoiId>(rng.index(cfg.poi_count)));
    // Every resident frequents the home-city hubs.
    for (PoiId hub : city_hubs[home]) chosen.insert(hub);
    pool[u].assign(chosen.begin(), chosen.end());
    rng.shuffle(pool[u]);  // decouple weight rank from POI id
    // Zipf-ish visit weights: a user's favorite place dominates; hubs get
    // a flat boost on top of their rank weight.
    pool_weight[u].resize(pool[u].size());
    for (std::size_t i = 0; i < pool[u].size(); ++i) {
      double w = 1.0 / static_cast<double>(i + 1);
      const PoiId p = pool[u][i];
      if (std::find(city_hubs[home].begin(), city_hubs[home].end(), p) !=
          city_hubs[home].end())
        w *= cfg.hub_visit_weight * static_cast<double>(i + 1) /
             3.0;  // flatten rank, boost level
      pool_weight[u][i] = w;
    }
  }

  // ---- Weekly activity profiles. ----
  // Each user prefers 2 or 3 days of the week; hours follow an evening-heavy
  // global profile. This injects the weekly periodicity behind Fig 8.
  std::vector<std::array<double, 7>> day_weight(cfg.user_count);
  for (UserId u = 0; u < cfg.user_count; ++u) {
    for (double& w : day_weight[u]) w = 1.0;
    const std::size_t preferred = 2 + rng.index(2);
    for (std::size_t i = 0; i < preferred; ++i)
      day_weight[u][rng.index(7)] *= cfg.weekend_bias;
  }
  const double hour_weight[24] = {0.2, 0.1, 0.1, 0.1, 0.1, 0.2, 0.4, 0.7,
                                  1.0, 1.0, 1.0, 1.2, 1.4, 1.2, 1.0, 1.0,
                                  1.2, 1.6, 2.0, 2.2, 2.0, 1.5, 0.9, 0.4};
  const std::vector<double> hour_w(hour_weight, hour_weight + 24);

  const geo::Timestamp window_end =
      static_cast<geo::Timestamp>(cfg.weeks) * 7 * geo::kSecondsPerDay;

  auto sample_time = [&](UserId u) {
    const auto week = static_cast<geo::Timestamp>(rng.index(
        static_cast<std::size_t>(cfg.weeks)));
    const std::vector<double> dw(day_weight[u].begin(), day_weight[u].end());
    const auto day = static_cast<geo::Timestamp>(rng.weighted_index(dw));
    const auto hour = static_cast<geo::Timestamp>(rng.weighted_index(hour_w));
    const auto minute = static_cast<geo::Timestamp>(rng.index(3600));
    return week * 7 * geo::kSecondsPerDay + day * geo::kSecondsPerDay +
           hour * 3600 + minute;
  };

  std::vector<CheckIn> checkins;
  auto emit = [&](UserId u, PoiId p, geo::Timestamp t) {
    t = std::clamp<geo::Timestamp>(t, 0, window_end - 1);
    checkins.push_back(CheckIn{u, p, t, pois[p].location});
  };

  // ---- Solo check-ins (heavy-tailed counts). ----
  for (UserId u = 0; u < cfg.user_count; ++u) {
    int count = rng.power_law_int(cfg.checkin_alpha, cfg.max_checkins_per_user);
    count = std::max(count, cfg.min_checkins_per_user);
    for (int i = 0; i < count; ++i) {
      const std::size_t slot = rng.weighted_index(pool_weight[u]);
      emit(u, pool[u][slot], sample_time(u));
    }
  }

  // ---- Joint events for real-world friendships. ----
  for (const graph::Edge& e : world.real_edges) {
    if (!rng.chance(cfg.covisit_friend_prob)) continue;
    const int events = 1 + rng.poisson(std::max(0.0, cfg.covisit_events_mean - 1.0));
    for (int ev = 0; ev < events; ++ev) {
      // Meet at a POI from either friend's pool (same city most often).
      const UserId host = rng.chance(0.5) ? e.a : e.b;
      const auto& host_pool = pool[host];
      const PoiId venue = host_pool[rng.index(host_pool.size())];
      const geo::Timestamp t = sample_time(host);
      emit(e.a, venue, t + static_cast<geo::Timestamp>(
                               rng.range(-cfg.covisit_time_jitter,
                                         cfg.covisit_time_jitter)));
      emit(e.b, venue, t + static_cast<geo::Timestamp>(
                               rng.range(-cfg.covisit_time_jitter,
                                         cfg.covisit_time_jitter)));
    }
  }

  world.dataset = Dataset::build(cfg.user_count, std::move(pois),
                                 std::move(checkins), std::move(g));
  return world;
}

}  // namespace fs::data
