#include "data/obfuscation.h"

#include <limits>
#include <stdexcept>

namespace fs::data {

namespace {

void check_ratio(double ratio) {
  if (ratio < 0.0 || ratio > 1.0)
    throw std::invalid_argument("obfuscation: ratio must be in [0, 1]");
}

/// Replaces checkin.poi (and location) with `replacement`.
void relocate(CheckIn& c, PoiId replacement, const Dataset& ds) {
  c.poi = replacement;
  c.location = ds.poi(replacement).location;
}

}  // namespace

Dataset hide_checkins(const Dataset& ds, double ratio, util::Rng& rng) {
  check_ratio(ratio);
  std::vector<std::size_t> remaining(ds.user_count());
  for (UserId u = 0; u < ds.user_count(); ++u)
    remaining[u] = ds.checkin_count(u);

  // Visit check-ins in random order so "protect the last one" does not
  // systematically favor early records.
  const auto& all = ds.checkins();
  std::vector<std::size_t> order(all.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);

  const auto target_removals =
      static_cast<std::size_t>(ratio * static_cast<double>(all.size()));
  std::vector<char> removed(all.size(), 0);
  std::size_t removals = 0;
  for (std::size_t idx : order) {
    if (removals >= target_removals) break;
    const UserId owner = all[idx].user;
    if (remaining[owner] <= 1) continue;  // never strip a user bare
    removed[idx] = 1;
    --remaining[owner];
    ++removals;
  }

  std::vector<CheckIn> kept;
  kept.reserve(all.size() - removals);
  for (std::size_t i = 0; i < all.size(); ++i)
    if (!removed[i]) kept.push_back(all[i]);
  return ds.with_checkins(std::move(kept));
}

Dataset hide_checkins_coupled(const Dataset& ds, double ratio,
                              std::uint64_t seed) {
  check_ratio(ratio);
  const auto& all = ds.checkins();
  std::vector<double> draw(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    draw[i] = static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
  }

  // Exempt each user's highest-draw check-in: it survives every ratio, so
  // no sweep point strips a user bare and nesting is preserved.
  std::vector<std::size_t> exempt(ds.user_count(),
                                  std::numeric_limits<std::size_t>::max());
  for (std::size_t i = 0; i < all.size(); ++i) {
    const UserId u = all[i].user;
    if (exempt[u] == std::numeric_limits<std::size_t>::max() ||
        draw[i] > draw[exempt[u]])
      exempt[u] = i;
  }

  std::vector<CheckIn> kept;
  kept.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i)
    if (exempt[all[i].user] == i || draw[i] >= ratio) kept.push_back(all[i]);
  return ds.with_checkins(std::move(kept));
}

Dataset blur_in_grid(const Dataset& ds, double ratio,
                     const geo::QuadtreeDivision& division, util::Rng& rng) {
  check_ratio(ratio);
  std::vector<CheckIn> out(ds.checkins());
  for (CheckIn& c : out) {
    if (!rng.chance(ratio)) continue;
    const std::size_t cell = division.cell_of_poi(c.poi);
    const auto& candidates = division.cell_pois(cell);
    if (candidates.size() < 2) continue;  // nothing else in this grid
    PoiId replacement;
    do {
      replacement = candidates[rng.index(candidates.size())];
    } while (replacement == c.poi);
    relocate(c, replacement, ds);
  }
  return ds.with_checkins(std::move(out));
}

Dataset blur_cross_grid(const Dataset& ds, double ratio,
                        const geo::QuadtreeDivision& division,
                        util::Rng& rng) {
  check_ratio(ratio);
  std::vector<CheckIn> out(ds.checkins());
  for (CheckIn& c : out) {
    if (!rng.chance(ratio)) continue;
    const std::size_t cell = division.cell_of_poi(c.poi);
    const std::vector<std::size_t> neighbors = division.neighbor_cells(cell);
    PoiId replacement = c.poi;
    if (!neighbors.empty()) {
      // Random neighbor grid, then a random POI inside it; retry a few
      // neighbors since some cells are empty.
      std::vector<std::size_t> shuffled = neighbors;
      rng.shuffle(shuffled);
      for (std::size_t n : shuffled) {
        const auto& candidates = division.cell_pois(n);
        if (candidates.empty()) continue;
        replacement = candidates[rng.index(candidates.size())];
        break;
      }
    }
    if (replacement == c.poi) {
      // Fall back to in-grid replacement.
      const auto& candidates = division.cell_pois(cell);
      if (candidates.size() < 2) continue;
      do {
        replacement = candidates[rng.index(candidates.size())];
      } while (replacement == c.poi);
    }
    relocate(c, replacement, ds);
  }
  return ds.with_checkins(std::move(out));
}

}  // namespace fs::data
