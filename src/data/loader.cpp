#include "data/loader.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace fs::data {

namespace {

/// Days since 1970-01-01 for a proleptic Gregorian date (Howard Hinnant's
/// days_from_civil algorithm).
long long days_from_civil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<long long>(era) * 146097 +
         static_cast<long long>(doe) - 719468;
}

bool is_leap_year(int y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

unsigned days_in_month(int y, unsigned m) {
  static constexpr unsigned kDays[12] = {31, 28, 31, 30, 31, 30,
                                         31, 31, 30, 31, 30, 31};
  if (m == 2 && is_leap_year(y)) return 29;
  return kDays[m - 1];
}

}  // namespace

geo::Timestamp parse_iso8601_utc(const std::string& text) {
  int y = 0;
  unsigned mo = 0, d = 0, h = 0, mi = 0, s = 0;
  int consumed = 0;
  // Accepts both "T...Z" and "space" separators.
  if (std::sscanf(text.c_str(), "%d-%u-%u%*1[T ]%u:%u:%u%n", &y, &mo, &d, &h,
                  &mi, &s, &consumed) != 6)
    throw ParseError("parse_iso8601_utc: bad timestamp '" + text + "'");
  if (mo < 1 || mo > 12 || h > 23 || mi > 59 || s > 60)
    throw ParseError("parse_iso8601_utc: out-of-range field in '" + text +
                     "'");
  if (d < 1 || d > days_in_month(y, mo))
    throw ParseError("parse_iso8601_utc: impossible calendar date in '" +
                     text + "'");
  // Only an optional 'Z' and trailing whitespace may follow the seconds;
  // anything else is garbage masquerading as a timestamp.
  std::size_t rest = static_cast<std::size_t>(consumed);
  if (rest < text.size() && text[rest] == 'Z') ++rest;
  if (!util::trim(std::string_view(text).substr(rest)).empty())
    throw ParseError("parse_iso8601_utc: trailing garbage in '" + text + "'");
  return days_from_civil(y, mo, d) * geo::kSecondsPerDay +
         static_cast<geo::Timestamp>(h) * 3600 + mi * 60 + s;
}

namespace {

struct RawCheckin {
  long long user;
  geo::Timestamp time;
  geo::LatLng location;
  long long poi;
};

enum class LineOutcome {
  kOk,
  kShortLine,
  kBadTimestamp,
  kBadNumber,
  kOutOfRange,
};

LineOutcome parse_checkin_line(std::string_view trimmed, RawCheckin& rc) {
  const auto fields = util::split_whitespace(trimmed);
  if (fields.size() < 5) return LineOutcome::kShortLine;
  try {
    rc.user = util::parse_int(fields[0]);
    rc.location.lat = util::parse_double(fields[2]);
    rc.location.lng = util::parse_double(fields[3]);
    rc.poi = util::parse_int(fields[4]);
  } catch (const std::invalid_argument&) {
    return LineOutcome::kBadNumber;
  }
  try {
    rc.time = parse_iso8601_utc(std::string(fields[1]));
  } catch (const ParseError&) {
    return LineOutcome::kBadTimestamp;
  }
  if (rc.location.lat < -90.0 || rc.location.lat > 90.0 ||
      rc.location.lng < -180.0 || rc.location.lng > 180.0)
    return LineOutcome::kOutOfRange;
  return LineOutcome::kOk;
}

const char* outcome_name(LineOutcome outcome) {
  switch (outcome) {
    case LineOutcome::kOk: return "ok";
    case LineOutcome::kShortLine: return "short line";
    case LineOutcome::kBadTimestamp: return "bad timestamp";
    case LineOutcome::kBadNumber: return "bad number";
    case LineOutcome::kOutOfRange: return "out-of-range coordinate";
  }
  return "unknown";
}

/// Counts a quarantined line into the report; in strict mode throws
/// instead.
void quarantine(LineOutcome outcome, std::string_view line,
                std::size_t line_number, const LoadOptions& options,
                LoadReport& report, const char* path) {
  if (options.strictness == Strictness::kStrict)
    throw ParseError(std::string("load_checkins_snap: ") +
                     outcome_name(outcome) + " at " + path + ":" +
                     std::to_string(line_number) + ": '" +
                     std::string(line) + "'");
  switch (outcome) {
    case LineOutcome::kOk: break;
    case LineOutcome::kShortLine: ++report.short_lines; break;
    case LineOutcome::kBadTimestamp: ++report.bad_timestamps; break;
    case LineOutcome::kBadNumber: ++report.bad_numbers; break;
    case LineOutcome::kOutOfRange: ++report.out_of_range_coords; break;
  }
  if (report.sample_bad_lines.size() < options.max_sample_lines)
    report.sample_bad_lines.emplace_back(line);
}

/// Opens the file under the options' retry policy: transient failures
/// (injected or real) are retried with exponential backoff and reported
/// into the diagnostics sink; the last failure's IoError propagates.
std::ifstream open_or_throw(const std::string& path,
                            const LoadOptions& options) {
  runtime::Retrier retrier(options.open_retry);
  while (true) {
    try {
      if (util::failpoint::fail("data.load.open"))
        throw IoError("load_checkins_snap: injected open failure for " +
                      path);
      std::ifstream file(path);
      if (!file) throw IoError("load_checkins_snap: cannot open " + path);
      return file;
    } catch (const IoError& e) {
      if (!retrier.retry()) throw;
      if (options.diagnostics != nullptr)
        options.diagnostics->report(
            util::Severity::kWarning, ErrorCode::kIo, "loader",
            std::string("open failed (attempt ") +
                std::to_string(retrier.failures()) + "), retrying: " +
                e.what());
    }
  }
}

/// Cooperative cancellation point, amortized over the line counter.
constexpr std::size_t kGovernanceStride = 4096;

void governance_check(const LoadOptions& options, std::size_t line_number) {
  if (options.context != nullptr && line_number % kGovernanceStride == 0)
    options.context->checkpoint("data.load");
}

}  // namespace

std::string LoadReport::summary() const {
  std::ostringstream oss;
  oss << "check-ins: " << accepted_checkins << "/" << checkin_lines
      << " accepted";
  if (quarantined_checkins() > 0)
    oss << " (" << quarantined_checkins() << " quarantined: "
        << short_lines << " short, " << bad_timestamps << " bad timestamp, "
        << bad_numbers << " bad number, " << out_of_range_coords
        << " out-of-range)";
  oss << "\nedges: " << accepted_edges << "/" << edge_lines << " accepted";
  if (quarantined_edges() > 0)
    oss << " (" << quarantined_edges() << " quarantined: " << short_edge_lines
        << " short, " << bad_edge_numbers << " bad number)";
  oss << "\nusers dropped: " << users_below_activity_floor
      << " below activity floor, " << users_dropped_by_cap << " by cap";
  return oss.str();
}

namespace {

/// Folds the finished LoadReport into the metrics registry: line totals,
/// per-reason quarantine counters, and ingestion throughput. One batched
/// update per load keeps the per-line loop untouched.
void publish_load_metrics(const LoadReport& rep, double elapsed_sec) {
  obs::MetricsRegistry& reg = obs::metrics();
  reg.counter("data.loader.lines_total", {},
              "check-in lines read (excluding blank lines)")
      .add(rep.checkin_lines);
  reg.counter("data.loader.accepted_checkins_total", {},
              "check-in records accepted into the dataset")
      .add(rep.accepted_checkins);
  reg.counter("data.loader.edge_lines_total", {}, "edge lines read")
      .add(rep.edge_lines);
  reg.counter("data.loader.accepted_edges_total", {},
              "friendship edges accepted into the dataset")
      .add(rep.accepted_edges);
  const auto quarantine_counter = [&reg](const char* reason,
                                         std::size_t count) {
    if (count > 0)
      reg.counter("data.loader.quarantined_total", {{"reason", reason}},
                  "lines quarantined by the permissive loader, by reason")
          .add(count);
  };
  quarantine_counter("short_line", rep.short_lines);
  quarantine_counter("bad_timestamp", rep.bad_timestamps);
  quarantine_counter("bad_number", rep.bad_numbers);
  quarantine_counter("out_of_range", rep.out_of_range_coords);
  quarantine_counter("short_edge_line", rep.short_edge_lines);
  quarantine_counter("bad_edge_number", rep.bad_edge_numbers);
  if (elapsed_sec > 0.0)
    reg.gauge("data.loader.lines_per_sec", {},
              "ingestion throughput of the last load (both passes + edges)")
        .set(static_cast<double>(rep.checkin_lines * 2 + rep.edge_lines) /
             elapsed_sec);
}

}  // namespace

Dataset load_checkins_snap(const std::string& checkins_path,
                           const std::string& edges_path,
                           const LoadOptions& options, LoadReport* report) {
  obs::Span load_span("data.load");
  LoadReport local_report;
  LoadReport& rep = report != nullptr ? *report : local_report;
  rep = LoadReport{};

  // ---- Pass 1: stream the check-in file, counting valid records per
  // user. Nothing is buffered, so users that fail the activity floor cost
  // a map entry, not their full record set. ----
  std::unordered_map<long long, std::size_t> user_checkin_count;
  {
    FS_SPAN("data.load.pass1");
    std::ifstream checkin_file = open_or_throw(checkins_path, options);
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(checkin_file, line)) {
      ++line_number;
      governance_check(options, line_number);
      const auto trimmed = util::trim(line);
      if (trimmed.empty()) continue;
      ++rep.checkin_lines;
      RawCheckin rc;
      const LineOutcome outcome = parse_checkin_line(trimmed, rc);
      if (outcome != LineOutcome::kOk) {
        quarantine(outcome, line, line_number, options, rep,
                   checkins_path.c_str());
        continue;
      }
      ++user_checkin_count[rc.user];
    }
  }

  // Select users passing the activity floor; densify ids deterministically
  // (ascending original id).
  std::map<long long, UserId> user_map;
  for (const auto& [user, count] : user_checkin_count) {
    if (count >= static_cast<std::size_t>(options.min_checkins))
      user_map.emplace(user, 0);
    else
      ++rep.users_below_activity_floor;
  }
  if (options.max_users != 0 && user_map.size() > options.max_users) {
    auto it = user_map.begin();
    std::advance(it, static_cast<long>(options.max_users));
    rep.users_dropped_by_cap = user_map.size() - options.max_users;
    user_map.erase(it, user_map.end());
  }
  UserId next_user = 0;
  for (auto& [user, dense] : user_map) dense = next_user++;

  // ---- Pass 2: re-stream, keeping only records of selected users. POIs
  // are interned on first use by a kept record, so filtered users leave no
  // residue in the POI map. Malformed lines were counted in pass 1 and are
  // skipped silently here. ----
  std::map<long long, PoiId> poi_map;
  std::vector<Poi> pois;
  std::vector<CheckIn> checkins;
  {
    FS_SPAN("data.load.pass2");
    std::ifstream checkin_file = open_or_throw(checkins_path, options);
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(checkin_file, line)) {
      governance_check(options, ++line_number);
      const auto trimmed = util::trim(line);
      if (trimmed.empty()) continue;
      RawCheckin rc;
      if (parse_checkin_line(trimmed, rc) != LineOutcome::kOk) continue;
      const auto uit = user_map.find(rc.user);
      if (uit == user_map.end()) continue;
      auto [pit, inserted] =
          poi_map.emplace(rc.poi, static_cast<PoiId>(pois.size()));
      if (inserted) pois.push_back(Poi{rc.location, 0});
      checkins.push_back(
          CheckIn{uit->second, pit->second, rc.time, rc.location});
      ++rep.accepted_checkins;
    }
  }

  obs::Span edges_span("data.load.edges");
  graph::Graph g(user_map.size());
  for (const auto& [raw_a, raw_b] : read_edges_file(edges_path, options, &rep)) {
    const auto a = user_map.find(raw_a);
    const auto b = user_map.find(raw_b);
    if (a == user_map.end() || b == user_map.end()) continue;
    if (a->second != b->second && g.add_edge(a->second, b->second))
      ++rep.accepted_edges;
  }
  edges_span.end();

  publish_load_metrics(rep, load_span.seconds());
  return Dataset::build(user_map.size(), std::move(pois), std::move(checkins),
                        std::move(g));
}

std::vector<std::pair<long long, long long>> read_edges_file(
    const std::string& edges_path, const LoadOptions& options,
    LoadReport* report) {
  LoadReport local_report;
  LoadReport& rep = report != nullptr ? *report : local_report;
  std::vector<std::pair<long long, long long>> edges;
  std::ifstream edge_file = open_or_throw(edges_path, options);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(edge_file, line)) {
    ++line_number;
    governance_check(options, line_number);
    const auto trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    ++rep.edge_lines;
    const auto fields = util::split_whitespace(trimmed);
    if (fields.size() < 2) {
      if (options.strictness == Strictness::kStrict)
        throw ParseError("load_checkins_snap: short edge line at " +
                         edges_path + ":" + std::to_string(line_number) +
                         ": '" + line + "'");
      ++rep.short_edge_lines;
      if (rep.sample_bad_lines.size() < options.max_sample_lines)
        rep.sample_bad_lines.push_back(line);
      continue;
    }
    long long raw_a = 0, raw_b = 0;
    try {
      raw_a = util::parse_int(fields[0]);
      raw_b = util::parse_int(fields[1]);
    } catch (const std::invalid_argument&) {
      if (options.strictness == Strictness::kStrict)
        throw ParseError("load_checkins_snap: bad edge number at " +
                         edges_path + ":" + std::to_string(line_number) +
                         ": '" + line + "'");
      ++rep.bad_edge_numbers;
      if (rep.sample_bad_lines.size() < options.max_sample_lines)
        rep.sample_bad_lines.push_back(line);
      continue;
    }
    edges.emplace_back(raw_a, raw_b);
  }
  return edges;
}

Dataset assemble_from_records(
    const std::vector<RawRecord>& records,
    const std::vector<std::pair<long long, long long>>& raw_edges,
    const LoadOptions& options, LoadReport* report,
    std::vector<long long>* user_ids_out) {
  LoadReport local_report;
  LoadReport& rep = report != nullptr ? *report : local_report;

  // Mirror of the file loader's pass 1: per-user valid-record counts.
  std::unordered_map<long long, std::size_t> user_checkin_count;
  for (const RawRecord& r : records) ++user_checkin_count[r.user];

  // Activity floor + cap + ascending-raw-id densification, identical to
  // load_checkins_snap (a std::map keeps the deterministic order).
  std::map<long long, UserId> user_map;
  for (const auto& [user, count] : user_checkin_count) {
    if (count >= static_cast<std::size_t>(options.min_checkins))
      user_map.emplace(user, 0);
    else
      ++rep.users_below_activity_floor;
  }
  if (options.max_users != 0 && user_map.size() > options.max_users) {
    auto it = user_map.begin();
    std::advance(it, static_cast<long>(options.max_users));
    rep.users_dropped_by_cap = user_map.size() - options.max_users;
    user_map.erase(it, user_map.end());
  }
  UserId next_user = 0;
  for (auto& [user, dense] : user_map) dense = next_user++;
  if (user_ids_out != nullptr) {
    user_ids_out->clear();
    for (const auto& [user, dense] : user_map) user_ids_out->push_back(user);
  }

  // Mirror of pass 2: POIs interned on first use by a kept record.
  std::map<long long, PoiId> poi_map;
  std::vector<Poi> pois;
  std::vector<CheckIn> checkins;
  for (const RawRecord& r : records) {
    const auto uit = user_map.find(r.user);
    if (uit == user_map.end()) continue;
    auto [pit, inserted] =
        poi_map.emplace(r.poi, static_cast<PoiId>(pois.size()));
    if (inserted) pois.push_back(Poi{r.location, 0});
    checkins.push_back(CheckIn{uit->second, pit->second, r.time, r.location});
    ++rep.accepted_checkins;
  }

  graph::Graph g(user_map.size());
  for (const auto& [raw_a, raw_b] : raw_edges) {
    const auto a = user_map.find(raw_a);
    const auto b = user_map.find(raw_b);
    if (a == user_map.end() || b == user_map.end()) continue;
    if (a->second != b->second && g.add_edge(a->second, b->second))
      ++rep.accepted_edges;
  }
  return Dataset::build(user_map.size(), std::move(pois), std::move(checkins),
                        std::move(g));
}

void save_checkins_snap(const Dataset& ds, const std::string& checkins_path,
                        const std::string& edges_path) {
  std::ofstream checkin_file(checkins_path);
  if (!checkin_file)
    throw IoError("save_checkins_snap: cannot open " + checkins_path);
  for (const CheckIn& c : ds.checkins()) {
    // Times are written as raw epoch offsets in a fixed fake date range to
    // stay parseable; 2010-01-01 == epoch day 14610.
    const geo::Timestamp t = c.time;
    const long long day = 14610 + t / geo::kSecondsPerDay;
    const geo::Timestamp rem = t % geo::kSecondsPerDay;
    // Convert day count back to a civil date (inverse of days_from_civil).
    long long z = day + 719468;
    const long long era = (z >= 0 ? z : z - 146096) / 146097;
    const unsigned doe = static_cast<unsigned>(z - era * 146097);
    const unsigned yoe =
        (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    const long long y = static_cast<long long>(yoe) + era * 400;
    const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    const unsigned mp = (5 * doy + 2) / 153;
    const unsigned d = doy - (153 * mp + 2) / 5 + 1;
    const unsigned m = mp + (mp < 10 ? 3 : -9);
    checkin_file << c.user << '\t'
                 << util::format(
                        "%04lld-%02u-%02uT%02lld:%02lld:%02lldZ",
                        y + (m <= 2), m, d,
                        static_cast<long long>(rem / 3600),
                        static_cast<long long>((rem % 3600) / 60),
                        static_cast<long long>(rem % 60))
                 << '\t'
                 << util::format("%.7f\t%.7f", c.location.lat,
                                 c.location.lng)
                 << '\t' << c.poi << '\n';
  }
  if (!checkin_file.flush())
    throw IoError("save_checkins_snap: write failed for " + checkins_path);
  std::ofstream edge_file(edges_path);
  if (!edge_file)
    throw IoError("save_checkins_snap: cannot open " + edges_path);
  for (const graph::Edge& e : ds.friendships().edges())
    edge_file << e.a << '\t' << e.b << '\n';
  if (!edge_file.flush())
    throw IoError("save_checkins_snap: write failed for " + edges_path);
}

}  // namespace fs::data
