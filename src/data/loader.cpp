#include "data/loader.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "util/strings.h"

namespace fs::data {

namespace {

/// Days since 1970-01-01 for a proleptic Gregorian date (Howard Hinnant's
/// days_from_civil algorithm).
long long days_from_civil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<long long>(era) * 146097 +
         static_cast<long long>(doe) - 719468;
}

}  // namespace

geo::Timestamp parse_iso8601_utc(const std::string& text) {
  int y = 0;
  unsigned mo = 0, d = 0, h = 0, mi = 0, s = 0;
  // Accepts both "T...Z" and "space" separators.
  if (std::sscanf(text.c_str(), "%d-%u-%u%*[T ]%u:%u:%u", &y, &mo, &d, &h,
                  &mi, &s) != 6)
    throw std::invalid_argument("parse_iso8601_utc: bad timestamp '" + text +
                                "'");
  if (mo < 1 || mo > 12 || d < 1 || d > 31 || h > 23 || mi > 59 || s > 60)
    throw std::invalid_argument("parse_iso8601_utc: out-of-range field in '" +
                                text + "'");
  return days_from_civil(y, mo, d) * geo::kSecondsPerDay +
         static_cast<geo::Timestamp>(h) * 3600 + mi * 60 + s;
}

Dataset load_checkins_snap(const std::string& checkins_path,
                           const std::string& edges_path,
                           const LoadOptions& options) {
  std::ifstream checkin_file(checkins_path);
  if (!checkin_file)
    throw std::runtime_error("load_checkins_snap: cannot open " +
                             checkins_path);

  struct RawCheckin {
    long long user;
    geo::Timestamp time;
    geo::LatLng location;
    long long poi;
  };
  std::vector<RawCheckin> raw;
  std::unordered_map<long long, std::size_t> user_checkin_count;
  std::string line;
  while (std::getline(checkin_file, line)) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    const auto fields = util::split_whitespace(trimmed);
    if (fields.size() < 5)
      throw std::runtime_error("load_checkins_snap: short line '" + line +
                               "'");
    RawCheckin rc;
    rc.user = util::parse_int(fields[0]);
    rc.time = parse_iso8601_utc(std::string(fields[1]));
    rc.location.lat = util::parse_double(fields[2]);
    rc.location.lng = util::parse_double(fields[3]);
    rc.poi = util::parse_int(fields[4]);
    ++user_checkin_count[rc.user];
    raw.push_back(rc);
  }

  // Select users passing the activity floor; densify ids deterministically
  // (ascending original id).
  std::map<long long, UserId> user_map;
  for (const auto& [user, count] : user_checkin_count)
    if (count >= static_cast<std::size_t>(options.min_checkins))
      user_map.emplace(user, 0);
  if (options.max_users != 0 && user_map.size() > options.max_users) {
    auto it = user_map.begin();
    std::advance(it, static_cast<long>(options.max_users));
    user_map.erase(it, user_map.end());
  }
  UserId next_user = 0;
  for (auto& [user, dense] : user_map) dense = next_user++;

  std::map<long long, PoiId> poi_map;
  std::vector<Poi> pois;
  std::vector<CheckIn> checkins;
  for (const RawCheckin& rc : raw) {
    const auto uit = user_map.find(rc.user);
    if (uit == user_map.end()) continue;
    auto [pit, inserted] =
        poi_map.emplace(rc.poi, static_cast<PoiId>(pois.size()));
    if (inserted) pois.push_back(Poi{rc.location, 0});
    checkins.push_back(CheckIn{uit->second, pit->second, rc.time,
                               rc.location});
  }

  std::ifstream edge_file(edges_path);
  if (!edge_file)
    throw std::runtime_error("load_checkins_snap: cannot open " + edges_path);
  graph::Graph g(user_map.size());
  while (std::getline(edge_file, line)) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    const auto fields = util::split_whitespace(trimmed);
    if (fields.size() < 2)
      throw std::runtime_error("load_checkins_snap: short edge line '" +
                               line + "'");
    const auto a = user_map.find(util::parse_int(fields[0]));
    const auto b = user_map.find(util::parse_int(fields[1]));
    if (a == user_map.end() || b == user_map.end()) continue;
    if (a->second != b->second) g.add_edge(a->second, b->second);
  }

  return Dataset::build(user_map.size(), std::move(pois), std::move(checkins),
                        std::move(g));
}

void save_checkins_snap(const Dataset& ds, const std::string& checkins_path,
                        const std::string& edges_path) {
  std::ofstream checkin_file(checkins_path);
  if (!checkin_file)
    throw std::runtime_error("save_checkins_snap: cannot open " +
                             checkins_path);
  for (const CheckIn& c : ds.checkins()) {
    // Times are written as raw epoch offsets in a fixed fake date range to
    // stay parseable; 2010-01-01 == epoch day 14610.
    const geo::Timestamp t = c.time;
    const long long day = 14610 + t / geo::kSecondsPerDay;
    const geo::Timestamp rem = t % geo::kSecondsPerDay;
    // Convert day count back to a civil date (inverse of days_from_civil).
    long long z = day + 719468;
    const long long era = (z >= 0 ? z : z - 146096) / 146097;
    const unsigned doe = static_cast<unsigned>(z - era * 146097);
    const unsigned yoe =
        (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    const long long y = static_cast<long long>(yoe) + era * 400;
    const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    const unsigned mp = (5 * doy + 2) / 153;
    const unsigned d = doy - (153 * mp + 2) / 5 + 1;
    const unsigned m = mp + (mp < 10 ? 3 : -9);
    checkin_file << c.user << '\t'
                 << util::format(
                        "%04lld-%02u-%02uT%02lld:%02lld:%02lldZ",
                        y + (m <= 2), m, d,
                        static_cast<long long>(rem / 3600),
                        static_cast<long long>((rem % 3600) / 60),
                        static_cast<long long>(rem % 60))
                 << '\t' << c.location.lat << '\t' << c.location.lng << '\t'
                 << c.poi << '\n';
  }
  std::ofstream edge_file(edges_path);
  if (!edge_file)
    throw std::runtime_error("save_checkins_snap: cannot open " + edges_path);
  for (const graph::Edge& e : ds.friendships().edges())
    edge_file << e.a << '\t' << e.b << '\n';
}

}  // namespace fs::data
