// Dataset statistics backing Table I, Table II, and Fig 1.
#pragma once

#include <utility>
#include <vector>

#include "data/dataset.h"

namespace fs::data {

/// Table I row.
struct DatasetStats {
  std::size_t pois = 0;
  std::size_t users = 0;
  std::size_t checkins = 0;
  std::size_t links = 0;
  double mean_checkins_per_user = 0.0;
};

DatasetStats dataset_stats(const Dataset& ds);

/// Table II: the joint distribution of "has co-location" x "has co-friend",
/// normalized within friends and within non-friends separately.
struct CoPresenceCensus {
  /// Indexed [has_colocation][has_cofriend]; each 2x2 sums to 1.
  double friends[2][2] = {{0, 0}, {0, 0}};
  double non_friends[2][2] = {{0, 0}, {0, 0}};
  std::size_t friend_pairs = 0;
  std::size_t non_friend_pairs = 0;
};

CoPresenceCensus co_presence_census(const Dataset& ds,
                                    const std::vector<UserPair>& friends,
                                    const std::vector<UserPair>& non_friends);

/// Empirical CDF over small non-negative counts (Fig 1, Fig 5).
class CountCdf {
 public:
  explicit CountCdf(const std::vector<std::size_t>& values);

  /// P(value <= x).
  double at(std::size_t x) const;

  std::size_t sample_count() const { return total_; }
  std::size_t max_value() const {
    return histogram_.empty() ? 0 : histogram_.size() - 1;
  }

 private:
  std::vector<std::size_t> histogram_;  // histogram_[v] = #samples equal to v
  std::size_t total_ = 0;
};

/// Per-pair count vectors feeding the CDFs.
std::vector<std::size_t> common_poi_counts(const Dataset& ds,
                                           const std::vector<UserPair>& pairs);
std::vector<std::size_t> common_friend_counts(
    const graph::Graph& g, const std::vector<UserPair>& pairs);

}  // namespace fs::data
