#include "data/dynamics.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "util/rng.h"

namespace fs::data {

Dataset apply_temporal_drift(const Dataset& ds, double fraction,
                             std::uint64_t seed) {
  if (fraction < 0.0 || fraction > 1.0)
    throw std::invalid_argument("temporal drift: fraction must be in [0, 1]");
  if (fraction == 0.0 || ds.checkin_count() == 0)
    return ds.with_checkins(std::vector<CheckIn>(ds.checkins()));

  const geo::Timestamp midpoint =
      ds.window_begin() + (ds.window_end() - ds.window_begin()) / 2;
  util::Rng rng(seed);

  std::vector<std::size_t> remaining(ds.user_count());
  for (UserId u = 0; u < ds.user_count(); ++u)
    remaining[u] = ds.checkin_count(u);

  const auto& all = ds.checkins();
  std::vector<char> removed(all.size(), 0);

  // Edges come out sorted, so selection (and the form/dissolve alternation)
  // is a pure function of (graph, fraction, seed), not of iteration order.
  std::size_t drifted = 0;
  for (const graph::Edge& edge : ds.friendships().edges()) {
    if (!rng.chance(fraction)) continue;
    const bool dissolving = (drifted++ % 2) == 0;

    // The pair's shared evidence: the higher-id endpoint's check-ins at
    // POIs the lower-id endpoint also visits. Erasing one side is enough —
    // co-occurrence needs both trajectories in the same cell and slot.
    const std::vector<PoiId> common_side = ds.visited_pois(edge.a);
    const std::unordered_set<PoiId> partner_pois(common_side.begin(),
                                                 common_side.end());
    for (std::size_t i = ds.trajectory(edge.b).data() - all.data(),
                     end = i + ds.trajectory(edge.b).size();
         i < end; ++i) {
      if (removed[i] || remaining[edge.b] <= 1) continue;
      const CheckIn& c = all[i];
      const bool in_inactive_half =
          dissolving ? c.time >= midpoint : c.time < midpoint;
      if (!in_inactive_half || partner_pois.find(c.poi) == partner_pois.end())
        continue;
      removed[i] = 1;
      --remaining[edge.b];
    }
  }

  std::vector<CheckIn> kept;
  kept.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i)
    if (!removed[i]) kept.push_back(all[i]);
  return ds.with_checkins(std::move(kept));
}

}  // namespace fs::data
