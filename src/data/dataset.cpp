#include "data/dataset.h"

#include <algorithm>
#include <stdexcept>

namespace fs::data {

Dataset Dataset::build(std::size_t user_count, std::vector<Poi> pois,
                       std::vector<CheckIn> checkins,
                       graph::Graph friendships) {
  if (friendships.node_count() != user_count)
    throw std::invalid_argument(
        "Dataset::build: friendship graph size != user count");
  for (const CheckIn& c : checkins) {
    if (c.user >= user_count)
      throw std::invalid_argument("Dataset::build: check-in user out of range");
    if (c.poi >= pois.size())
      throw std::invalid_argument("Dataset::build: check-in POI out of range");
  }

  Dataset ds;
  ds.user_count_ = user_count;
  ds.pois_ = std::move(pois);
  ds.checkins_ = std::move(checkins);
  ds.friendships_ = std::move(friendships);

  std::sort(ds.checkins_.begin(), ds.checkins_.end(),
            [](const CheckIn& x, const CheckIn& y) {
              if (x.user != y.user) return x.user < y.user;
              if (x.time != y.time) return x.time < y.time;
              return x.poi < y.poi;
            });

  ds.user_offsets_.assign(user_count + 1, 0);
  for (const CheckIn& c : ds.checkins_) ++ds.user_offsets_[c.user + 1];
  for (std::size_t u = 0; u < user_count; ++u)
    ds.user_offsets_[u + 1] += ds.user_offsets_[u];

  if (!ds.checkins_.empty()) {
    auto [lo, hi] = std::minmax_element(
        ds.checkins_.begin(), ds.checkins_.end(),
        [](const CheckIn& x, const CheckIn& y) { return x.time < y.time; });
    ds.window_begin_ = lo->time;
    ds.window_end_ = hi->time + 1;  // half-open
  }
  return ds;
}

std::span<const CheckIn> Dataset::trajectory(UserId user) const {
  if (user >= user_count_)
    throw std::out_of_range("Dataset::trajectory: user out of range");
  const std::size_t begin = user_offsets_[user];
  const std::size_t end = user_offsets_[user + 1];
  return {checkins_.data() + begin, end - begin};
}

std::vector<PoiId> Dataset::visited_pois(UserId user) const {
  std::vector<PoiId> out;
  for (const CheckIn& c : trajectory(user)) out.push_back(c.poi);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t Dataset::common_poi_count(UserId a, UserId b) const {
  const std::vector<PoiId> pa = visited_pois(a);
  const std::vector<PoiId> pb = visited_pois(b);
  std::size_t count = 0;
  auto ia = pa.begin();
  auto ib = pb.begin();
  while (ia != pa.end() && ib != pb.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

std::vector<geo::LatLng> Dataset::poi_coordinates() const {
  std::vector<geo::LatLng> out;
  out.reserve(pois_.size());
  for (const Poi& p : pois_) out.push_back(p.location);
  return out;
}

Dataset Dataset::with_checkins(std::vector<CheckIn> checkins) const {
  return build(user_count_, pois_, std::move(checkins), friendships_);
}

}  // namespace fs::data
