// Synthetic mobile-social-network world generator.
//
// The paper evaluates on Gowalla and Brightkite SNAP traces; those are not
// available offline, so this generator builds the closest synthetic
// equivalent (see DESIGN.md, substitution table). It reproduces the
// statistical structure the attack exploits:
//
//  * clustered POI geography (cities + countryside) so the quadtree
//    division is meaningfully adaptive;
//  * a small-world ground-truth social graph with two friendship types:
//    REAL-WORLD friends (same-city bias, co-visitation events -> shared
//    POIs, Table II's co-location skew) and CYBER friends (created by
//    triadic preference -> common friends but no shared mobility);
//  * heavy-tailed per-user check-in counts (sparsity, Fig 13's x-axis);
//  * weekly periodicity in check-in times (the reason tau = 7 days peaks
//    in Fig 8);
//  * nearby strangers drawing from the same city POI pool (the
//    false-positive hazard for purely spatial methods).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace fs::data {

struct SyntheticWorldConfig {
  std::string name = "synthetic";

  // --- Geography ---
  std::size_t user_count = 600;
  std::size_t poi_count = 1600;
  std::size_t city_count = 6;
  std::uint16_t category_count = 10;
  double region_span_deg = 8.0;     // square region side, degrees
  double city_sigma_deg = 0.12;     // POI scatter around a city center
  double countryside_fraction = 0.10;  // POIs scattered uniformly

  // --- Observation window ---
  int weeks = 12;

  // --- Social graph ---
  double mean_real_degree = 5.0;     // average real-world friends per user
  double home_attachment_km = 11.0;  // distance scale for real friendships
  double cyber_edge_fraction = 0.30; // cyber edges / all edges
  double cyber_fof_bias = 0.70;      // P(cyber edge closes a 2-hop path)
  /// Extra circle-closing edges added around each cyber pair, giving true
  /// cyber friends several common neighbors (non-friend FoF pairs keep
  /// one at most).
  int cyber_circle_edges = 1;
  double triadic_closure_prob = 0.16;

  // --- Mobility ---
  double checkin_alpha = 1.55;       // power-law exponent of per-user counts
  int max_checkins_per_user = 180;
  int min_checkins_per_user = 2;
  std::size_t pois_per_user = 24;    // personal POI pool size
  double travel_poi_fraction = 0.12; // pool entries outside the home city
  double weekend_bias = 2.2;         // weight multiplier for preferred days
  /// Hub venues per city (malls, stations, bars) shared by EVERY resident's
  /// pool. Hubs create co-locations between same-city strangers — the
  /// "nearby strangers" false-positive hazard that defeats naive
  /// co-location evidence but not learned cell significance.
  std::size_t hubs_per_city = 4;
  double hub_visit_weight = 4.0;     // visit-weight boost for hub POIs

  // --- Friend co-visitation ---
  double covisit_friend_prob = 0.72; // P(real friendship has joint events)
  double covisit_events_mean = 2.6;  // mean #joint events when present
  geo::Timestamp covisit_time_jitter = 3 * 3600;  // +-3 h

  std::uint64_t seed = 42;
};

/// Preset mimicking Gowalla's published statistics at laptop scale:
/// sparser check-ins, more dispersed POIs, lower co-location rate.
SyntheticWorldConfig gowalla_like();

/// Preset mimicking Brightkite: denser check-ins, tighter geography,
/// higher co-location rate among friends.
SyntheticWorldConfig brightkite_like();

/// Generated world: the dataset plus ground-truth annotations that the
/// evaluation uses for stratified analyses (real vs cyber friends).
struct SyntheticWorld {
  Dataset dataset;
  std::vector<graph::Edge> real_edges;   // real-world friendships
  std::vector<graph::Edge> cyber_edges;  // cyber friendships
  std::vector<std::uint32_t> home_city;  // per user
  std::vector<geo::LatLng> home_location;

  bool is_cyber_edge(UserId a, UserId b) const;
};

SyntheticWorld generate_world(const SyntheticWorldConfig& config);

}  // namespace fs::data
