// Geographic primitives: coordinates, distances, bounding boxes.
#pragma once

#include <cmath>
#include <stdexcept>

namespace fs::geo {

/// Mean Earth radius (meters), IUGG value.
inline constexpr double kEarthRadiusMeters = 6371008.8;

/// A WGS-84 coordinate. Latitude in [-90, 90], longitude in [-180, 180].
struct LatLng {
  double lat = 0.0;
  double lng = 0.0;

  friend bool operator==(const LatLng&, const LatLng&) = default;
};

inline double deg2rad(double deg) { return deg * M_PI / 180.0; }
inline double rad2deg(double rad) { return rad * 180.0 / M_PI; }

/// Great-circle distance in meters (haversine formula).
inline double haversine_m(const LatLng& a, const LatLng& b) {
  const double phi1 = deg2rad(a.lat);
  const double phi2 = deg2rad(b.lat);
  const double dphi = deg2rad(b.lat - a.lat);
  const double dlam = deg2rad(b.lng - a.lng);
  const double s = std::sin(dphi / 2) * std::sin(dphi / 2) +
                   std::cos(phi1) * std::cos(phi2) * std::sin(dlam / 2) *
                       std::sin(dlam / 2);
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(s)));
}

/// Fast flat-earth approximation, adequate below ~100 km. Used in hot loops
/// (distance-based baseline, mobility generation).
inline double equirectangular_m(const LatLng& a, const LatLng& b) {
  const double x = deg2rad(b.lng - a.lng) *
                   std::cos(deg2rad((a.lat + b.lat) / 2.0));
  const double y = deg2rad(b.lat - a.lat);
  return kEarthRadiusMeters * std::sqrt(x * x + y * y);
}

/// Axis-aligned lat/lng rectangle; `max` edges are exclusive for point
/// classification so quadtree children tile without overlap.
struct BoundingBox {
  LatLng min;  // south-west corner
  LatLng max;  // north-east corner

  bool contains(const LatLng& p) const {
    return p.lat >= min.lat && p.lat < max.lat && p.lng >= min.lng &&
           p.lng < max.lng;
  }

  LatLng center() const {
    return {(min.lat + max.lat) / 2.0, (min.lng + max.lng) / 2.0};
  }

  double lat_span() const { return max.lat - min.lat; }
  double lng_span() const { return max.lng - min.lng; }

  /// Smallest box containing all points, inflated by a hair so every point
  /// satisfies the half-open `contains` test.
  template <typename Iter, typename Proj>
  static BoundingBox around(Iter first, Iter last, Proj proj) {
    if (first == last)
      throw std::invalid_argument("BoundingBox::around: empty range");
    BoundingBox box{{90.0, 180.0}, {-90.0, -180.0}};
    for (Iter it = first; it != last; ++it) {
      const LatLng p = proj(*it);
      box.min.lat = std::min(box.min.lat, p.lat);
      box.min.lng = std::min(box.min.lng, p.lng);
      box.max.lat = std::max(box.max.lat, p.lat);
      box.max.lng = std::max(box.max.lng, p.lng);
    }
    const double eps_lat = std::max(1e-9, box.lat_span() * 1e-9);
    const double eps_lng = std::max(1e-9, box.lng_span() * 1e-9);
    box.max.lat += eps_lat;
    box.max.lng += eps_lng;
    return box;
  }
};

}  // namespace fs::geo
