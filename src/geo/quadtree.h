// Quadtree spatial division (Definition 8's adaptive grid).
//
// The paper divides the region of interest recursively into four equal grids
// until every grid holds at most sigma POIs, so dense downtown areas get
// fine cells and the countryside gets coarse ones. Leaves, numbered
// 0..cell_count()-1, are the spatial axis of the spatial-temporal division.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/latlng.h"

namespace fs::geo {

/// Adaptive spatial division over a fixed set of POI coordinates.
class QuadtreeDivision {
 public:
  /// Builds the division. `sigma` is the maximum POIs per leaf;
  /// `max_depth` bounds recursion when many POIs share a coordinate.
  QuadtreeDivision(const std::vector<LatLng>& pois, std::size_t sigma,
                   int max_depth = 20);

  /// Number of leaf cells (the paper's I).
  std::size_t cell_count() const { return leaf_boxes_.size(); }

  /// Leaf cell index for a point. Points outside the root bounding box are
  /// clamped onto its boundary first (obfuscated check-ins can drift).
  std::size_t cell_of(const LatLng& point) const;

  /// Bounding box of leaf `cell`.
  const BoundingBox& cell_box(std::size_t cell) const {
    return leaf_boxes_.at(cell);
  }

  /// POI indices (into the constructor vector) inside leaf `cell`.
  const std::vector<std::uint32_t>& cell_pois(std::size_t cell) const {
    return leaf_pois_.at(cell);
  }

  const BoundingBox& root_box() const { return root_box_; }

  /// Maximum depth actually reached while building.
  int depth() const { return depth_reached_; }

  /// Index of the leaf containing POI `poi` (constructor-order index).
  std::size_t cell_of_poi(std::size_t poi) const {
    return poi_cell_.at(poi);
  }

  /// Leaf cells adjacent to `cell` (sharing an edge or corner). Used by
  /// cross-grid blurring, which relocates a check-in to a neighboring grid.
  std::vector<std::size_t> neighbor_cells(std::size_t cell) const;

 private:
  struct Node {
    BoundingBox box;
    // Children in quadrant order (SW, SE, NW, NE); kInvalid for leaves.
    std::uint32_t child[4];
    std::uint32_t leaf_id;  // kInvalid for internal nodes
  };
  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  void build(std::uint32_t node, std::vector<std::uint32_t> pois,
             const std::vector<LatLng>& coords, std::size_t sigma, int depth,
             int max_depth);

  std::vector<Node> nodes_;
  std::vector<BoundingBox> leaf_boxes_;
  std::vector<std::vector<std::uint32_t>> leaf_pois_;
  std::vector<std::size_t> poi_cell_;
  BoundingBox root_box_;
  int depth_reached_ = 0;
};

/// Uniform grid division over the same interface surface, for the
/// quadtree-vs-uniform ablation. Splits the bounding box of the POIs into
/// `rows` x `cols` equal cells.
class UniformGridDivision {
 public:
  UniformGridDivision(const std::vector<LatLng>& pois, std::size_t rows,
                      std::size_t cols);

  std::size_t cell_count() const { return rows_ * cols_; }
  std::size_t cell_of(const LatLng& point) const;
  const BoundingBox& root_box() const { return root_box_; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

 private:
  BoundingBox root_box_;
  std::size_t rows_;
  std::size_t cols_;
};

}  // namespace fs::geo
