#include "geo/quadtree.h"

#include <algorithm>
#include <stdexcept>

namespace fs::geo {

QuadtreeDivision::QuadtreeDivision(const std::vector<LatLng>& pois,
                                   std::size_t sigma, int max_depth) {
  if (pois.empty())
    throw std::invalid_argument("QuadtreeDivision: no POIs");
  if (sigma == 0)
    throw std::invalid_argument("QuadtreeDivision: sigma must be > 0");
  root_box_ = BoundingBox::around(pois.begin(), pois.end(),
                                  [](const LatLng& p) { return p; });
  poi_cell_.assign(pois.size(), 0);
  std::vector<std::uint32_t> all(pois.size());
  for (std::size_t i = 0; i < pois.size(); ++i)
    all[i] = static_cast<std::uint32_t>(i);
  nodes_.push_back(Node{root_box_, {kInvalid, kInvalid, kInvalid, kInvalid},
                        kInvalid});
  build(0, std::move(all), pois, sigma, 0, max_depth);
}

void QuadtreeDivision::build(std::uint32_t node,
                             std::vector<std::uint32_t> pois,
                             const std::vector<LatLng>& coords,
                             std::size_t sigma, int depth, int max_depth) {
  depth_reached_ = std::max(depth_reached_, depth);
  if (pois.size() <= sigma || depth >= max_depth) {
    const auto leaf_id = static_cast<std::uint32_t>(leaf_boxes_.size());
    nodes_[node].leaf_id = leaf_id;
    leaf_boxes_.push_back(nodes_[node].box);
    for (std::uint32_t poi : pois) poi_cell_[poi] = leaf_id;
    leaf_pois_.push_back(std::move(pois));
    return;
  }
  const BoundingBox box = nodes_[node].box;
  const LatLng mid = box.center();
  // Quadrants: index bit0 = east half, bit1 = north half.
  BoundingBox quads[4] = {
      {{box.min.lat, box.min.lng}, {mid.lat, mid.lng}},        // SW
      {{box.min.lat, mid.lng}, {mid.lat, box.max.lng}},        // SE
      {{mid.lat, box.min.lng}, {box.max.lat, mid.lng}},        // NW
      {{mid.lat, mid.lng}, {box.max.lat, box.max.lng}},        // NE
  };
  std::vector<std::uint32_t> parts[4];
  for (std::uint32_t poi : pois) {
    const LatLng& p = coords[poi];
    const int q = (p.lat >= mid.lat ? 2 : 0) | (p.lng >= mid.lng ? 1 : 0);
    parts[q].push_back(poi);
  }
  pois.clear();
  pois.shrink_to_fit();
  for (int q = 0; q < 4; ++q) {
    const auto child = static_cast<std::uint32_t>(nodes_.size());
    nodes_[node].child[q] = child;
    nodes_.push_back(
        Node{quads[q], {kInvalid, kInvalid, kInvalid, kInvalid}, kInvalid});
    build(child, std::move(parts[q]), coords, sigma, depth + 1, max_depth);
  }
}

std::size_t QuadtreeDivision::cell_of(const LatLng& point) const {
  LatLng p = point;
  // Clamp into the root box (half-open upper edge).
  p.lat = std::clamp(p.lat, root_box_.min.lat,
                     std::nextafter(root_box_.max.lat, -1e9));
  p.lng = std::clamp(p.lng, root_box_.min.lng,
                     std::nextafter(root_box_.max.lng, -1e9));
  std::uint32_t node = 0;
  while (nodes_[node].leaf_id == kInvalid) {
    const LatLng mid = nodes_[node].box.center();
    const int q = (p.lat >= mid.lat ? 2 : 0) | (p.lng >= mid.lng ? 1 : 0);
    node = nodes_[node].child[q];
  }
  return nodes_[node].leaf_id;
}

std::vector<std::size_t> QuadtreeDivision::neighbor_cells(
    std::size_t cell) const {
  const BoundingBox& box = cell_box(cell);
  // Probe just outside each edge midpoint and each corner; dedupe.
  const double dlat = std::max(box.lat_span() * 0.01, 1e-7);
  const double dlng = std::max(box.lng_span() * 0.01, 1e-7);
  const LatLng c = box.center();
  const LatLng probes[8] = {
      {box.max.lat + dlat, c.lng},          // N
      {box.min.lat - dlat, c.lng},          // S
      {c.lat, box.max.lng + dlng},          // E
      {c.lat, box.min.lng - dlng},          // W
      {box.max.lat + dlat, box.max.lng + dlng},
      {box.max.lat + dlat, box.min.lng - dlng},
      {box.min.lat - dlat, box.max.lng + dlng},
      {box.min.lat - dlat, box.min.lng - dlng},
  };
  std::vector<std::size_t> out;
  for (const LatLng& probe : probes) {
    if (!root_box_.contains(probe)) continue;
    const std::size_t neighbor = cell_of(probe);
    if (neighbor == cell) continue;
    if (std::find(out.begin(), out.end(), neighbor) == out.end())
      out.push_back(neighbor);
  }
  return out;
}

UniformGridDivision::UniformGridDivision(const std::vector<LatLng>& pois,
                                         std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {
  if (pois.empty())
    throw std::invalid_argument("UniformGridDivision: no POIs");
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("UniformGridDivision: zero rows/cols");
  root_box_ = BoundingBox::around(pois.begin(), pois.end(),
                                  [](const LatLng& p) { return p; });
}

std::size_t UniformGridDivision::cell_of(const LatLng& point) const {
  const double fy = (point.lat - root_box_.min.lat) / root_box_.lat_span();
  const double fx = (point.lng - root_box_.min.lng) / root_box_.lng_span();
  const auto clamp_idx = [](double f, std::size_t n) {
    auto i = static_cast<long long>(f * static_cast<double>(n));
    if (i < 0) i = 0;
    if (i >= static_cast<long long>(n)) i = static_cast<long long>(n) - 1;
    return static_cast<std::size_t>(i);
  };
  return clamp_idx(fy, rows_) * cols_ + clamp_idx(fx, cols_);
}

}  // namespace fs::geo
