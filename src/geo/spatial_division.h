// Polymorphic view over spatial divisions so the JOC builder can run on the
// paper's quadtree division or the uniform-grid ablation interchangeably.
#pragma once

#include <cstddef>

#include "geo/latlng.h"
#include "geo/quadtree.h"

namespace fs::geo {

/// Abstract spatial division: a partition of the plane into indexed cells.
class SpatialDivision {
 public:
  virtual ~SpatialDivision() = default;
  virtual std::size_t cell_count() const = 0;
  virtual std::size_t cell_of(const LatLng& point) const = 0;
};

/// Non-owning adapters over the concrete division types.
class QuadtreeDivisionView final : public SpatialDivision {
 public:
  explicit QuadtreeDivisionView(const QuadtreeDivision& division)
      : division_(&division) {}
  std::size_t cell_count() const override { return division_->cell_count(); }
  std::size_t cell_of(const LatLng& point) const override {
    return division_->cell_of(point);
  }

 private:
  const QuadtreeDivision* division_;
};

class UniformGridDivisionView final : public SpatialDivision {
 public:
  explicit UniformGridDivisionView(const UniformGridDivision& division)
      : division_(&division) {}
  std::size_t cell_count() const override { return division_->cell_count(); }
  std::size_t cell_of(const LatLng& point) const override {
    return division_->cell_of(point);
  }

 private:
  const UniformGridDivision* division_;
};

}  // namespace fs::geo
