// Temporal axis of the spatial-temporal division: fixed-length slots of
// length tau over an observation window.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace fs::geo {

/// Unix-style timestamp in seconds. The synthetic world uses second 0 as the
/// start of its observation window; real loaders carry epoch seconds.
using Timestamp = std::int64_t;

inline constexpr Timestamp kSecondsPerDay = 86400;

/// Partition of [begin, end) into equal slots of `slot_seconds` (tau).
class TimeSlotting {
 public:
  TimeSlotting(Timestamp begin, Timestamp end, Timestamp slot_seconds)
      : begin_(begin), end_(end), slot_seconds_(slot_seconds) {
    if (end <= begin)
      throw std::invalid_argument("TimeSlotting: empty window");
    if (slot_seconds <= 0)
      throw std::invalid_argument("TimeSlotting: tau must be > 0");
    slot_count_ = static_cast<std::size_t>((end - begin + slot_seconds - 1) /
                                           slot_seconds);
  }

  /// Number of slots (the paper's J).
  std::size_t slot_count() const { return slot_count_; }

  /// Slot index of a timestamp; timestamps outside the window clamp to the
  /// first/last slot (obfuscation can nudge timestamps past the edges).
  std::size_t slot_of(Timestamp t) const {
    if (t < begin_) return 0;
    if (t >= end_) return slot_count_ - 1;
    return static_cast<std::size_t>((t - begin_) / slot_seconds_);
  }

  Timestamp begin() const { return begin_; }
  Timestamp end() const { return end_; }
  Timestamp slot_seconds() const { return slot_seconds_; }

 private:
  Timestamp begin_;
  Timestamp end_;
  Timestamp slot_seconds_;
  std::size_t slot_count_;
};

}  // namespace fs::geo
