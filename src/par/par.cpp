#include "par/par.h"

#include <atomic>
#include <exception>
#include <limits>
#include <mutex>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fs::par {

namespace {

/// Set while a thread is executing chunks of some region; nested
/// parallel_for calls from such a thread run inline instead of re-entering
/// the pool (which would deadlock a fork-join pool).
thread_local bool t_in_region = false;

std::size_t resolve_grain(std::size_t n, std::size_t grain) {
  if (grain == 0) grain = n / 64;
  return grain > 0 ? grain : 1;
}

}  // namespace

std::size_t chunk_count(std::size_t n, std::size_t grain) {
  if (n == 0) return 0;
  grain = resolve_grain(n, grain);
  return (n + grain - 1) / grain;
}

void parallel_for_chunks(std::size_t n, const ParallelOptions& options,
                         const std::function<void(const ChunkRange&)>& body) {
  if (n == 0) return;
  const std::size_t grain = resolve_grain(n, options.grain);
  const std::size_t chunks = (n + grain - 1) / grain;
  runtime::ExecutionContext* const ctx = options.context;

  const auto probe = [&options, ctx] {
    if (ctx == nullptr) return;
    if (options.hard_deadline)
      ctx->checkpoint(options.what);
    else
      ctx->throw_if_cancelled(options.what);
  };

  const auto make_chunk = [n, grain](std::size_t index) {
    ChunkRange chunk;
    chunk.index = index;
    chunk.begin = index * grain;
    chunk.end = chunk.begin + grain < n ? chunk.begin + grain : n;
    return chunk;
  };

  // Inline path: one chunk, a one-thread pool, or a nested call. Same
  // decomposition, ascending chunk order — byte-identical to the pooled
  // path by construction, and the pool is never touched (so `--threads 1`
  // spawns no threads at all).
  if (chunks == 1 || t_in_region || threads() == 1) {
    for (std::size_t index = 0; index < chunks; ++index) {
      probe();
      body(make_chunk(index));
    }
    return;
  }

  ThreadPool& workers = pool();
  // Per-worker scratch is charged once, here, on the calling thread: budget
  // violations must surface deterministically, not as a race between
  // workers hitting the limit.
  const runtime::MemoryCharge scratch_charge(
      ctx, options.scratch_bytes_per_worker * workers.threads(),
      options.what);

  const bool observe = obs::metrics_enabled();
  obs::Histogram* chunk_ms =
      observe ? &obs::metrics().histogram(
                    "span.par.chunk_ms", obs::default_duration_buckets_ms(),
                    {}, "per-chunk wall time inside parallel regions")
              : nullptr;
  if (observe) {
    obs::metrics()
        .counter("par.regions_total", {}, "parallel regions executed")
        .add(1);
    obs::metrics()
        .counter("par.chunks_total", {}, "chunks dispatched across regions")
        .add(chunks);
    obs::metrics()
        .gauge("par.queue_depth", {},
               "chunk count of the widest region so far (high-water)")
        .set_max(static_cast<double>(chunks));
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> aborted{false};
  std::atomic<std::uint64_t> stolen{0};
  // First error by CHUNK INDEX, not by wall-clock arrival: which exception
  // the caller sees must not depend on scheduling.
  std::mutex error_mu;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  const auto record_error = [&](std::size_t index) {
    std::lock_guard<std::mutex> lock(error_mu);
    if (index < error_index) {
      error_index = index;
      error = std::current_exception();
    }
    aborted.store(true, std::memory_order_relaxed);
  };

  workers.run([&](std::size_t slot) {
    t_in_region = true;
    for (;;) {
      const std::size_t index =
          next.fetch_add(1, std::memory_order_relaxed);
      if (index >= chunks || aborted.load(std::memory_order_relaxed)) break;
      if (slot != 0) stolen.fetch_add(1, std::memory_order_relaxed);
      try {
        probe();
        obs::Span span("par.chunk");
        body(make_chunk(index));
        if (chunk_ms != nullptr) chunk_ms->observe(span.milliseconds());
      } catch (...) {
        record_error(index);
        break;
      }
    }
    t_in_region = false;
  });

  if (observe)
    obs::metrics()
        .counter("par.chunks_stolen_total", {},
                 "chunks executed by pool workers instead of the caller")
        .add(stolen.load(std::memory_order_relaxed));
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace fs::par
