// Deterministic parallel-for and ordered reduce over the fs::par pool.
//
// Determinism contract: the work decomposition is a pure function of the
// iteration count and the grain — NEVER of the thread count — so an
// N-thread run executes exactly the same chunks as a 1-thread run. Chunks
// are dispatched dynamically (whichever participant is free takes the next
// chunk index), which is safe because:
//
//   * parallel_for bodies write only to slots owned by their own indices,
//     so scheduling order cannot change the output;
//   * ordered_reduce stores one partial per chunk and combines them on the
//     calling thread in ascending chunk-index order, so floating-point
//     association is fixed;
//   * randomized chunk bodies draw from chunk_rng(seed, chunk_index),
//     a stream derived from data that does not depend on scheduling.
//
// Together these make an N-thread run byte-identical to a 1-thread run,
// which composes with the checkpoint/resume equivalence guarantee: a run
// interrupted and resumed under a different --threads still reproduces the
// uninterrupted result bit for bit.
//
// Governance: when ParallelOptions.context is set, every chunk starts with
// a hard cooperative cancellation probe (CancelledError on cancellation,
// BudgetError past the deadline). The first chunk exception — "first" by
// chunk index, for cross-thread-count stability — aborts the region: the
// remaining chunks are skipped and the exception rethrows on the calling
// thread once all participants have drained. Per-worker scratch declared
// via scratch_bytes_per_worker is charged against the context's memory
// budget up front on the calling thread (workers never touch the
// accounting, keeping budget errors deterministic).
//
// Observability: regions and chunks feed par.regions_total,
// par.chunks_total, par.chunks_stolen_total (chunks executed by pool
// workers rather than the caller), the par.queue_depth high-water gauge,
// and the span.par.chunk_ms histogram; with the tracer enabled each chunk
// also records a "par.chunk" trace span.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "par/pool.h"
#include "util/rng.h"
#include "util/runtime.h"

namespace fs::par {

struct ParallelOptions {
  /// Optional governance: cancellation/deadline probed at every chunk
  /// start; scratch charged against the memory budget.
  runtime::ExecutionContext* context = nullptr;
  /// Label used for cancellation probes and trace spans (a string literal).
  const char* what = "par.region";
  /// Items per chunk; 0 picks max(1, n / 64). Must not be derived from the
  /// thread count, or the determinism contract breaks.
  std::size_t grain = 0;
  /// Estimated scratch bytes each participant allocates; charged as
  /// scratch * threads against the context's memory budget for the
  /// region's duration.
  std::size_t scratch_bytes_per_worker = 0;
  /// When false, chunk probes check cancellation only: an expired deadline
  /// never aborts the region. For regions that must run to completion for
  /// any result to exist at all (e.g. seeding G0 in phase 1) — the caller
  /// degrades at its own phase boundary instead, preserving the
  /// budget-exhausted-runs-still-exit-0 contract.
  bool hard_deadline = true;
};

/// One contiguous chunk of the iteration space.
struct ChunkRange {
  std::size_t index = 0;  // chunk index (stable across thread counts)
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// The chunk decomposition parallel_for_chunks will use: how many chunks
/// [0, n) splits into under `grain` (0 = auto). Pure function of (n, grain).
std::size_t chunk_count(std::size_t n, std::size_t grain);

/// Grain sizing helper: the smallest chunk length whose estimated cost
/// reaches target_ops, given a per-item cost estimate. Deliberately a
/// function of the workload shape only — callers must not feed thread
/// counts into this.
inline std::size_t grain_for(std::size_t per_item_ops,
                             std::size_t target_ops = std::size_t{1} << 15) {
  if (per_item_ops == 0) per_item_ops = 1;
  const std::size_t grain = target_ops / per_item_ops;
  return grain > 0 ? grain : 1;
}

/// An RNG stream for one chunk, derived from (seed, chunk_index) alone so
/// randomized chunk bodies reproduce regardless of which thread runs them.
inline util::Rng chunk_rng(std::uint64_t seed, std::size_t chunk_index) {
  std::uint64_t state =
      seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(chunk_index) + 1));
  return util::Rng(util::splitmix64(state));
}

/// Runs `body(chunk)` over the fixed decomposition of [0, n). Blocks until
/// every chunk has run (or the region aborted on an exception). Runs
/// inline — same chunks, same order — when the pool has one thread, when
/// there is a single chunk, or when called from inside another parallel
/// region (regions never nest onto the pool).
void parallel_for_chunks(std::size_t n, const ParallelOptions& options,
                         const std::function<void(const ChunkRange&)>& body);

/// Element-wise parallel for: body(i) for i in [0, n). The body is invoked
/// through a per-chunk trampoline, so per-element dispatch overhead is one
/// indirect call per chunk, not per element.
template <typename Body>
void parallel_for(std::size_t n, const ParallelOptions& options,
                  Body&& body) {
  parallel_for_chunks(n, options, [&body](const ChunkRange& chunk) {
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) body(i);
  });
}

/// Ordered deterministic reduce: `map(chunk)` produces one partial per
/// chunk (in parallel); partials are combined on the calling thread in
/// ascending chunk-index order via `acc = combine(std::move(acc),
/// std::move(partial))`. Floating-point association is therefore fixed by
/// (n, grain) and independent of the thread count.
template <typename T, typename Map, typename Combine>
T ordered_reduce(std::size_t n, T init, const ParallelOptions& options,
                 Map&& map, Combine&& combine) {
  std::vector<std::optional<T>> partials(chunk_count(n, options.grain));
  parallel_for_chunks(n, options, [&](const ChunkRange& chunk) {
    partials[chunk.index].emplace(map(chunk));
  });
  T acc = std::move(init);
  for (auto& partial : partials)
    acc = combine(std::move(acc), std::move(*partial));
  return acc;
}

}  // namespace fs::par
