// Fixed-size fork-join thread pool — the substrate of fs::par.
//
// The pool owns `threads - 1` long-lived workers; the calling thread is
// always the remaining participant, so `threads == 1` means "no workers at
// all" and a parallel region degenerates to plain inline execution. A
// region (ThreadPool::run) wakes every worker, runs the same callable on
// all participants, and returns once the last one finishes. Work
// distribution, determinism, and exception handling live a layer up in
// par.h/par.cpp — the pool only provides cheap fork-join.
//
// Process-wide configuration: the pool is created lazily on first use,
// sized by set_threads() (CLI --threads), the FS_THREADS environment
// variable, or std::thread::hardware_concurrency(), in that order of
// precedence.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fs::par {

class ThreadPool {
 public:
  /// A pool with `threads` total participants: `threads - 1` spawned
  /// workers plus the thread that calls run(). threads == 0 is clamped
  /// to 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total participants, calling thread included.
  std::size_t threads() const { return workers_.size() + 1; }

  /// Runs `work(slot)` on every participant — slot 0 is the calling
  /// thread, slots 1..threads-1 the workers — and blocks until all have
  /// returned. `work` must not throw (the dispatch layer in par.cpp
  /// catches per-chunk exceptions before they reach the pool) and must
  /// not call run() on the same pool (regions do not nest; nested
  /// parallel_for calls run inline instead).
  void run(const std::function<void(std::size_t)>& work);

 private:
  void worker_loop(std::size_t slot);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* work_ = nullptr;
  std::uint64_t generation_ = 0;  // bumped per region; workers wait on it
  std::size_t active_ = 0;        // workers still inside the current region
  bool stopping_ = false;
};

/// Thread count from the environment: FS_THREADS when set to a positive
/// integer, otherwise hardware_concurrency() (minimum 1).
std::size_t default_threads();

/// Configures the process-wide pool size. 0 means default_threads(). If a
/// pool of a different size already exists it is torn down and lazily
/// recreated on the next parallel region; must not be called from inside
/// one.
void set_threads(std::size_t threads);

/// The currently configured thread count (without forcing pool creation).
std::size_t threads();

/// The process-wide pool, created on first use with the configured size.
ThreadPool& pool();

}  // namespace fs::par
