#include "par/pool.h"

#include <cstdlib>
#include <memory>
#include <string>

#include "obs/metrics.h"

namespace fs::par {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads - 1);
  for (std::size_t slot = 1; slot < threads; ++slot)
    workers_.emplace_back([this, slot] { worker_loop(slot); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run(const std::function<void(std::size_t)>& work) {
  if (workers_.empty()) {
    work(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    work_ = &work;
    active_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  work(0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return active_ == 0; });
  work_ = nullptr;
}

void ThreadPool::worker_loop(std::size_t slot) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* work = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
      work = work_;
    }
    (*work)(slot);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (active_ == 0) done_cv_.notify_all();
    }
  }
}

namespace {

std::mutex g_pool_mu;
std::size_t g_configured_threads = 0;  // 0 = not configured yet
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

std::size_t default_threads() {
  if (const char* env = std::getenv("FS_THREADS")) {
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && n > 0)
      return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void set_threads(std::size_t threads) {
  if (threads == 0) threads = default_threads();
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_configured_threads = threads;
  if (g_pool != nullptr && g_pool->threads() != threads) g_pool.reset();
}

std::size_t threads() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_configured_threads == 0) g_configured_threads = default_threads();
  return g_configured_threads;
}

ThreadPool& pool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_configured_threads == 0) g_configured_threads = default_threads();
  if (g_pool == nullptr) {
    g_pool = std::make_unique<ThreadPool>(g_configured_threads);
    obs::metrics()
        .gauge("par.threads", {}, "thread-pool size (caller included)")
        .set(static_cast<double>(g_pool->threads()));
  }
  return *g_pool;
}

}  // namespace fs::par
