// Fully-connected layers and multi-layer perceptrons with explicit
// gradient accumulation, so Algorithm 1's sequential two-loss update can be
// expressed faithfully (compute both gradient sets at the forward point,
// then apply).
//
// Hot-path shape: forward runs one fused GEMM (bias + activation applied
// in the kernel's tile writeback — no second pass over the batch), caches
// the layer *output*, and derives the activation gradient from it in
// backward (ReLU: out > 0; sigmoid: s(1-s); tanh: 1-t² — identical values
// to the pre-activation forms, one cached matrix instead of two). All
// per-batch buffers are reused members, so steady-state training allocates
// nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/matrix.h"
#include "util/binary_io.h"

namespace fs::nn {

enum class Activation { kIdentity, kRelu, kSigmoid, kTanh };

/// Applies the activation / its derivative (as a function of the
/// pre-activation for ReLU, of the output for sigmoid/tanh).
double activate(Activation act, double x);

/// One dense layer: y = act(W x + b), batched over matrix rows.
class Dense {
 public:
  Dense(std::size_t in_dim, std::size_t out_dim, Activation act,
        util::Rng& rng);

  /// Reconstructs a layer from trained parameters (deserialization).
  Dense(Matrix weights, std::vector<double> bias, Activation act);

  std::size_t in_dim() const { return weights_.cols(); }
  std::size_t out_dim() const { return weights_.rows(); }
  Activation activation() const { return activation_; }

  /// Forward pass; caches input and output for backward(). The returned
  /// reference is into this layer and stays valid until the next forward.
  const Matrix& forward(const Matrix& input);

  /// Forward without caching (inference).
  Matrix infer(const Matrix& input) const;

  /// Accumulates weight/bias gradients from dL/d(output) and returns
  /// dL/d(input). Requires a preceding forward() on the same batch.
  Matrix backward(const Matrix& d_output);

  /// backward() with the input gradient written to *d_input (reusing its
  /// capacity), or skipped entirely when d_input is null — the bottom
  /// layer of a network whose input gradient nobody reads saves a GEMM.
  void backward_into(const Matrix& d_output, Matrix* d_input);

  /// SGD step with the accumulated gradients, then clears them.
  void apply_gradients(double learning_rate);

  /// Drops accumulated gradients without applying (used when a loss term
  /// must not touch this layer).
  void clear_gradients();

  void save(util::BinaryWriter& writer) const;
  static Dense load(util::BinaryReader& reader);

  const Matrix& weights() const { return weights_; }
  Matrix& mutable_weights() { return weights_; }
  const std::vector<double>& bias() const { return bias_; }

 private:
  Matrix weights_;  // out_dim x in_dim
  std::vector<double> bias_;
  Activation activation_;

  Matrix grad_weights_;
  std::vector<double> grad_bias_;

  // Forward caches and backward scratch (all capacity-reusing).
  Matrix cached_input_;
  Matrix cached_output_;  // post-activation
  Matrix d_pre_;
};

/// A plain MLP: a stack of Dense layers trained with SGD.
class Mlp {
 public:
  /// dims = {in, h1, ..., out}; `hidden` activation on all but the last
  /// layer, `output` activation on the last.
  Mlp(const std::vector<std::size_t>& dims, Activation hidden,
      Activation output, util::Rng& rng);

  /// Reconstructs a network from trained layers (deserialization).
  explicit Mlp(std::vector<Dense> layers);

  /// Returns a reference into the last layer's cache, valid until the
  /// next forward — activations chain layer to layer without copies.
  const Matrix& forward(const Matrix& input);
  Matrix infer(const Matrix& input) const;

  /// Backpropagates dL/d(output), accumulating gradients; returns
  /// dL/d(input) (a reference into this network, valid until the next
  /// backward). With need_input_grad false the bottom layer's input
  /// gradient is never computed and the returned matrix is empty.
  const Matrix& backward(const Matrix& d_output,
                         bool need_input_grad = true);

  void apply_gradients(double learning_rate);
  void clear_gradients();

  std::size_t layer_count() const { return layers_.size(); }
  const Dense& layer(std::size_t i) const { return layers_.at(i); }
  Dense& mutable_layer(std::size_t i) { return layers_.at(i); }

  std::size_t in_dim() const { return layers_.front().in_dim(); }
  std::size_t out_dim() const { return layers_.back().out_dim(); }

  void save(util::BinaryWriter& writer) const;
  static Mlp load(util::BinaryReader& reader);

 private:
  std::vector<Dense> layers_;
  // d_input_[i] = dL/d(input of layer i); reused every backward pass.
  std::vector<Matrix> d_input_;
};

}  // namespace fs::nn
