// Fully-connected layers and multi-layer perceptrons with explicit
// gradient accumulation, so Algorithm 1's sequential two-loss update can be
// expressed faithfully (compute both gradient sets at the forward point,
// then apply).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/matrix.h"
#include "util/binary_io.h"

namespace fs::nn {

enum class Activation { kIdentity, kRelu, kSigmoid, kTanh };

/// Applies the activation / its derivative (as a function of the
/// pre-activation for ReLU, of the output for sigmoid/tanh).
double activate(Activation act, double x);

/// One dense layer: y = act(W x + b), batched over matrix rows.
class Dense {
 public:
  Dense(std::size_t in_dim, std::size_t out_dim, Activation act,
        util::Rng& rng);

  /// Reconstructs a layer from trained parameters (deserialization).
  Dense(Matrix weights, std::vector<double> bias, Activation act);

  std::size_t in_dim() const { return weights_.cols(); }
  std::size_t out_dim() const { return weights_.rows(); }
  Activation activation() const { return activation_; }

  /// Forward pass; caches input and pre-activations for backward().
  Matrix forward(const Matrix& input);

  /// Forward without caching (inference).
  Matrix infer(const Matrix& input) const;

  /// Accumulates weight/bias gradients from dL/d(output) and returns
  /// dL/d(input). Requires a preceding forward() on the same batch.
  Matrix backward(const Matrix& d_output);

  /// SGD step with the accumulated gradients, then clears them.
  void apply_gradients(double learning_rate);

  /// Drops accumulated gradients without applying (used when a loss term
  /// must not touch this layer).
  void clear_gradients();

  void save(util::BinaryWriter& writer) const;
  static Dense load(util::BinaryReader& reader);

  const Matrix& weights() const { return weights_; }
  Matrix& mutable_weights() { return weights_; }
  const std::vector<double>& bias() const { return bias_; }

 private:
  Matrix weights_;  // out_dim x in_dim
  std::vector<double> bias_;
  Activation activation_;

  Matrix grad_weights_;
  std::vector<double> grad_bias_;

  // Forward caches.
  Matrix cached_input_;
  Matrix cached_pre_;  // pre-activation
};

/// A plain MLP: a stack of Dense layers trained with SGD.
class Mlp {
 public:
  /// dims = {in, h1, ..., out}; `hidden` activation on all but the last
  /// layer, `output` activation on the last.
  Mlp(const std::vector<std::size_t>& dims, Activation hidden,
      Activation output, util::Rng& rng);

  /// Reconstructs a network from trained layers (deserialization).
  explicit Mlp(std::vector<Dense> layers);

  Matrix forward(const Matrix& input);
  Matrix infer(const Matrix& input) const;

  /// Backpropagates dL/d(output), accumulating gradients; returns
  /// dL/d(input).
  Matrix backward(const Matrix& d_output);

  void apply_gradients(double learning_rate);
  void clear_gradients();

  std::size_t layer_count() const { return layers_.size(); }
  const Dense& layer(std::size_t i) const { return layers_.at(i); }
  Dense& mutable_layer(std::size_t i) { return layers_.at(i); }

  std::size_t in_dim() const { return layers_.front().in_dim(); }
  std::size_t out_dim() const { return layers_.back().out_dim(); }

  void save(util::BinaryWriter& writer) const;
  static Mlp load(util::BinaryReader& reader);

 private:
  std::vector<Dense> layers_;
};

}  // namespace fs::nn
