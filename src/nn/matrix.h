// Dense row-major matrix for the neural substrate.
//
// The repository trains small fully-connected networks (the paper's
// supervised autoencoder and classifier); everything reduces to the three
// GEMM variants below, executed by fs::kern's cache-blocked SIMD kernels
// (runtime-dispatched scalar/AVX2/AVX-512 — see src/kern/kern.h for the
// determinism contract). Storage is 64-byte aligned so kernel loads and
// the columnar store's alignment convention agree. The `_into` variants
// write into a caller-owned matrix, reusing its capacity — the training
// loop runs allocation-free at steady state.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "util/aligned.h"
#include "util/rng.h"

namespace fs::nn {

// A 64-byte line must hold whole doubles for row alignment to make sense.
static_assert(util::kCacheLineBytes % sizeof(double) == 0,
              "cache line must be a multiple of sizeof(double)");

class Matrix {
 public:
  using Storage = std::vector<double, util::AlignedAllocator<double>>;

  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void fill(double value) { data_.assign(data_.size(), value); }

  /// Reshapes to rows x cols, reusing existing capacity when it suffices
  /// (no reallocation in steady-state training loops). Contents are
  /// preserved when the shape is unchanged and zero-filled otherwise —
  /// callers are expected to overwrite every element either way.
  void resize(std::size_t rows, std::size_t cols) {
    if (rows == rows_ && cols == cols_) return;
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
  }

  /// Element-wise in-place operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// Gaussian init scaled for the given fan-in (He initialization; the
  /// hidden activations are ReLU).
  static Matrix he_init(std::size_t rows, std::size_t cols, util::Rng& rng);

  /// Copies row `src_row` of `src` into row `dst_row` of *this.
  void set_row(std::size_t dst_row, const Matrix& src, std::size_t src_row);

  /// Extracts the given rows into a new matrix (mini-batch assembly).
  Matrix gather_rows(const std::vector<std::size_t>& indices) const;

  /// gather_rows into a caller-owned matrix, reusing its capacity.
  void gather_rows_into(const std::vector<std::size_t>& indices,
                        Matrix& out) const;

  /// Frobenius-norm squared of the difference (reconstruction loss).
  static double squared_difference(const Matrix& x, const Matrix& y);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Storage data_;
};

/// C = A * B. Dimensions: (m x k) * (k x n) -> (m x n).
Matrix matmul_nn(const Matrix& a, const Matrix& b);

/// C = A * B^T. Dimensions: (m x k) * (n x k) -> (m x n).
Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// C = A^T * B. Dimensions: (k x m) * (k x n) -> (m x n).
Matrix matmul_tn(const Matrix& a, const Matrix& b);

/// Out-param variants: write into `c` (resized unless accumulating, in
/// which case its shape must already match). With accumulate, C += A * B.
void matmul_nn_into(const Matrix& a, const Matrix& b, Matrix& c,
                    bool accumulate = false);
void matmul_nt_into(const Matrix& a, const Matrix& b, Matrix& c,
                    bool accumulate = false);
void matmul_tn_into(const Matrix& a, const Matrix& b, Matrix& c,
                    bool accumulate = false);

}  // namespace fs::nn
