// Dense row-major matrix for the neural substrate.
//
// The repository trains small fully-connected networks (the paper's
// supervised autoencoder and classifier); everything reduces to the three
// GEMM variants below, implemented with cache-friendly loop orders. No BLAS
// dependency — the evaluation environment is offline. Large products fan
// their output rows across fs::par (deterministically: per-element
// accumulation order is fixed, so thread count never changes the bits);
// mini-batch-sized products stay inline.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace fs::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void fill(double value) { data_.assign(data_.size(), value); }

  /// Element-wise in-place operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// Gaussian init scaled for the given fan-in (He initialization; the
  /// hidden activations are ReLU).
  static Matrix he_init(std::size_t rows, std::size_t cols, util::Rng& rng);

  /// Copies row `src_row` of `src` into row `dst_row` of *this.
  void set_row(std::size_t dst_row, const Matrix& src, std::size_t src_row);

  /// Extracts the given rows into a new matrix (mini-batch assembly).
  Matrix gather_rows(const std::vector<std::size_t>& indices) const;

  /// Frobenius-norm squared of the difference (reconstruction loss).
  static double squared_difference(const Matrix& x, const Matrix& y);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B. Dimensions: (m x k) * (k x n) -> (m x n).
Matrix matmul_nn(const Matrix& a, const Matrix& b);

/// C = A * B^T. Dimensions: (m x k) * (n x k) -> (m x n).
Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// C = A^T * B. Dimensions: (k x m) * (k x n) -> (m x n).
Matrix matmul_tn(const Matrix& a, const Matrix& b);

}  // namespace fs::nn
