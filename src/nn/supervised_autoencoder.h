// Supervised autoencoder (paper Section III-B.2/3, Algorithm 1).
//
// An encoder compresses a JOC into a d-dimensional presence-proximity
// feature; a decoder reconstructs the input (L_auto); a classification head
// on the code predicts friendship (L_cla). Training follows Algorithm 1's
// sequential update scheme: per batch, the autoencoder takes a gradient step
// on L_auto, the classifier head takes a step on L_cla, and the encoder
// takes an additional alpha-scaled step on L_cla — so the code stays both
// reconstructive and discriminative.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layers.h"
#include "util/error.h"
#include "util/runtime.h"

namespace fs::nn {

struct AutoencoderConfig {
  /// Encoder layer widths: {input, ..., d}. The decoder mirrors this in the
  /// opposite orientation (paper Sec III-B.2). Must have >= 2 entries.
  std::vector<std::size_t> encoder_dims;

  /// Classifier head widths after the code layer: {h...}; the final logit
  /// layer (width 1) is appended automatically.
  std::vector<std::size_t> classifier_hidden = {32};

  double learning_rate = 0.005;  // paper's beta
  double alpha = 1.0;            // loss balance weight
  int epochs = 20;               // paper's m
  std::size_t batch_size = 16;   // paper's n
  std::uint64_t seed = 7;

  /// The paper's L_auto sums squared error over all cuboid cells; we use the
  /// per-element mean instead so the gradient scale is independent of the
  /// cuboid size (JOC dimensionality varies with sigma/tau). This changes
  /// only the effective learning-rate ratio between the losses, not the
  /// optimum.
  bool mean_reconstruction_loss = true;

  // ---- Numeric guards (fault tolerance, not part of Algorithm 1) ----
  /// Per-element cap on loss gradients before backprop; 0 disables.
  double gradient_clip = 5.0;
  /// Retry budget for diverging runs (NaN/Inf loss): each failed attempt
  /// reinitializes the weights and retries under this policy's backoff.
  /// max_attempts counts the first attempt, so the default allows 1 retry.
  fs::runtime::RetryPolicy retry = divergence_retry_defaults();
  /// Learning-rate multiplier applied on each divergence retry (the
  /// domain-specific part of "backing off" a trainer, on top of the
  /// policy's wall-clock backoff).
  double retry_lr_backoff = 0.5;
  /// Optional sink for divergence/retry reports (not serialized).
  fs::util::Diagnostics* diagnostics = nullptr;
  /// Optional governance: cancellation is checked and the deadline enforced
  /// (by truncating at an epoch boundary) during training. Not serialized.
  fs::runtime::ExecutionContext* context = nullptr;

  static fs::runtime::RetryPolicy divergence_retry_defaults() {
    fs::runtime::RetryPolicy policy;
    policy.max_attempts = 2;
    policy.backoff_ms = 0.0;  // divergence retries burn no wall-clock
    return policy;
  }
};

struct EpochStats {
  double reconstruction_loss = 0.0;  // mean over batches
  double classification_loss = 0.0;
};

/// Joint autoencoder + classifier (the paper's A and C).
class SupervisedAutoencoder {
 public:
  explicit SupervisedAutoencoder(const AutoencoderConfig& config);

  /// Trains on JOC rows `inputs` (one flattened cuboid per row) with binary
  /// labels. Returns per-epoch losses.
  ///
  /// Numeric robustness: gradients are clipped per element; a NaN/Inf loss
  /// aborts the attempt, and training restarts with fresh weights and a
  /// backed-off learning rate under config.retry. Exhausting the retry
  /// budget throws fs::ConvergenceError; each retry is reported into
  /// config.diagnostics when set.
  ///
  /// Governance (config.context): cancellation throws fs::CancelledError at
  /// the next epoch boundary; an expired deadline truncates training there
  /// instead — the partially trained model is kept (graceful degradation)
  /// and the truncation is reported into config.diagnostics.
  std::vector<EpochStats> train(const Matrix& inputs,
                                const std::vector<int>& labels);

  /// Presence-proximity features: the code-layer output h^(R).
  Matrix encode(const Matrix& inputs) const;

  /// Classifier probability per row (sigmoid of the head's logit).
  std::vector<double> predict_proba(const Matrix& inputs) const;

  /// Reconstruction of the input through the full autoencoder.
  Matrix reconstruct(const Matrix& inputs) const;

  std::size_t input_dim() const { return encoder_.in_dim(); }
  std::size_t code_dim() const { return encoder_.out_dim(); }

  const AutoencoderConfig& config() const { return config_; }

  /// Serializes the trained networks and config.
  void save(util::BinaryWriter& writer) const;
  static SupervisedAutoencoder load(util::BinaryReader& reader);

 private:
  SupervisedAutoencoder(AutoencoderConfig config, Mlp encoder, Mlp decoder,
                        Mlp classifier);

  /// One full training attempt; throws fs::NumericError on a non-finite
  /// loss.
  std::vector<EpochStats> train_once(const Matrix& inputs,
                                     const std::vector<int>& labels,
                                     double learning_rate);

  /// Re-draws all weights (salted seed) for a divergence retry.
  void reinitialize(std::uint64_t salt);

  AutoencoderConfig config_;
  Mlp encoder_;
  Mlp decoder_;
  Mlp classifier_;  // code -> hidden -> logit
};

}  // namespace fs::nn
