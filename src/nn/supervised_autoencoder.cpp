#include "nn/supervised_autoencoder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/failpoint.h"

namespace fs::nn {

namespace {

void clip_elements(Matrix& m, double clip) {
  if (clip <= 0.0) return;
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = std::clamp(m.data()[i], -clip, clip);
}

std::vector<std::size_t> decoder_dims(const std::vector<std::size_t>& enc) {
  return {enc.rbegin(), enc.rend()};
}

std::vector<std::size_t> classifier_dims(const AutoencoderConfig& cfg) {
  std::vector<std::size_t> dims;
  dims.push_back(cfg.encoder_dims.back());
  for (std::size_t h : cfg.classifier_hidden) dims.push_back(h);
  dims.push_back(1);  // logit
  return dims;
}

Mlp make_mlp(const std::vector<std::size_t>& dims, Activation output,
             util::Rng& rng) {
  return Mlp(dims, Activation::kRelu, output, rng);
}

}  // namespace

SupervisedAutoencoder::SupervisedAutoencoder(const AutoencoderConfig& config)
    : config_(config),
      encoder_([&] {
        if (config.encoder_dims.size() < 2)
          throw std::invalid_argument(
              "SupervisedAutoencoder: encoder_dims needs >= 2 entries");
        util::Rng rng(config.seed);
        return make_mlp(config.encoder_dims, Activation::kIdentity, rng);
      }()),
      decoder_([&] {
        util::Rng rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
        return make_mlp(decoder_dims(config.encoder_dims),
                        Activation::kIdentity, rng);
      }()),
      classifier_([&] {
        util::Rng rng(config.seed ^ 0xc2b2ae3d27d4eb4fULL);
        return make_mlp(classifier_dims(config), Activation::kIdentity, rng);
      }()) {}

SupervisedAutoencoder::SupervisedAutoencoder(AutoencoderConfig config,
                                             Mlp encoder, Mlp decoder,
                                             Mlp classifier)
    : config_(std::move(config)),
      encoder_(std::move(encoder)),
      decoder_(std::move(decoder)),
      classifier_(std::move(classifier)) {}

void SupervisedAutoencoder::save(util::BinaryWriter& writer) const {
  writer.tag("SAE1");
  writer.u64(config_.encoder_dims.size());
  for (std::size_t d : config_.encoder_dims) writer.u64(d);
  writer.u64(config_.classifier_hidden.size());
  for (std::size_t d : config_.classifier_hidden) writer.u64(d);
  writer.f64(config_.learning_rate);
  writer.f64(config_.alpha);
  writer.i64(config_.epochs);
  writer.u64(config_.batch_size);
  writer.u64(config_.seed);
  writer.u64(config_.mean_reconstruction_loss ? 1 : 0);
  writer.f64(config_.gradient_clip);
  writer.i64(config_.retry.max_attempts);
  writer.f64(config_.retry_lr_backoff);
  encoder_.save(writer);
  decoder_.save(writer);
  classifier_.save(writer);
}

SupervisedAutoencoder SupervisedAutoencoder::load(
    util::BinaryReader& reader) {
  reader.expect_tag("SAE1");
  AutoencoderConfig cfg;
  cfg.encoder_dims.resize(reader.u64());
  for (std::size_t& d : cfg.encoder_dims) d = reader.u64();
  cfg.classifier_hidden.resize(reader.u64());
  for (std::size_t& d : cfg.classifier_hidden) d = reader.u64();
  cfg.learning_rate = reader.f64();
  cfg.alpha = reader.f64();
  cfg.epochs = static_cast<int>(reader.i64());
  cfg.batch_size = reader.u64();
  cfg.seed = reader.u64();
  cfg.mean_reconstruction_loss = reader.u64() != 0;
  cfg.gradient_clip = reader.f64();
  cfg.retry.max_attempts = static_cast<int>(reader.i64());
  cfg.retry_lr_backoff = reader.f64();
  Mlp encoder = Mlp::load(reader);
  Mlp decoder = Mlp::load(reader);
  Mlp classifier = Mlp::load(reader);
  return SupervisedAutoencoder(std::move(cfg), std::move(encoder),
                               std::move(decoder), std::move(classifier));
}

void SupervisedAutoencoder::reinitialize(std::uint64_t salt) {
  const std::uint64_t seed = config_.seed ^ (salt * 0x2545f4914f6cdd1dULL);
  {
    util::Rng rng(seed);
    encoder_ = make_mlp(config_.encoder_dims, Activation::kIdentity, rng);
  }
  {
    util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
    decoder_ = make_mlp(decoder_dims(config_.encoder_dims),
                        Activation::kIdentity, rng);
  }
  {
    util::Rng rng(seed ^ 0xc2b2ae3d27d4eb4fULL);
    classifier_ = make_mlp(classifier_dims(config_), Activation::kIdentity,
                           rng);
  }
}

std::vector<EpochStats> SupervisedAutoencoder::train(
    const Matrix& inputs, const std::vector<int>& labels) {
  if (inputs.rows() != labels.size())
    throw std::invalid_argument("train: inputs/labels size mismatch");
  if (inputs.cols() != encoder_.in_dim())
    throw std::invalid_argument("train: input width != encoder input dim");
  if (inputs.rows() == 0)
    throw std::invalid_argument("train: empty training set");

  double learning_rate = config_.learning_rate;
  runtime::Retrier retrier(config_.retry);
  while (true) {
    try {
      return train_once(inputs, labels, learning_rate);
    } catch (const NumericError& e) {
      obs::metrics()
          .counter("nn.ae.divergence_retries_total", {},
                   "autoencoder restarts after numeric divergence")
          .add(1);
      if (!retrier.retry())
        throw ConvergenceError(
            std::string("SupervisedAutoencoder: training diverged after ") +
            std::to_string(retrier.failures()) + " attempts (" + e.what() +
            ")");
      learning_rate *= config_.retry_lr_backoff;
      if (config_.diagnostics != nullptr)
        config_.diagnostics->report(
            util::Severity::kWarning, ErrorCode::kNumeric, "autoencoder",
            std::string("divergent attempt ") +
                std::to_string(retrier.failures()) + " (" + e.what() +
                "); reinitializing with learning rate " +
                std::to_string(learning_rate));
      // Fresh weights: NaNs may already be inside the parameters.
      reinitialize(static_cast<std::uint64_t>(retrier.failures()));
    }
  }
}

std::vector<EpochStats> SupervisedAutoencoder::train_once(
    const Matrix& inputs, const std::vector<int>& labels,
    double learning_rate) {
  util::Rng shuffle_rng(config_.seed ^ 0xa5a5a5a5ULL);
  std::vector<std::size_t> order(inputs.rows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<EpochStats> history;
  const double elem_norm =
      config_.mean_reconstruction_loss
          ? 1.0 / static_cast<double>(inputs.cols())
          : 1.0;

  // Per-batch scratch, hoisted so steady-state iterations reuse capacity
  // instead of allocating: batch index list, gathered inputs, and the two
  // loss gradients. Forward/backward activations live inside the Mlps.
  std::vector<std::size_t> batch;
  Matrix x;
  Matrix d_recon;
  Matrix d_logit;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    if (config_.context != nullptr) {
      config_.context->throw_if_cancelled("nn.train");
      if (config_.context->deadline_expired()) {
        // Truncating at an epoch boundary keeps a usable (if under-trained)
        // model — degrade instead of throwing away the completed epochs.
        if (config_.diagnostics != nullptr)
          config_.diagnostics->report(
              util::Severity::kWarning, ErrorCode::kBudget, "autoencoder",
              "training truncated at epoch " + std::to_string(epoch) + "/" +
                  std::to_string(config_.epochs) + " (deadline exceeded)");
        break;
      }
    }
    obs::Span epoch_span("nn.ae.epoch");
    epoch_span.arg("epoch", static_cast<double>(epoch));
    shuffle_rng.shuffle(order);
    EpochStats stats;
    std::size_t batches = 0;
    // Squared gradient magnitude over the epoch; only computed when the
    // metrics registry is live so the default training path stays untouched.
    const bool want_grad_norm = obs::metrics_enabled();
    double grad_sq = 0.0;
    const auto squared_sum = [](const Matrix& m) {
      double s = 0.0;
      for (std::size_t i = 0; i < m.size(); ++i)
        s += m.data()[i] * m.data()[i];
      return s;
    };

    for (std::size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + config_.batch_size);
      batch.assign(order.begin() + start, order.begin() + end);
      const auto n = static_cast<double>(batch.size());

      inputs.gather_rows_into(batch, x);

      // ---- Forward through all three networks. ----
      // References into the networks' layer caches; valid until the next
      // forward on the same network.
      const Matrix& code = encoder_.forward(x);
      const Matrix& recon = decoder_.forward(code);
      const Matrix& logit = classifier_.forward(code);

      // ---- L_auto step (Algorithm 1 lines 11-14): update A with beta. ----
      d_recon = recon;
      d_recon -= x;
      const double batch_recon_loss = util::failpoint::corrupt(
          "nn.train.nan", Matrix::squared_difference(recon, x) / n *
                              elem_norm);
      stats.reconstruction_loss += batch_recon_loss;
      d_recon *= 2.0 / n * elem_norm;
      if (want_grad_norm) grad_sq += squared_sum(d_recon);
      clip_elements(d_recon, config_.gradient_clip);
      const Matrix& d_code_auto = decoder_.backward(d_recon);
      // Nothing reads dL/dx, so the encoder's bottom input-gradient GEMM
      // is skipped outright.
      encoder_.backward(d_code_auto, /*need_input_grad=*/false);
      decoder_.apply_gradients(learning_rate);
      encoder_.apply_gradients(learning_rate);

      // ---- L_cla step for the classifier (lines 15-18). ----
      // The head emits a logit; BCE-after-sigmoid gives the stable gradient
      // (sigmoid(logit) - y) / n.
      d_logit.resize(logit.rows(), 1);
      double batch_cla_loss = 0.0;
      for (std::size_t r = 0; r < logit.rows(); ++r) {
        const double p = 1.0 / (1.0 + std::exp(-logit(r, 0)));
        const double y = static_cast<double>(labels[batch[r]]);
        const double p_safe = std::clamp(p, 1e-12, 1.0 - 1e-12);
        batch_cla_loss +=
            -(y * std::log(p_safe) + (1.0 - y) * std::log(1.0 - p_safe)) / n;
        d_logit(r, 0) = (p - y) / n;
      }
      stats.classification_loss += batch_cla_loss;
      if (want_grad_norm) grad_sq += squared_sum(d_logit);
      clip_elements(d_logit, config_.gradient_clip);
      const Matrix& d_code_cla = classifier_.backward(d_logit);
      classifier_.apply_gradients(learning_rate);

      // ---- L_cla step for the encoder with alpha*beta (lines 19-22). ----
      encoder_.backward(d_code_cla, /*need_input_grad=*/false);
      encoder_.apply_gradients(config_.alpha * learning_rate);

      if (!std::isfinite(batch_recon_loss) || !std::isfinite(batch_cla_loss))
        throw NumericError(
            "SupervisedAutoencoder: non-finite loss at epoch " +
            std::to_string(epoch) + ", batch " + std::to_string(batches));

      ++batches;
    }

    if (batches > 0) {
      stats.reconstruction_loss /= static_cast<double>(batches);
      stats.classification_loss /= static_cast<double>(batches);
    }
    epoch_span.arg("recon_loss", stats.reconstruction_loss);
    epoch_span.arg("cla_loss", stats.classification_loss);
    obs::tracer().counter("nn.ae.recon_loss", stats.reconstruction_loss);
    obs::tracer().counter("nn.ae.cla_loss", stats.classification_loss);
    if (want_grad_norm) {
      const double grad_norm = std::sqrt(grad_sq);
      obs::tracer().counter("nn.ae.grad_norm", grad_norm);
      obs::MetricsRegistry& reg = obs::metrics();
      reg.gauge("nn.ae.recon_loss", {},
                "reconstruction loss of the latest epoch")
          .set(stats.reconstruction_loss);
      reg.gauge("nn.ae.cla_loss", {},
                "classification loss of the latest epoch")
          .set(stats.classification_loss);
      reg.gauge("nn.ae.grad_norm", {},
                "pre-clip gradient norm of the latest epoch")
          .set(grad_norm);
      reg.counter("nn.ae.epochs_total", {}, "autoencoder epochs trained")
          .add(1);
      reg.counter("nn.ae.batches_total", {},
                  "autoencoder mini-batches processed")
          .add(batches);
    }
    history.push_back(stats);
  }
  return history;
}

Matrix SupervisedAutoencoder::encode(const Matrix& inputs) const {
  return encoder_.infer(inputs);
}

std::vector<double> SupervisedAutoencoder::predict_proba(
    const Matrix& inputs) const {
  const Matrix logits = classifier_.infer(encoder_.infer(inputs));
  std::vector<double> probs(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r)
    probs[r] = 1.0 / (1.0 + std::exp(-logits(r, 0)));
  return probs;
}

Matrix SupervisedAutoencoder::reconstruct(const Matrix& inputs) const {
  return decoder_.infer(encoder_.infer(inputs));
}

}  // namespace fs::nn
