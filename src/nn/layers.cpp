#include "nn/layers.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fs::nn {

double activate(Activation act, double x) {
  switch (act) {
    case Activation::kIdentity: return x;
    case Activation::kRelu: return x > 0.0 ? x : 0.0;
    case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-x));
    case Activation::kTanh: return std::tanh(x);
  }
  throw std::logic_error("activate: unknown activation");
}

namespace {
/// Derivative with respect to pre-activation, given pre-activation `pre`.
double activation_grad(Activation act, double pre) {
  switch (act) {
    case Activation::kIdentity: return 1.0;
    case Activation::kRelu: return pre > 0.0 ? 1.0 : 0.0;
    case Activation::kSigmoid: {
      const double s = 1.0 / (1.0 + std::exp(-pre));
      return s * (1.0 - s);
    }
    case Activation::kTanh: {
      const double t = std::tanh(pre);
      return 1.0 - t * t;
    }
  }
  throw std::logic_error("activation_grad: unknown activation");
}
}  // namespace

Dense::Dense(std::size_t in_dim, std::size_t out_dim, Activation act,
             util::Rng& rng)
    : weights_(Matrix::he_init(out_dim, in_dim, rng)),
      bias_(out_dim, 0.0),
      activation_(act),
      grad_weights_(out_dim, in_dim),
      grad_bias_(out_dim, 0.0) {
  if (in_dim == 0 || out_dim == 0)
    throw std::invalid_argument("Dense: zero dimension");
}

Dense::Dense(Matrix weights, std::vector<double> bias, Activation act)
    : weights_(std::move(weights)),
      bias_(std::move(bias)),
      activation_(act),
      grad_weights_(weights_.rows(), weights_.cols()),
      grad_bias_(bias_.size(), 0.0) {
  if (weights_.rows() != bias_.size())
    throw std::invalid_argument("Dense: weights/bias shape mismatch");
  if (weights_.rows() == 0 || weights_.cols() == 0)
    throw std::invalid_argument("Dense: zero dimension");
}

void Dense::save(util::BinaryWriter& writer) const {
  writer.tag("DNSE");
  writer.u64(weights_.rows());
  writer.u64(weights_.cols());
  writer.u64(static_cast<std::uint64_t>(activation_));
  std::vector<double> flat(weights_.data(),
                           weights_.data() + weights_.size());
  writer.f64_vector(flat);
  writer.f64_vector(bias_);
}

Dense Dense::load(util::BinaryReader& reader) {
  reader.expect_tag("DNSE");
  const std::size_t rows = reader.u64();
  const std::size_t cols = reader.u64();
  const auto act = static_cast<Activation>(reader.u64());
  const std::vector<double> flat = reader.f64_vector();
  std::vector<double> bias = reader.f64_vector();
  if (flat.size() != rows * cols || bias.size() != rows)
    throw std::runtime_error("Dense::load: corrupted record");
  Matrix weights(rows, cols);
  std::copy(flat.begin(), flat.end(), weights.data());
  return Dense(std::move(weights), std::move(bias), act);
}

Matrix Dense::forward(const Matrix& input) {
  cached_input_ = input;
  cached_pre_ = matmul_nt(input, weights_);
  for (std::size_t r = 0; r < cached_pre_.rows(); ++r)
    for (std::size_t c = 0; c < cached_pre_.cols(); ++c)
      cached_pre_(r, c) += bias_[c];
  Matrix out = cached_pre_;
  for (std::size_t i = 0; i < out.size(); ++i)
    out.data()[i] = activate(activation_, out.data()[i]);
  return out;
}

Matrix Dense::infer(const Matrix& input) const {
  Matrix pre = matmul_nt(input, weights_);
  for (std::size_t r = 0; r < pre.rows(); ++r)
    for (std::size_t c = 0; c < pre.cols(); ++c) pre(r, c) += bias_[c];
  for (std::size_t i = 0; i < pre.size(); ++i)
    pre.data()[i] = activate(activation_, pre.data()[i]);
  return pre;
}

Matrix Dense::backward(const Matrix& d_output) {
  if (cached_pre_.rows() != d_output.rows() ||
      cached_pre_.cols() != d_output.cols())
    throw std::logic_error("Dense::backward: no matching forward cache");
  // dPre = dOut ∘ act'(pre)
  Matrix d_pre = d_output;
  for (std::size_t i = 0; i < d_pre.size(); ++i)
    d_pre.data()[i] *= activation_grad(activation_, cached_pre_.data()[i]);
  // Accumulate parameter gradients.
  grad_weights_ += matmul_tn(d_pre, cached_input_);
  for (std::size_t r = 0; r < d_pre.rows(); ++r)
    for (std::size_t c = 0; c < d_pre.cols(); ++c)
      grad_bias_[c] += d_pre(r, c);
  // dInput = dPre * W
  return matmul_nn(d_pre, weights_);
}

void Dense::apply_gradients(double learning_rate) {
  for (std::size_t i = 0; i < weights_.size(); ++i)
    weights_.data()[i] -= learning_rate * grad_weights_.data()[i];
  for (std::size_t c = 0; c < bias_.size(); ++c)
    bias_[c] -= learning_rate * grad_bias_[c];
  clear_gradients();
}

void Dense::clear_gradients() {
  grad_weights_.fill(0.0);
  grad_bias_.assign(grad_bias_.size(), 0.0);
}

Mlp::Mlp(const std::vector<std::size_t>& dims, Activation hidden,
         Activation output, util::Rng& rng) {
  if (dims.size() < 2)
    throw std::invalid_argument("Mlp: need at least input and output dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    const bool last = (i + 2 == dims.size());
    layers_.emplace_back(dims[i], dims[i + 1], last ? output : hidden, rng);
  }
}

Mlp::Mlp(std::vector<Dense> layers) : layers_(std::move(layers)) {
  if (layers_.empty())
    throw std::invalid_argument("Mlp: need at least one layer");
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i)
    if (layers_[i].out_dim() != layers_[i + 1].in_dim())
      throw std::invalid_argument("Mlp: layer dimension mismatch");
}

void Mlp::save(util::BinaryWriter& writer) const {
  writer.tag("MLP0");
  writer.u64(layers_.size());
  for (const Dense& layer : layers_) layer.save(writer);
}

Mlp Mlp::load(util::BinaryReader& reader) {
  reader.expect_tag("MLP0");
  const std::size_t count = reader.u64();
  if (count == 0 || count > 1024)
    throw std::runtime_error("Mlp::load: implausible layer count");
  std::vector<Dense> layers;
  layers.reserve(count);
  for (std::size_t i = 0; i < count; ++i) layers.push_back(Dense::load(reader));
  return Mlp(std::move(layers));
}

Matrix Mlp::forward(const Matrix& input) {
  Matrix current = input;
  for (Dense& layer : layers_) current = layer.forward(current);
  return current;
}

Matrix Mlp::infer(const Matrix& input) const {
  Matrix current = input;
  for (const Dense& layer : layers_) current = layer.infer(current);
  return current;
}

Matrix Mlp::backward(const Matrix& d_output) {
  Matrix current = d_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    current = it->backward(current);
  return current;
}

void Mlp::apply_gradients(double learning_rate) {
  for (Dense& layer : layers_) layer.apply_gradients(learning_rate);
}

void Mlp::clear_gradients() {
  for (Dense& layer : layers_) layer.clear_gradients();
}

}  // namespace fs::nn
