#include "nn/layers.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "kern/kern.h"

namespace fs::nn {

double activate(Activation act, double x) {
  switch (act) {
    case Activation::kIdentity: return x;
    case Activation::kRelu: return x > 0.0 ? x : 0.0;
    case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-x));
    case Activation::kTanh: return std::tanh(x);
  }
  throw std::logic_error("activate: unknown activation");
}

namespace {

/// The kernel epilogue computing act(pre + bias) for this activation.
kern::Epilogue epilogue_for(Activation act) {
  switch (act) {
    case Activation::kIdentity: return kern::Epilogue::kBias;
    case Activation::kRelu: return kern::Epilogue::kBiasRelu;
    case Activation::kSigmoid: return kern::Epilogue::kBiasSigmoid;
    case Activation::kTanh: return kern::Epilogue::kBiasTanh;
  }
  throw std::logic_error("epilogue_for: unknown activation");
}

/// Derivative with respect to pre-activation, expressed through the layer
/// OUTPUT `out = act(pre)`. Numerically identical to the pre-activation
/// forms (sigmoid'/tanh' recompute the same value the forward pass already
/// produced), but needs only one cached matrix.
double activation_grad_from_output(Activation act, double out) {
  switch (act) {
    case Activation::kIdentity: return 1.0;
    case Activation::kRelu: return out > 0.0 ? 1.0 : 0.0;
    case Activation::kSigmoid: return out * (1.0 - out);
    case Activation::kTanh: return 1.0 - out * out;
  }
  throw std::logic_error("activation_grad_from_output: unknown activation");
}

}  // namespace

Dense::Dense(std::size_t in_dim, std::size_t out_dim, Activation act,
             util::Rng& rng)
    : weights_(Matrix::he_init(out_dim, in_dim, rng)),
      bias_(out_dim, 0.0),
      activation_(act),
      grad_weights_(out_dim, in_dim),
      grad_bias_(out_dim, 0.0) {
  if (in_dim == 0 || out_dim == 0)
    throw std::invalid_argument("Dense: zero dimension");
}

Dense::Dense(Matrix weights, std::vector<double> bias, Activation act)
    : weights_(std::move(weights)),
      bias_(std::move(bias)),
      activation_(act),
      grad_weights_(weights_.rows(), weights_.cols()),
      grad_bias_(bias_.size(), 0.0) {
  if (weights_.rows() != bias_.size())
    throw std::invalid_argument("Dense: weights/bias shape mismatch");
  if (weights_.rows() == 0 || weights_.cols() == 0)
    throw std::invalid_argument("Dense: zero dimension");
}

void Dense::save(util::BinaryWriter& writer) const {
  writer.tag("DNSE");
  writer.u64(weights_.rows());
  writer.u64(weights_.cols());
  writer.u64(static_cast<std::uint64_t>(activation_));
  std::vector<double> flat(weights_.data(),
                           weights_.data() + weights_.size());
  writer.f64_vector(flat);
  writer.f64_vector(bias_);
}

Dense Dense::load(util::BinaryReader& reader) {
  reader.expect_tag("DNSE");
  const std::size_t rows = reader.u64();
  const std::size_t cols = reader.u64();
  const auto act = static_cast<Activation>(reader.u64());
  const std::vector<double> flat = reader.f64_vector();
  std::vector<double> bias = reader.f64_vector();
  if (flat.size() != rows * cols || bias.size() != rows)
    throw std::runtime_error("Dense::load: corrupted record");
  Matrix weights(rows, cols);
  std::copy(flat.begin(), flat.end(), weights.data());
  return Dense(std::move(weights), std::move(bias), act);
}

const Matrix& Dense::forward(const Matrix& input) {
  if (input.cols() != in_dim())
    throw std::invalid_argument("Dense::forward: input width mismatch");
  cached_input_ = input;  // capacity-reusing copy
  cached_output_.resize(input.rows(), out_dim());
  // One fused kernel: GEMM against W^T with bias+activation applied during
  // tile writeback — no second pass over the batch.
  kern::gemm_nt(input.rows(), out_dim(), in_dim(), input.data(),
                input.cols(), weights_.data(), weights_.cols(),
                cached_output_.data(), out_dim(), /*accumulate=*/false,
                epilogue_for(activation_), bias_.data());
  return cached_output_;
}

Matrix Dense::infer(const Matrix& input) const {
  if (input.cols() != in_dim())
    throw std::invalid_argument("Dense::infer: input width mismatch");
  Matrix out(input.rows(), out_dim());
  kern::gemm_nt(input.rows(), out_dim(), in_dim(), input.data(),
                input.cols(), weights_.data(), weights_.cols(), out.data(),
                out_dim(), /*accumulate=*/false, epilogue_for(activation_),
                bias_.data());
  return out;
}

void Dense::backward_into(const Matrix& d_output, Matrix* d_input) {
  if (cached_output_.rows() != d_output.rows() ||
      cached_output_.cols() != d_output.cols())
    throw std::logic_error("Dense::backward: no matching forward cache");
  // dPre = dOut ∘ act'(out)
  d_pre_ = d_output;
  for (std::size_t i = 0; i < d_pre_.size(); ++i)
    d_pre_.data()[i] *=
        activation_grad_from_output(activation_, cached_output_.data()[i]);
  // Parameter gradients accumulate directly inside the kernel (C += A^T B)
  // — no temporary gradient matrix, no second pass.
  matmul_tn_into(d_pre_, cached_input_, grad_weights_, /*accumulate=*/true);
  for (std::size_t r = 0; r < d_pre_.rows(); ++r)
    for (std::size_t c = 0; c < d_pre_.cols(); ++c)
      grad_bias_[c] += d_pre_(r, c);
  // dInput = dPre * W — skipped when nobody reads it (bottom layers).
  if (d_input != nullptr) matmul_nn_into(d_pre_, weights_, *d_input);
}

Matrix Dense::backward(const Matrix& d_output) {
  Matrix d_input;
  backward_into(d_output, &d_input);
  return d_input;
}

void Dense::apply_gradients(double learning_rate) {
  for (std::size_t i = 0; i < weights_.size(); ++i)
    weights_.data()[i] -= learning_rate * grad_weights_.data()[i];
  for (std::size_t c = 0; c < bias_.size(); ++c)
    bias_[c] -= learning_rate * grad_bias_[c];
  clear_gradients();
}

void Dense::clear_gradients() {
  grad_weights_.fill(0.0);
  grad_bias_.assign(grad_bias_.size(), 0.0);
}

Mlp::Mlp(const std::vector<std::size_t>& dims, Activation hidden,
         Activation output, util::Rng& rng) {
  if (dims.size() < 2)
    throw std::invalid_argument("Mlp: need at least input and output dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    const bool last = (i + 2 == dims.size());
    layers_.emplace_back(dims[i], dims[i + 1], last ? output : hidden, rng);
  }
  d_input_.resize(layers_.size());
}

Mlp::Mlp(std::vector<Dense> layers) : layers_(std::move(layers)) {
  if (layers_.empty())
    throw std::invalid_argument("Mlp: need at least one layer");
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i)
    if (layers_[i].out_dim() != layers_[i + 1].in_dim())
      throw std::invalid_argument("Mlp: layer dimension mismatch");
  d_input_.resize(layers_.size());
}

void Mlp::save(util::BinaryWriter& writer) const {
  writer.tag("MLP0");
  writer.u64(layers_.size());
  for (const Dense& layer : layers_) layer.save(writer);
}

Mlp Mlp::load(util::BinaryReader& reader) {
  reader.expect_tag("MLP0");
  const std::size_t count = reader.u64();
  if (count == 0 || count > 1024)
    throw std::runtime_error("Mlp::load: implausible layer count");
  std::vector<Dense> layers;
  layers.reserve(count);
  for (std::size_t i = 0; i < count; ++i) layers.push_back(Dense::load(reader));
  return Mlp(std::move(layers));
}

const Matrix& Mlp::forward(const Matrix& input) {
  // Activations chain through each layer's cache; no intermediate copies
  // beyond the per-layer input cache backward() needs anyway.
  const Matrix* current = &input;
  for (Dense& layer : layers_) current = &layer.forward(*current);
  return *current;
}

Matrix Mlp::infer(const Matrix& input) const {
  Matrix current = input;
  for (const Dense& layer : layers_) current = layer.infer(current);
  return current;
}

const Matrix& Mlp::backward(const Matrix& d_output, bool need_input_grad) {
  if (!need_input_grad) d_input_[0].resize(0, 0);  // never return stale bits
  const Matrix* current = &d_output;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    const bool need = i > 0 || need_input_grad;
    layers_[i].backward_into(*current, need ? &d_input_[i] : nullptr);
    current = &d_input_[i];
  }
  return d_input_[0];
}

void Mlp::apply_gradients(double learning_rate) {
  for (Dense& layer : layers_) layer.apply_gradients(learning_rate);
}

void Mlp::clear_gradients() {
  for (Dense& layer : layers_) layer.clear_gradients();
}

}  // namespace fs::nn
