#include "nn/matrix.h"

#include <cmath>
#include <cstring>

#include "par/par.h"

namespace fs::nn {

namespace {

/// Output rows are independent in every GEMM variant below, so they fan
/// out across the pool. The grain is sized from the per-row flop count
/// alone (never the thread count): small products — autoencoder
/// mini-batches — collapse to a single chunk and run inline, paying
/// nothing; the wide batch-encode products split into many chunks. Each
/// output element accumulates over k in ascending order in both the
/// sequential and parallel paths, so results are bit-identical either way.
par::ParallelOptions gemm_options(std::size_t per_row_ops, const char* what) {
  par::ParallelOptions options;
  options.what = what;
  options.grain = par::grain_for(per_row_ops, std::size_t{1} << 17);
  return options;
}

}  // namespace

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols())
      throw std::invalid_argument("Matrix::from_rows: ragged rows");
    std::memcpy(m.row(r), rows[r].data(), m.cols() * sizeof(double));
  }
  return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("Matrix::operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("Matrix::operator-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::he_init(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  const double stddev = std::sqrt(2.0 / static_cast<double>(cols));
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = rng.normal(0.0, stddev);
  return m;
}

void Matrix::set_row(std::size_t dst_row, const Matrix& src,
                     std::size_t src_row) {
  if (cols_ != src.cols_)
    throw std::invalid_argument("Matrix::set_row: width mismatch");
  std::memcpy(row(dst_row), src.row(src_row), cols_ * sizeof(double));
}

Matrix Matrix::gather_rows(const std::vector<std::size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i)
    out.set_row(i, *this, indices[i]);
  return out;
}

double Matrix::squared_difference(const Matrix& x, const Matrix& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols())
    throw std::invalid_argument("Matrix::squared_difference: shape mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x.data()[i] - y.data()[i];
    total += d * d;
  }
  return total;
}

Matrix matmul_nn(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows())
    throw std::invalid_argument("matmul_nn: inner dimension mismatch");
  Matrix c(a.rows(), b.cols());
  // i-k-j order: streams through b and c rows sequentially.
  par::parallel_for(
      a.rows(), gemm_options(a.cols() * b.cols(), "nn.matmul_nn"),
      [&](std::size_t i) {
        double* crow = c.row(i);
        const double* arow = a.row(i);
        for (std::size_t k = 0; k < a.cols(); ++k) {
          const double aik = arow[k];
          if (aik == 0.0) continue;
          const double* brow = b.row(k);
          for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
        }
      });
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols())
    throw std::invalid_argument("matmul_nt: inner dimension mismatch");
  Matrix c(a.rows(), b.rows());
  // Dot products of contiguous rows: ideal locality.
  par::parallel_for(
      a.rows(), gemm_options(a.cols() * b.rows(), "nn.matmul_nt"),
      [&](std::size_t i) {
        const double* arow = a.row(i);
        double* crow = c.row(i);
        for (std::size_t j = 0; j < b.rows(); ++j) {
          const double* brow = b.row(j);
          double acc = 0.0;
          for (std::size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
          crow[j] = acc;
        }
      });
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows())
    throw std::invalid_argument("matmul_tn: inner dimension mismatch");
  Matrix c(a.cols(), b.cols());
  // Row-parallel orientation: each output row i accumulates over k in
  // ascending order (the same per-element order as a k-major sweep), so
  // the restructuring is invisible in the bits.
  par::parallel_for(
      a.cols(), gemm_options(a.rows() * b.cols(), "nn.matmul_tn"),
      [&](std::size_t i) {
        double* crow = c.row(i);
        for (std::size_t k = 0; k < a.rows(); ++k) {
          const double aki = a(k, i);
          if (aki == 0.0) continue;
          const double* brow = b.row(k);
          for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
        }
      });
  return c;
}

}  // namespace fs::nn
