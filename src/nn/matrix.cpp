#include "nn/matrix.h"

#include <cmath>
#include <cstring>
#include <string>

#include "kern/kern.h"

namespace fs::nn {

namespace {

void check_into_shape(const Matrix& c, std::size_t rows, std::size_t cols,
                      bool accumulate, const char* what) {
  if (accumulate && (c.rows() != rows || c.cols() != cols))
    throw std::invalid_argument(std::string(what) +
                                ": accumulate into mismatched shape");
}

}  // namespace

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols())
      throw std::invalid_argument("Matrix::from_rows: ragged rows");
    std::memcpy(m.row(r), rows[r].data(), m.cols() * sizeof(double));
  }
  return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("Matrix::operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("Matrix::operator-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::he_init(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  const double stddev = std::sqrt(2.0 / static_cast<double>(cols));
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = rng.normal(0.0, stddev);
  return m;
}

void Matrix::set_row(std::size_t dst_row, const Matrix& src,
                     std::size_t src_row) {
  if (cols_ != src.cols_)
    throw std::invalid_argument("Matrix::set_row: width mismatch");
  std::memcpy(row(dst_row), src.row(src_row), cols_ * sizeof(double));
}

Matrix Matrix::gather_rows(const std::vector<std::size_t>& indices) const {
  Matrix out;
  gather_rows_into(indices, out);
  return out;
}

void Matrix::gather_rows_into(const std::vector<std::size_t>& indices,
                              Matrix& out) const {
  out.resize(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i)
    out.set_row(i, *this, indices[i]);
}

double Matrix::squared_difference(const Matrix& x, const Matrix& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols())
    throw std::invalid_argument("Matrix::squared_difference: shape mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x.data()[i] - y.data()[i];
    total += d * d;
  }
  return total;
}

// The three GEMM variants delegate to fs::kern, which blocks, packs, and
// fans MC row-blocks across fs::par deterministically (see kern.h).

void matmul_nn_into(const Matrix& a, const Matrix& b, Matrix& c,
                    bool accumulate) {
  if (a.cols() != b.rows())
    throw std::invalid_argument("matmul_nn: inner dimension mismatch");
  check_into_shape(c, a.rows(), b.cols(), accumulate, "matmul_nn_into");
  if (!accumulate) c.resize(a.rows(), b.cols());
  kern::gemm_nn(a.rows(), b.cols(), a.cols(), a.data(), a.cols(), b.data(),
                b.cols(), c.data(), b.cols(), accumulate);
}

void matmul_nt_into(const Matrix& a, const Matrix& b, Matrix& c,
                    bool accumulate) {
  if (a.cols() != b.cols())
    throw std::invalid_argument("matmul_nt: inner dimension mismatch");
  check_into_shape(c, a.rows(), b.rows(), accumulate, "matmul_nt_into");
  if (!accumulate) c.resize(a.rows(), b.rows());
  kern::gemm_nt(a.rows(), b.rows(), a.cols(), a.data(), a.cols(), b.data(),
                b.cols(), c.data(), b.rows(), accumulate);
}

void matmul_tn_into(const Matrix& a, const Matrix& b, Matrix& c,
                    bool accumulate) {
  if (a.rows() != b.rows())
    throw std::invalid_argument("matmul_tn: inner dimension mismatch");
  check_into_shape(c, a.cols(), b.cols(), accumulate, "matmul_tn_into");
  if (!accumulate) c.resize(a.cols(), b.cols());
  kern::gemm_tn(a.cols(), b.cols(), a.rows(), a.data(), a.cols(), b.data(),
                b.cols(), c.data(), b.cols(), accumulate);
}

Matrix matmul_nn(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_nn_into(a, b, c);
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_nt_into(a, b, c);
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_tn_into(a, b, c);
  return c;
}

}  // namespace fs::nn
