#include "scenario/options.h"

#include <cmath>
#include <sstream>

#include "util/error.h"

namespace fs::scenario {

namespace json = obs::json;

OptionReader::OptionReader(const json::Value& node, std::string context)
    : context_(std::move(context)) {
  if (!node.is_object())
    throw ParseError("scenario config: " + context_ + " must be an object");
  object_ = &node.as_object();
}

void OptionReader::fail(const std::string& message) const {
  throw ParseError("scenario config: " + context_ + ": " + message);
}

bool OptionReader::has(const std::string& key) const {
  return object_->find(key) != object_->end();
}

const json::Value& OptionReader::value(const std::string& key) {
  consumed_.insert(key);
  return object_->at(key);
}

std::string OptionReader::get_string(const std::string& key,
                                     const std::string& default_value) {
  consumed_.insert(key);
  if (!has(key)) return default_value;
  const json::Value& v = value(key);
  if (!v.is_string()) fail("'" + key + "' must be a string");
  return v.as_string();
}

std::string OptionReader::get_enum(const std::string& key,
                                   const std::string& default_value,
                                   const std::vector<std::string>& allowed) {
  const std::string got = get_string(key, default_value);
  for (const std::string& option : allowed)
    if (got == option) return got;
  std::ostringstream oss;
  oss << "'" << key << "' must be one of {";
  for (std::size_t i = 0; i < allowed.size(); ++i)
    oss << (i ? ", " : "") << allowed[i];
  oss << "}, got '" << got << "'";
  fail(oss.str());
}

double OptionReader::get_number(const std::string& key, double default_value,
                                double lo, double hi) {
  consumed_.insert(key);
  if (!has(key)) return default_value;
  const json::Value& v = value(key);
  if (!v.is_number()) fail("'" + key + "' must be a number");
  const double got = v.as_number();
  if (!(got >= lo && got <= hi)) {
    std::ostringstream oss;
    oss << "'" << key << "' = " << got << " outside [" << lo << ", " << hi
        << "]";
    fail(oss.str());
  }
  return got;
}

long long OptionReader::get_int(const std::string& key,
                                long long default_value, long long lo,
                                long long hi) {
  consumed_.insert(key);
  if (!has(key)) return default_value;
  const json::Value& v = value(key);
  if (!v.is_number()) fail("'" + key + "' must be a number");
  const double got = v.as_number();
  if (got != std::floor(got)) fail("'" + key + "' must be an integer");
  const auto i = static_cast<long long>(got);
  if (i < lo || i > hi) {
    std::ostringstream oss;
    oss << "'" << key << "' = " << i << " outside [" << lo << ", " << hi
        << "]";
    fail(oss.str());
  }
  return i;
}

bool OptionReader::get_bool(const std::string& key, bool default_value) {
  consumed_.insert(key);
  if (!has(key)) return default_value;
  const json::Value& v = value(key);
  if (!v.is_bool()) fail("'" + key + "' must be a boolean");
  return v.as_bool();
}

const json::Array* OptionReader::get_array(const std::string& key) {
  consumed_.insert(key);
  if (!has(key)) return nullptr;
  const json::Value& v = value(key);
  if (!v.is_array()) fail("'" + key + "' must be an array");
  return &v.as_array();
}

const json::Value* OptionReader::get_object(const std::string& key) {
  consumed_.insert(key);
  if (!has(key)) return nullptr;
  const json::Value& v = value(key);
  if (!v.is_object()) fail("'" + key + "' must be an object");
  return &v;
}

void OptionReader::finish() const {
  std::vector<std::string> unknown;
  for (const auto& [key, v] : *object_) {
    (void)v;
    if (consumed_.find(key) == consumed_.end()) unknown.push_back(key);
  }
  if (unknown.empty()) return;
  std::ostringstream oss;
  oss << "unknown key" << (unknown.size() > 1 ? "s" : "") << " ";
  for (std::size_t i = 0; i < unknown.size(); ++i)
    oss << (i ? ", " : "") << "'" << unknown[i] << "'";
  oss << "; accepted keys: {";
  bool first = true;
  for (const std::string& key : consumed_) {
    oss << (first ? "" : ", ") << key;
    first = false;
  }
  oss << "}";
  fail(oss.str());
}

}  // namespace fs::scenario
