// Declarative scenario configuration: the attack x defense x world matrix.
//
// A scenario config is one JSON document declaring up to five axes (world,
// defense, attack, model, dynamics); the runner executes the full
// cross-product. Every axis element is a small typed spec parsed through
// OptionReader, so unknown keys and out-of-range values are rejected with
// fs::ParseError before anything runs. A missing axis defaults to a single
// identity element, so "grid" degenerates gracefully to a single cell.
//
// Grid expansion order is fixed (world-major, then defense, attack, model,
// dynamics innermost) and cell ids are derived from axis labels, so the
// same config always produces the same cells in the same order — the
// property scenario_diff and the golden matrix slice pin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "block/candidate_gen.h"
#include "obs/json.h"

namespace fs::scenario {

/// Which synthetic world a cell runs against. `preset` names an
/// eval::bench_preset; the override fields shrink or reshape it (0 / -1 =
/// keep the preset's value) so CI slices can run on sub-second worlds.
struct WorldSpec {
  std::string preset = "tiny";  // tiny | gowalla | brightkite
  std::string label;            // derived from preset+overrides when empty
  std::size_t users = 0;        // 0 = preset default
  std::size_t pois = 0;         // 0 = preset default
  int weeks = 0;                // 0 = preset default
  std::uint64_t seed_offset = 0;
  double cyber_fraction = -1.0;  // cyber edges / all edges; -1 = preset
};

enum class DefenseMechanism { kNone, kHiding, kBlurIn, kBlurCross,
                              kFriendGuard };

/// One point on the defense axis. `rate` is the perturbation budget
/// (hidden/blurred fraction; FriendGuard's budget). The blur mechanisms
/// build the DEFENDER's own quadtree at `grid_sigma` — deliberately
/// independent of the attacker's division sigma.
struct DefenseSpec {
  DefenseMechanism mechanism = DefenseMechanism::kNone;
  std::string label;
  double rate = 0.0;
  std::size_t grid_sigma = 120;
};

/// Attack-execution variant: candidate blocking, the quantized KNN
/// distance path, sharded execution, and the thread count (0 = inherit the
/// runner's ambient thread setting).
struct AttackSpec {
  block::BlockingMode blocking = block::BlockingMode::kAuto;
  std::string label;
  bool knn_quantize = false;
  std::size_t shards = 0;
  std::size_t threads = 0;
};

/// Candidate-predicate variants: kPreset keeps the preset's blocking
/// gate; kCooccur restricts candidates to co-occurring pairs only
/// (hop_expansion = 0); kCooccurHops re-enables 2-hop expansion.
enum class CandidatePredicate { kPreset, kCooccur, kCooccurHops };

/// Model hyper-parameter overrides (0 / -1 = keep the preset's value).
struct ModelSpec {
  std::string label;
  double tau_days = 0.0;    // 0 = preset
  std::size_t sigma = 0;    // 0 = preset
  int slot_tolerance = -1;  // -1 = preset
  CandidatePredicate predicate = CandidatePredicate::kPreset;
};

/// Temporal dynamics: fraction of friendships whose shared evidence is
/// active in only half the observation window (forming / dissolving ties).
struct DynamicsSpec {
  std::string label;
  double drift = 0.0;
};

/// Per-metric tolerance bands used by scenario_diff: |base - current| above
/// the band fails the diff. Defaults absorb seed-free nondeterminism
/// sources (toolchain FP differences) while catching real quality drift.
struct ToleranceBands {
  double f1 = 0.08;
  double precision = 0.10;
  double recall = 0.10;
  double auc = 0.08;
  double precision_at_k = 0.12;
};

struct ScenarioConfig {
  std::string name = "scenario";
  std::uint64_t seed = 7;
  std::vector<WorldSpec> worlds;
  std::vector<DefenseSpec> defenses;
  std::vector<AttackSpec> attacks;
  std::vector<ModelSpec> models;
  std::vector<DynamicsSpec> dynamics;
  ToleranceBands tolerance;
};

/// One cell of the expanded grid: a full coordinate plus its derived id.
struct ScenarioCell {
  std::size_t index = 0;
  WorldSpec world;
  DefenseSpec defense;
  AttackSpec attack;
  ModelSpec model;
  DynamicsSpec dynamics;
  std::string id;  // "world / defense / attack / model / dynamics" labels
};

/// The schema tag + version every scenario config carries.
inline constexpr const char* kConfigSchema = "fs-scenario-config";
inline constexpr int kConfigSchemaVersion = 1;

/// Parses and validates a scenario config document. Unknown keys,
/// type mismatches, out-of-range values, wrong schema tags and empty axes
/// all throw fs::ParseError naming the offending key and context.
ScenarioConfig parse_scenario_config(const obs::json::Value& doc);

/// Convenience: parse from raw JSON text.
ScenarioConfig parse_scenario_config_text(const std::string& text);

/// Serializes the config in normalized form (every key explicit, labels
/// resolved). parse(to_json(c)) round-trips to an identical config.
obs::json::Value scenario_config_to_json(const ScenarioConfig& config);

/// Expands the axis cross-product in the fixed order (world-major,
/// dynamics innermost). size() == product of the axis cardinalities.
std::vector<ScenarioCell> expand_grid(const ScenarioConfig& config);

/// Derived axis labels (returned verbatim when explicitly set).
std::string world_label(const WorldSpec& spec);
std::string defense_label(const DefenseSpec& spec);
std::string attack_label(const AttackSpec& spec);
std::string model_label(const ModelSpec& spec);
std::string dynamics_label(const DynamicsSpec& spec);

/// FNV digest of the normalized config dump: two configs fingerprint
/// equal iff they expand to the same grid with the same tolerances.
std::string config_fingerprint(const ScenarioConfig& config);

/// FNV digest of one cell's coordinate (config seed + all five specs) —
/// stable across runs, thread counts, and host machines.
std::string cell_fingerprint(const ScenarioConfig& config,
                             const ScenarioCell& cell);

/// Enum <-> string helpers shared by parser, labels, and the artifact.
std::string mechanism_name(DefenseMechanism mechanism);
std::string blocking_name(block::BlockingMode mode);
std::string predicate_name(CandidatePredicate predicate);

}  // namespace fs::scenario
