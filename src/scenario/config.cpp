#include "scenario/config.h"

#include <cstdio>
#include <limits>
#include <sstream>

#include "eval/digest.h"
#include "scenario/options.h"
#include "util/error.h"

namespace fs::scenario {

namespace json = obs::json;

namespace {

std::string fmt2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

std::string fmtg(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

DefenseMechanism mechanism_from(const std::string& name) {
  if (name == "none") return DefenseMechanism::kNone;
  if (name == "hiding") return DefenseMechanism::kHiding;
  if (name == "blur-in") return DefenseMechanism::kBlurIn;
  if (name == "blur-cross") return DefenseMechanism::kBlurCross;
  return DefenseMechanism::kFriendGuard;
}

block::BlockingMode blocking_from(const std::string& name) {
  if (name == "on") return block::BlockingMode::kOn;
  if (name == "off") return block::BlockingMode::kOff;
  return block::BlockingMode::kAuto;
}

CandidatePredicate predicate_from(const std::string& name) {
  if (name == "cooccur") return CandidatePredicate::kCooccur;
  if (name == "cooccur+hops") return CandidatePredicate::kCooccurHops;
  return CandidatePredicate::kPreset;
}

WorldSpec parse_world(const json::Value& node, const std::string& context) {
  OptionReader reader(node, context);
  WorldSpec spec;
  spec.preset = reader.get_enum("preset", "tiny",
                                {"tiny", "gowalla", "brightkite"});
  spec.label = reader.get_string("label", "");
  spec.users = static_cast<std::size_t>(
      reader.get_int("users", 0, 0, 1'000'000));
  spec.pois =
      static_cast<std::size_t>(reader.get_int("pois", 0, 0, 10'000'000));
  spec.weeks = static_cast<int>(reader.get_int("weeks", 0, 0, 520));
  spec.seed_offset = static_cast<std::uint64_t>(
      reader.get_int("seed_offset", 0, 0, 1'000'000'000));
  spec.cyber_fraction = reader.get_number("cyber_fraction", -1.0, -1.0, 1.0);
  reader.finish();
  return spec;
}

DefenseSpec parse_defense(const json::Value& node,
                          const std::string& context) {
  OptionReader reader(node, context);
  DefenseSpec spec;
  spec.mechanism = mechanism_from(reader.get_enum(
      "mechanism", "none",
      {"none", "hiding", "blur-in", "blur-cross", "friendguard"}));
  spec.label = reader.get_string("label", "");
  spec.rate = reader.get_number("rate", 0.0, 0.0, 1.0);
  spec.grid_sigma = static_cast<std::size_t>(
      reader.get_int("grid_sigma", 120, 1, 100'000));
  reader.finish();
  return spec;
}

AttackSpec parse_attack(const json::Value& node, const std::string& context) {
  OptionReader reader(node, context);
  AttackSpec spec;
  spec.blocking =
      blocking_from(reader.get_enum("blocking", "auto", {"on", "off",
                                                         "auto"}));
  spec.label = reader.get_string("label", "");
  spec.knn_quantize = reader.get_bool("knn_quantize", false);
  spec.shards =
      static_cast<std::size_t>(reader.get_int("shards", 0, 0, 4096));
  spec.threads =
      static_cast<std::size_t>(reader.get_int("threads", 0, 0, 1024));
  reader.finish();
  return spec;
}

ModelSpec parse_model(const json::Value& node, const std::string& context) {
  OptionReader reader(node, context);
  ModelSpec spec;
  spec.label = reader.get_string("label", "");
  spec.tau_days = reader.get_number("tau_days", 0.0, 0.0, 365.0);
  spec.sigma =
      static_cast<std::size_t>(reader.get_int("sigma", 0, 0, 100'000));
  spec.slot_tolerance =
      static_cast<int>(reader.get_int("slot_tolerance", -1, -1, 64));
  spec.predicate = predicate_from(reader.get_enum(
      "predicate", "preset", {"preset", "cooccur", "cooccur+hops"}));
  reader.finish();
  return spec;
}

DynamicsSpec parse_dynamics(const json::Value& node,
                            const std::string& context) {
  OptionReader reader(node, context);
  DynamicsSpec spec;
  spec.label = reader.get_string("label", "");
  spec.drift = reader.get_number("drift", 0.0, 0.0, 1.0);
  reader.finish();
  return spec;
}

ToleranceBands parse_tolerance(const json::Value& node,
                               const std::string& context) {
  OptionReader reader(node, context);
  ToleranceBands bands;
  bands.f1 = reader.get_number("f1", bands.f1, 0.0, 1.0);
  bands.precision = reader.get_number("precision", bands.precision, 0.0, 1.0);
  bands.recall = reader.get_number("recall", bands.recall, 0.0, 1.0);
  bands.auc = reader.get_number("auc", bands.auc, 0.0, 1.0);
  bands.precision_at_k =
      reader.get_number("precision_at_k", bands.precision_at_k, 0.0, 1.0);
  reader.finish();
  return bands;
}

/// Parses one axis array into specs; a missing axis becomes {Spec{}}.
template <typename Spec, typename ParseFn>
std::vector<Spec> parse_axis(OptionReader& axes, const std::string& name,
                             ParseFn parse_fn) {
  std::vector<Spec> specs;
  const json::Array* raw = axes.get_array(name);
  if (raw == nullptr) {
    specs.push_back(Spec{});
    return specs;
  }
  if (raw->empty())
    axes.fail("axis '" + name + "' must have at least one element");
  for (std::size_t i = 0; i < raw->size(); ++i) {
    std::ostringstream context;
    context << name << " axis element " << i;
    specs.push_back(parse_fn((*raw)[i], context.str()));
  }
  return specs;
}

json::Value world_to_json(const WorldSpec& spec) {
  json::Object o;
  o["preset"] = spec.preset;
  o["label"] = world_label(spec);
  o["users"] = spec.users;
  o["pois"] = spec.pois;
  o["weeks"] = spec.weeks;
  o["seed_offset"] = spec.seed_offset;
  o["cyber_fraction"] = spec.cyber_fraction;
  return json::Value(std::move(o));
}

json::Value defense_to_json(const DefenseSpec& spec) {
  json::Object o;
  o["mechanism"] = mechanism_name(spec.mechanism);
  o["label"] = defense_label(spec);
  o["rate"] = spec.rate;
  o["grid_sigma"] = spec.grid_sigma;
  return json::Value(std::move(o));
}

json::Value attack_to_json(const AttackSpec& spec) {
  json::Object o;
  o["blocking"] = blocking_name(spec.blocking);
  o["label"] = attack_label(spec);
  o["knn_quantize"] = spec.knn_quantize;
  o["shards"] = spec.shards;
  o["threads"] = spec.threads;
  return json::Value(std::move(o));
}

json::Value model_to_json(const ModelSpec& spec) {
  json::Object o;
  o["label"] = model_label(spec);
  o["tau_days"] = spec.tau_days;
  o["sigma"] = spec.sigma;
  o["slot_tolerance"] = spec.slot_tolerance;
  o["predicate"] = predicate_name(spec.predicate);
  return json::Value(std::move(o));
}

json::Value dynamics_to_json(const DynamicsSpec& spec) {
  json::Object o;
  o["label"] = dynamics_label(spec);
  o["drift"] = spec.drift;
  return json::Value(std::move(o));
}

}  // namespace

std::string mechanism_name(DefenseMechanism mechanism) {
  switch (mechanism) {
    case DefenseMechanism::kNone: return "none";
    case DefenseMechanism::kHiding: return "hiding";
    case DefenseMechanism::kBlurIn: return "blur-in";
    case DefenseMechanism::kBlurCross: return "blur-cross";
    case DefenseMechanism::kFriendGuard: return "friendguard";
  }
  return "none";
}

std::string blocking_name(block::BlockingMode mode) {
  switch (mode) {
    case block::BlockingMode::kOn: return "on";
    case block::BlockingMode::kOff: return "off";
    case block::BlockingMode::kAuto: return "auto";
  }
  return "auto";
}

std::string predicate_name(CandidatePredicate predicate) {
  switch (predicate) {
    case CandidatePredicate::kPreset: return "preset";
    case CandidatePredicate::kCooccur: return "cooccur";
    case CandidatePredicate::kCooccurHops: return "cooccur+hops";
  }
  return "preset";
}

std::string world_label(const WorldSpec& spec) {
  if (!spec.label.empty()) return spec.label;
  std::vector<std::string> mods;
  if (spec.users != 0) mods.push_back("u" + std::to_string(spec.users));
  if (spec.pois != 0) mods.push_back("p" + std::to_string(spec.pois));
  if (spec.weeks != 0) mods.push_back("w" + std::to_string(spec.weeks));
  if (spec.seed_offset != 0)
    mods.push_back("s" + std::to_string(spec.seed_offset));
  if (spec.cyber_fraction >= 0.0)
    mods.push_back("cy" + fmt2(spec.cyber_fraction));
  if (mods.empty()) return spec.preset;
  std::string label = spec.preset + "[";
  for (std::size_t i = 0; i < mods.size(); ++i)
    label += (i ? "," : "") + mods[i];
  return label + "]";
}

std::string defense_label(const DefenseSpec& spec) {
  if (!spec.label.empty()) return spec.label;
  if (spec.mechanism == DefenseMechanism::kNone) return "none";
  std::string label = mechanism_name(spec.mechanism) + ":" + fmt2(spec.rate);
  if ((spec.mechanism == DefenseMechanism::kBlurIn ||
       spec.mechanism == DefenseMechanism::kBlurCross ||
       spec.mechanism == DefenseMechanism::kFriendGuard) &&
      spec.grid_sigma != 120)
    label += "@g" + std::to_string(spec.grid_sigma);
  return label;
}

std::string attack_label(const AttackSpec& spec) {
  if (!spec.label.empty()) return spec.label;
  std::string label = "blk:" + blocking_name(spec.blocking);
  label += ",quant:" + std::string(spec.knn_quantize ? "on" : "off");
  label += ",shards:" + std::to_string(spec.shards);
  label += ",thr:" + std::to_string(spec.threads);
  return label;
}

std::string model_label(const ModelSpec& spec) {
  if (!spec.label.empty()) return spec.label;
  std::string label =
      "tau:" + (spec.tau_days > 0.0 ? fmtg(spec.tau_days) : "~");
  label +=
      ",sigma:" + (spec.sigma != 0 ? std::to_string(spec.sigma) : "~");
  label += ",tol:" + (spec.slot_tolerance >= 0
                          ? std::to_string(spec.slot_tolerance)
                          : "~");
  label += ",pred:" + (spec.predicate == CandidatePredicate::kPreset
                           ? "~"
                           : predicate_name(spec.predicate));
  return label;
}

std::string dynamics_label(const DynamicsSpec& spec) {
  if (!spec.label.empty()) return spec.label;
  return "drift:" + fmt2(spec.drift);
}

ScenarioConfig parse_scenario_config(const json::Value& doc) {
  OptionReader top(doc, "top level");
  const std::string schema = top.get_string("schema", kConfigSchema);
  if (schema != kConfigSchema)
    top.fail("'schema' must be '" + std::string(kConfigSchema) + "', got '" +
             schema + "'");
  const long long version =
      top.get_int("schema_version", kConfigSchemaVersion, 1, 1'000'000);
  if (version != kConfigSchemaVersion)
    top.fail("'schema_version' must be " +
             std::to_string(kConfigSchemaVersion) + ", got " +
             std::to_string(version));

  ScenarioConfig config;
  config.name = top.get_string("name", config.name);
  config.seed = static_cast<std::uint64_t>(
      top.get_int("seed", static_cast<long long>(config.seed), 0,
                  std::numeric_limits<long long>::max()));

  const json::Value* axes_node = top.get_object("axes");
  if (axes_node != nullptr) {
    OptionReader axes(*axes_node, "axes");
    config.worlds = parse_axis<WorldSpec>(axes, "world", parse_world);
    config.defenses = parse_axis<DefenseSpec>(axes, "defense", parse_defense);
    config.attacks = parse_axis<AttackSpec>(axes, "attack", parse_attack);
    config.models = parse_axis<ModelSpec>(axes, "model", parse_model);
    config.dynamics =
        parse_axis<DynamicsSpec>(axes, "dynamics", parse_dynamics);
    axes.finish();
  } else {
    config.worlds.push_back(WorldSpec{});
    config.defenses.push_back(DefenseSpec{});
    config.attacks.push_back(AttackSpec{});
    config.models.push_back(ModelSpec{});
    config.dynamics.push_back(DynamicsSpec{});
  }

  const json::Value* tolerance_node = top.get_object("tolerance");
  if (tolerance_node != nullptr)
    config.tolerance = parse_tolerance(*tolerance_node, "tolerance");
  top.finish();
  return config;
}

ScenarioConfig parse_scenario_config_text(const std::string& text) {
  return parse_scenario_config(json::parse(text));
}

json::Value scenario_config_to_json(const ScenarioConfig& config) {
  json::Object axes;
  json::Array worlds, defenses, attacks, models, dynamics;
  for (const WorldSpec& spec : config.worlds)
    worlds.push_back(world_to_json(spec));
  for (const DefenseSpec& spec : config.defenses)
    defenses.push_back(defense_to_json(spec));
  for (const AttackSpec& spec : config.attacks)
    attacks.push_back(attack_to_json(spec));
  for (const ModelSpec& spec : config.models)
    models.push_back(model_to_json(spec));
  for (const DynamicsSpec& spec : config.dynamics)
    dynamics.push_back(dynamics_to_json(spec));
  axes["world"] = std::move(worlds);
  axes["defense"] = std::move(defenses);
  axes["attack"] = std::move(attacks);
  axes["model"] = std::move(models);
  axes["dynamics"] = std::move(dynamics);

  json::Object tolerance;
  tolerance["f1"] = config.tolerance.f1;
  tolerance["precision"] = config.tolerance.precision;
  tolerance["recall"] = config.tolerance.recall;
  tolerance["auc"] = config.tolerance.auc;
  tolerance["precision_at_k"] = config.tolerance.precision_at_k;

  json::Object doc;
  doc["schema"] = kConfigSchema;
  doc["schema_version"] = kConfigSchemaVersion;
  doc["name"] = config.name;
  doc["seed"] = config.seed;
  doc["axes"] = json::Value(std::move(axes));
  doc["tolerance"] = json::Value(std::move(tolerance));
  return json::Value(std::move(doc));
}

std::vector<ScenarioCell> expand_grid(const ScenarioConfig& config) {
  std::vector<ScenarioCell> cells;
  cells.reserve(config.worlds.size() * config.defenses.size() *
                config.attacks.size() * config.models.size() *
                config.dynamics.size());
  for (const WorldSpec& world : config.worlds)
    for (const DefenseSpec& defense : config.defenses)
      for (const AttackSpec& attack : config.attacks)
        for (const ModelSpec& model : config.models)
          for (const DynamicsSpec& dyn : config.dynamics) {
            ScenarioCell cell;
            cell.index = cells.size();
            cell.world = world;
            cell.defense = defense;
            cell.attack = attack;
            cell.model = model;
            cell.dynamics = dyn;
            cell.id = world_label(world) + " / " + defense_label(defense) +
                      " / " + attack_label(attack) + " / " +
                      model_label(model) + " / " + dynamics_label(dyn);
            cells.push_back(std::move(cell));
          }
  return cells;
}

std::string config_fingerprint(const ScenarioConfig& config) {
  return eval::text_digest(scenario_config_to_json(config).dump(0));
}

std::string cell_fingerprint(const ScenarioConfig& config,
                             const ScenarioCell& cell) {
  json::Object o;
  o["seed"] = config.seed;
  o["world"] = world_to_json(cell.world);
  o["defense"] = defense_to_json(cell.defense);
  o["attack"] = attack_to_json(cell.attack);
  o["model"] = model_to_json(cell.model);
  o["dynamics"] = dynamics_to_json(cell.dynamics);
  return eval::text_digest(json::Value(std::move(o)).dump(0));
}

}  // namespace fs::scenario
