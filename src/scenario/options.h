// Typed option reading for declarative scenario configs.
//
// Desbordante's algo-factory pattern, adapted: every config object is read
// through an OptionReader that (a) type-checks and range-checks each
// declared key through one accessor, and (b) rejects unknown keys loudly in
// finish() — a typo'd axis name becomes a typed fs::ParseError naming the
// bad key, its context, and the accepted spelling set, never a silently
// ignored option.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "obs/json.h"

namespace fs::scenario {

class OptionReader {
 public:
  /// `node` must be a JSON object; `context` names it in error messages
  /// (e.g. "defense axis element 2").
  OptionReader(const obs::json::Value& node, std::string context);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& default_value);
  /// String constrained to an allowed set.
  std::string get_enum(const std::string& key,
                       const std::string& default_value,
                       const std::vector<std::string>& allowed);
  /// Number constrained to [lo, hi]; throws ParseError outside the range.
  double get_number(const std::string& key, double default_value, double lo,
                    double hi);
  /// Integer-valued number in [lo, hi]; a fractional value is an error.
  long long get_int(const std::string& key, long long default_value,
                    long long lo, long long hi);
  bool get_bool(const std::string& key, bool default_value);
  /// Nested array member (nullptr when absent).
  const obs::json::Array* get_array(const std::string& key);
  /// Nested object member (nullptr when absent).
  const obs::json::Value* get_object(const std::string& key);

  /// Throws ParseError listing every key that no accessor consumed.
  void finish() const;

  const std::string& context() const { return context_; }

  /// Raises ParseError with the reader's context prefixed.
  [[noreturn]] void fail(const std::string& message) const;

 private:
  const obs::json::Value& value(const std::string& key);

  const obs::json::Object* object_ = nullptr;
  std::string context_;
  std::set<std::string> consumed_;
};

}  // namespace fs::scenario
