#include "scenario/artifact.h"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "util/error.h"

namespace fs::scenario {

namespace json = obs::json;

namespace {

[[noreturn]] void invalid(const std::string& message) {
  throw ParseError("scenario matrix: " + message);
}

const json::Value& require(const json::Value& node, const std::string& key,
                           const std::string& context) {
  if (!node.is_object() || !node.contains(key))
    invalid(context + ": missing '" + key + "'");
  return node.at(key);
}

double require_number(const json::Value& node, const std::string& key,
                      const std::string& context) {
  const json::Value& v = require(node, key, context);
  if (!v.is_number()) invalid(context + ": '" + key + "' must be a number");
  return v.as_number();
}

std::string require_string(const json::Value& node, const std::string& key,
                           const std::string& context) {
  const json::Value& v = require(node, key, context);
  if (!v.is_string()) invalid(context + ": '" + key + "' must be a string");
  return v.as_string();
}

double require_metric(const json::Value& node, const std::string& key,
                      const std::string& context) {
  const double v = require_number(node, key, context);
  if (!(v >= 0.0 && v <= 1.0))
    invalid(context + ": '" + key + "' = " + std::to_string(v) +
            " outside [0, 1]");
  return v;
}

json::Value quality_to_json(const CellQuality& quality) {
  json::Object o;
  o["precision"] = quality.precision;
  o["recall"] = quality.recall;
  o["f1"] = quality.f1;
  o["auc"] = quality.auc;
  o["precision_at_k"] = quality.precision_at_k;
  o["k"] = quality.k;
  return json::Value(std::move(o));
}

json::Value tolerance_to_json(const ToleranceBands& bands) {
  json::Object o;
  o["f1"] = bands.f1;
  o["precision"] = bands.precision;
  o["recall"] = bands.recall;
  o["auc"] = bands.auc;
  o["precision_at_k"] = bands.precision_at_k;
  return json::Value(std::move(o));
}

/// The five banded metrics, paired with their tolerance keys.
const std::vector<std::string>& banded_metrics() {
  static const std::vector<std::string> kMetrics = {
      "precision", "recall", "f1", "auc", "precision_at_k"};
  return kMetrics;
}

}  // namespace

json::Value matrix_to_json(const MatrixResult& matrix) {
  json::Object doc;
  doc["schema"] = kMatrixSchema;
  doc["schema_version"] = kMatrixSchemaVersion;
  doc["name"] = matrix.config.name;
  doc["seed"] = matrix.config.seed;
  doc["config_fingerprint"] = matrix.config_fp;
  doc["toolchain"] = matrix.toolchain;
  doc["threads"] = matrix.threads;
  doc["cell_count"] = matrix.cells.size();
  doc["total_wall_ms"] = matrix.total_wall_ms;
  doc["tolerance"] = tolerance_to_json(matrix.config.tolerance);

  json::Array cells;
  for (const CellResult& result : matrix.cells) {
    json::Object cell;
    cell["id"] = result.cell.id;
    cell["index"] = result.cell.index;
    cell["config_fingerprint"] = result.fingerprint;
    cell["world"] = world_label(result.cell.world);
    cell["defense"] = defense_label(result.cell.defense);
    cell["attack"] = attack_label(result.cell.attack);
    cell["model"] = model_label(result.cell.model);
    cell["dynamics"] = dynamics_label(result.cell.dynamics);
    cell["quality"] = quality_to_json(result.quality);
    cell["result_digest"] = result.result_digest;
    cell["final_graph_digest"] = result.final_graph_digest;
    cell["wall_ms"] = result.wall_ms;
    cell["peak_memory_bytes"] = result.peak_memory_bytes;
    cell["universe_pairs"] = result.universe_pairs;
    cell["scored_pairs"] = result.scored_pairs;
    cell["pruned_pairs"] = result.pruned_pairs;
    cell["blocking_active"] = result.blocking_active;
    cell["cache_hit_rate"] = result.cache_hit_rate;
    cells.emplace_back(std::move(cell));
  }
  doc["cells"] = std::move(cells);
  return json::Value(std::move(doc));
}

void validate_matrix(const json::Value& doc) {
  if (!doc.is_object()) invalid("document must be an object");
  const std::string schema = require_string(doc, "schema", "top level");
  if (schema != kMatrixSchema)
    invalid("'schema' must be '" + std::string(kMatrixSchema) + "', got '" +
            schema + "'");
  const double version =
      require_number(doc, "schema_version", "top level");
  if (version != kMatrixSchemaVersion)
    invalid("'schema_version' must be " +
            std::to_string(kMatrixSchemaVersion));
  require_string(doc, "name", "top level");
  require_number(doc, "seed", "top level");
  require_string(doc, "config_fingerprint", "top level");
  require_string(doc, "toolchain", "top level");
  require_number(doc, "threads", "top level");
  require_number(doc, "total_wall_ms", "top level");

  const json::Value& tolerance = require(doc, "tolerance", "top level");
  for (const std::string& metric : banded_metrics())
    require_metric(tolerance, metric, "tolerance");

  const json::Value& cells_node = require(doc, "cells", "top level");
  if (!cells_node.is_array()) invalid("'cells' must be an array");
  const json::Array& cells = cells_node.as_array();
  const double cell_count = require_number(doc, "cell_count", "top level");
  if (cell_count != static_cast<double>(cells.size()))
    invalid("cell_count " + std::to_string(cell_count) + " != cells size " +
            std::to_string(cells.size()));

  std::map<std::string, std::size_t> seen;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::ostringstream ctx_stream;
    ctx_stream << "cell " << i;
    const std::string context = ctx_stream.str();
    const json::Value& cell = cells[i];
    const std::string id = require_string(cell, "id", context);
    if (!seen.emplace(id, i).second)
      invalid(context + ": duplicate cell id '" + id + "'");
    require_number(cell, "index", context);
    require_string(cell, "config_fingerprint", context);
    for (const char* axis :
         {"world", "defense", "attack", "model", "dynamics"})
      require_string(cell, axis, context);
    const json::Value& quality = require(cell, "quality", context);
    for (const std::string& metric : banded_metrics())
      require_metric(quality, metric, context + " quality");
    require_number(quality, "k", context + " quality");
    require_string(cell, "result_digest", context);
    require_string(cell, "final_graph_digest", context);
    require_number(cell, "wall_ms", context);
    require_number(cell, "peak_memory_bytes", context);
    const double universe = require_number(cell, "universe_pairs", context);
    const double scored = require_number(cell, "scored_pairs", context);
    const double pruned = require_number(cell, "pruned_pairs", context);
    if (scored + pruned != universe)
      invalid(context + ": scored + pruned != universe_pairs");
    if (!require(cell, "blocking_active", context).is_bool())
      invalid(context + ": 'blocking_active' must be a boolean");
    require_metric(cell, "cache_hit_rate", context);
  }
}

void write_matrix(const std::string& path, const MatrixResult& matrix) {
  const json::Value doc = matrix_to_json(matrix);
  validate_matrix(doc);  // a malformed artifact is an emitter bug
  json::write_file(path, doc);
}

json::Value load_matrix_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("scenario matrix: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  json::Value doc = json::parse(text.str());
  validate_matrix(doc);
  return doc;
}

DiffReport diff_matrices(const json::Value& base, const json::Value& current,
                         const DiffOptions& options) {
  DiffReport report;
  validate_matrix(base);
  validate_matrix(current);

  const std::string base_fp = base.at("config_fingerprint").as_string();
  const std::string current_fp =
      current.at("config_fingerprint").as_string();
  if (base_fp != current_fp)
    report.failures.push_back("config fingerprint mismatch: base " +
                              base_fp + " vs current " + current_fp);

  const bool same_toolchain = base.at("toolchain").as_string() ==
                              current.at("toolchain").as_string();
  if (!same_toolchain)
    report.notes.push_back(
        "toolchains differ; digest comparisons downgraded to notes (base '" +
        base.at("toolchain").as_string() + "', current '" +
        current.at("toolchain").as_string() + "')");

  std::map<std::string, double> bands;
  const json::Value& tolerance = base.at("tolerance");
  for (const std::string& metric : banded_metrics())
    bands[metric] =
        tolerance.at(metric).as_number() * options.tolerance_scale;

  std::map<std::string, const json::Value*> current_cells;
  for (const json::Value& cell : current.at("cells").as_array())
    current_cells[cell.at("id").as_string()] = &cell;

  for (const json::Value& base_cell : base.at("cells").as_array()) {
    const std::string id = base_cell.at("id").as_string();
    auto it = current_cells.find(id);
    if (it == current_cells.end()) {
      report.failures.push_back("cell missing from current: '" + id + "'");
      continue;
    }
    const json::Value& current_cell = *it->second;
    current_cells.erase(it);

    if (base_cell.at("config_fingerprint").as_string() !=
        current_cell.at("config_fingerprint").as_string()) {
      report.failures.push_back("cell '" + id +
                                "': config fingerprint mismatch");
      continue;
    }

    for (const std::string& metric : banded_metrics()) {
      const double was = base_cell.at("quality").at(metric).as_number();
      const double now = current_cell.at("quality").at(metric).as_number();
      const double delta = std::abs(now - was);
      if (delta > bands[metric]) {
        std::ostringstream oss;
        oss << "cell '" << id << "': " << metric << " moved " << was
            << " -> " << now << " (|delta| " << delta << " > band "
            << bands[metric] << ")";
        report.failures.push_back(oss.str());
      }
    }

    const std::string base_digest =
        base_cell.at("final_graph_digest").as_string();
    const std::string current_digest =
        current_cell.at("final_graph_digest").as_string();
    if (base_digest != current_digest) {
      const std::string message = "cell '" + id +
                                  "': final graph digest " + base_digest +
                                  " -> " + current_digest;
      if (same_toolchain && !options.lenient_digests)
        report.failures.push_back(message);
      else
        report.notes.push_back(message);
    }
  }

  for (const auto& [id, cell] : current_cells) {
    (void)cell;
    report.failures.push_back("cell not in base: '" + id + "'");
  }
  return report;
}

}  // namespace fs::scenario
