// The scenario matrix artifact: one schema-versioned JSON document per run
// (one row per grid cell), plus the validator and the tolerance-banded diff
// that scenario_diff and the golden matrix slice are built on.
//
// Validation follows the perf_bench schema idiom: a single validate pass
// that throws fs::ParseError naming the offending field, run both on every
// artifact BEFORE it is written (a malformed artifact is a bug in the
// emitter, caught at the source) and on anything read back.
#pragma once

#include <string>
#include <vector>

#include "obs/json.h"
#include "scenario/runner.h"

namespace fs::scenario {

inline constexpr const char* kMatrixSchema = "fs-scenario-matrix";
inline constexpr int kMatrixSchemaVersion = 1;

/// Serializes a finished run (schema fs-scenario-matrix v1).
obs::json::Value matrix_to_json(const MatrixResult& matrix);

/// Structural validation; throws fs::ParseError on any violation (wrong
/// schema tag/version, missing or mistyped fields, cell_count mismatch,
/// quality metrics outside [0, 1]).
void validate_matrix(const obs::json::Value& doc);

/// Validates, then writes pretty-printed JSON to `path`.
void write_matrix(const std::string& path, const MatrixResult& matrix);

/// Reads, parses, and validates an artifact file.
obs::json::Value load_matrix_file(const std::string& path);

struct DiffOptions {
  /// Multiplier on the BASE artifact's tolerance bands (cross-toolchain
  /// comparisons in CI widen them without editing the config).
  double tolerance_scale = 1.0;
  /// Downgrade same-toolchain digest mismatches from failures to notes
  /// (quality bands still gate).
  bool lenient_digests = false;
};

/// Outcome of comparing two artifacts. `failures` is what makes the diff
/// fail (exit non-zero); `notes` is informational drift (cross-toolchain
/// digest differences, wall-time movement).
struct DiffReport {
  std::vector<std::string> failures;
  std::vector<std::string> notes;

  bool ok() const { return failures.empty(); }
};

/// Compares two validated artifacts cell by cell (paired on cell id).
/// Failures: missing/extra cells, config-fingerprint mismatches, any
/// quality metric moving more than the base's tolerance band x scale, and
/// final-graph digest mismatches when both runs share a toolchain
/// fingerprint. Digest differences across toolchains are notes — FP
/// contraction legitimately moves low-order bits, which is exactly what
/// the tolerance bands exist to absorb.
DiffReport diff_matrices(const obs::json::Value& base,
                         const obs::json::Value& current,
                         const DiffOptions& options = {});

}  // namespace fs::scenario
