#include "scenario/runner.h"

#include <chrono>
#include <map>
#include <utility>

#include "block/feature_cache.h"
#include "data/defense.h"
#include "data/dynamics.h"
#include "data/obfuscation.h"
#include "eval/digest.h"
#include "eval/presets.h"
#include "geo/quadtree.h"
#include "ml/metrics.h"
#include "par/pool.h"
#include "util/rng.h"
#include "util/runtime.h"

namespace fs::scenario {

namespace {

std::uint64_t fnv64(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char ch : text) {
    h ^= ch;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t derive_seed(std::uint64_t config_seed, const std::string& tag) {
  std::uint64_t state = config_seed ^ fnv64(tag);
  return util::splitmix64(state);
}

}  // namespace

data::SyntheticWorldConfig resolve_world(const WorldSpec& spec,
                                         std::uint64_t config_seed) {
  data::SyntheticWorldConfig world = eval::bench_preset(spec.preset).world;
  if (spec.users != 0) world.user_count = spec.users;
  if (spec.pois != 0) world.poi_count = spec.pois;
  if (spec.weeks != 0) world.weeks = spec.weeks;
  if (spec.cyber_fraction >= 0.0)
    world.cyber_edge_fraction = spec.cyber_fraction;
  world.seed += config_seed + spec.seed_offset;
  world.name = world_label(spec);
  return world;
}

core::FriendSeekerConfig resolve_seeker(const WorldSpec& world,
                                        const AttackSpec& attack,
                                        const ModelSpec& model,
                                        std::uint64_t config_seed) {
  core::FriendSeekerConfig seeker = eval::bench_preset(world.preset).seeker;
  seeker.seed += config_seed;

  seeker.blocking.mode = attack.blocking;
  seeker.presence.knn_quantize = attack.knn_quantize;
  seeker.shards = attack.shards;

  if (model.tau_days > 0.0) seeker.tau_days = model.tau_days;
  if (model.sigma != 0) seeker.sigma = model.sigma;
  if (model.slot_tolerance >= 0)
    seeker.blocking.slot_tolerance = model.slot_tolerance;
  switch (model.predicate) {
    case CandidatePredicate::kPreset:
      break;
    case CandidatePredicate::kCooccur:
      seeker.blocking.hop_expansion = 0;
      break;
    case CandidatePredicate::kCooccurHops:
      seeker.blocking.hop_expansion = 2;
      break;
  }
  return seeker;
}

std::uint64_t defense_seed(std::uint64_t config_seed,
                           const std::string& world_label,
                           const std::string& defense_label) {
  return derive_seed(config_seed,
                     "defense|" + world_label + "|" + defense_label);
}

std::uint64_t dynamics_seed(std::uint64_t config_seed,
                            const std::string& world_label,
                            const std::string& dynamics_label) {
  return derive_seed(config_seed,
                     "dynamics|" + world_label + "|" + dynamics_label);
}

std::uint64_t split_seed(std::uint64_t config_seed) {
  return 7 + config_seed;
}

data::Dataset apply_defense(const data::Dataset& ds, const DefenseSpec& spec,
                            std::uint64_t seed) {
  if (spec.mechanism == DefenseMechanism::kNone || spec.rate == 0.0)
    return ds.with_checkins(std::vector<data::CheckIn>(ds.checkins()));
  if (spec.mechanism == DefenseMechanism::kHiding)
    return data::hide_checkins_coupled(ds, spec.rate, seed);

  const geo::QuadtreeDivision division(ds.poi_coordinates(),
                                       spec.grid_sigma);
  util::Rng rng(seed);
  switch (spec.mechanism) {
    case DefenseMechanism::kBlurIn:
      return data::blur_in_grid(ds, spec.rate, division, rng);
    case DefenseMechanism::kBlurCross:
      return data::blur_cross_grid(ds, spec.rate, division, rng);
    case DefenseMechanism::kFriendGuard: {
      data::FriendGuardConfig guard;
      guard.budget = spec.rate;
      guard.seed = seed;
      return data::friend_guard(ds, division, guard);
    }
    default:
      return ds.with_checkins(std::vector<data::CheckIn>(ds.checkins()));
  }
}

data::Dataset apply_dynamics(const data::Dataset& ds,
                             const DynamicsSpec& spec, std::uint64_t seed) {
  if (spec.drift == 0.0)
    return ds.with_checkins(std::vector<data::CheckIn>(ds.checkins()));
  return data::apply_temporal_drift(ds, spec.drift, seed);
}

CellQuality compute_quality(const std::vector<int>& test_labels,
                            const std::vector<int>& predictions,
                            const std::vector<double>& scores) {
  CellQuality quality;
  const ml::Prf prf = ml::prf(test_labels, predictions);
  quality.precision = prf.precision;
  quality.recall = prf.recall;
  quality.f1 = prf.f1;
  quality.auc = ml::auc(test_labels, scores);
  for (int label : test_labels) quality.k += label == 1 ? 1 : 0;
  quality.precision_at_k =
      ml::precision_at_k(test_labels, scores, quality.k);
  return quality;
}

MatrixResult run_scenario(const ScenarioConfig& config,
                          const RunOptions& options) {
  MatrixResult matrix;
  matrix.config = config;
  matrix.config_fp = config_fingerprint(config);
  matrix.toolchain = eval::toolchain_fingerprint();

  const std::size_t process_threads = par::threads();
  const std::size_t ambient =
      options.threads != 0 ? options.threads : process_threads;
  matrix.threads = ambient;

  // Clean experiments per world label; perturbed experiments per
  // (world, dynamics, defense) coordinate. Both reuse the clean pair
  // split — ground truth never changes, only the published check-ins.
  std::map<std::string, eval::Experiment> clean_cache;
  std::map<std::string, eval::Experiment> variant_cache;
  block::FeatureCache feature_cache;
  block::FeatureCache::Stats last_totals;

  const auto grid = expand_grid(config);
  const auto grid_start = std::chrono::steady_clock::now();
  for (const ScenarioCell& cell : grid) {
    const std::string world_key = world_label(cell.world);
    auto clean_it = clean_cache.find(world_key);
    if (clean_it == clean_cache.end()) {
      const data::SyntheticWorldConfig world_cfg =
          resolve_world(cell.world, config.seed);
      clean_it = clean_cache
                     .emplace(world_key,
                              eval::make_experiment(world_cfg, {}, 0.7,
                                                    split_seed(config.seed)))
                     .first;
    }
    const eval::Experiment& clean = clean_it->second;

    const std::string dyn_key = dynamics_label(cell.dynamics);
    const std::string def_key = defense_label(cell.defense);
    const std::string variant_key =
        world_key + "\n" + dyn_key + "\n" + def_key;
    auto variant_it = variant_cache.find(variant_key);
    if (variant_it == variant_cache.end()) {
      eval::Experiment variant;
      data::Dataset drifted = apply_dynamics(
          clean.dataset, cell.dynamics,
          dynamics_seed(config.seed, world_key, dyn_key));
      variant.dataset = apply_defense(
          drifted, cell.defense,
          defense_seed(config.seed, world_key, def_key));
      variant.split = clean.split;
      variant.name = clean.name;
      variant_it =
          variant_cache.emplace(variant_key, std::move(variant)).first;
    }
    const eval::Experiment& experiment = variant_it->second;

    core::FriendSeekerConfig seeker =
        resolve_seeker(cell.world, cell.attack, cell.model, config.seed);
    seeker.feature_cache = &feature_cache;
    runtime::ExecutionContext context;
    seeker.context = &context;

    par::set_threads(cell.attack.threads != 0 ? cell.attack.threads
                                              : ambient);

    CellResult result;
    result.cell = cell;
    result.fingerprint = cell_fingerprint(config, cell);

    const auto start = std::chrono::steady_clock::now();
    eval::FriendSeekerAttack attack(seeker);
    const std::vector<int> predictions =
        attack.infer(experiment.dataset, experiment.split.train_pairs,
                     experiment.split.train_labels,
                     experiment.split.test_pairs);
    result.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();

    const core::FriendSeekerResult& run = attack.last_result();
    result.quality = compute_quality(experiment.split.test_labels,
                                     predictions, run.test_scores);
    result.result_digest = eval::result_digest(run);
    result.final_graph_digest = eval::graph_digest(run.final_graph);
    result.peak_memory_bytes = context.peak_charged();
    result.universe_pairs = run.blocking.universe_pairs;
    result.scored_pairs = run.blocking.scored_pairs;
    result.pruned_pairs = run.blocking.pruned_pairs;
    result.blocking_active = run.blocking_active;

    // The shared cache's counters accumulate across cells; report the
    // delta so each cell's hit rate reflects its own lookups.
    const block::FeatureCache::Stats totals = run.cache;
    const std::uint64_t hits = totals.hits() - last_totals.hits();
    const std::uint64_t misses = totals.misses() - last_totals.misses();
    result.cache_hit_rate =
        hits + misses == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(hits + misses);
    last_totals = totals;

    if (options.on_cell) options.on_cell(result);
    matrix.cells.push_back(std::move(result));
  }
  matrix.total_wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - grid_start)
                             .count();
  par::set_threads(process_threads);
  return matrix;
}

}  // namespace fs::scenario
