// Scenario grid execution: resolves each cell's coordinate into a concrete
// (world, dataset, seeker config) through the existing pipeline facade and
// runs the full attack, reusing worlds, perturbed datasets, and the
// presence/JOC feature cache across cells wherever signatures allow.
//
// The resolution helpers are public on purpose: the differential tests and
// the countermeasure benches rebuild a cell's exact dataset and seeker
// config outside the runner to pin that a grid cell is bit-identical to a
// direct attack invocation (and to grade baseline attacks on the very same
// perturbed data).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "eval/harness.h"
#include "scenario/config.h"

namespace fs::scenario {

/// Test-set quality of one cell. `k` is the positive count of the test
/// split (precision@k at the label base rate — the attacker's "top
/// suspects" list sized to the true friend count).
struct CellQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double auc = 0.0;
  double precision_at_k = 0.0;
  std::size_t k = 0;
};

struct CellResult {
  ScenarioCell cell;
  std::string fingerprint;  // cell_fingerprint(config, cell)
  CellQuality quality;
  std::string result_digest;
  std::string final_graph_digest;
  double wall_ms = 0.0;
  std::size_t peak_memory_bytes = 0;
  std::size_t universe_pairs = 0;
  std::size_t scored_pairs = 0;
  std::size_t pruned_pairs = 0;
  bool blocking_active = false;
  /// Feature-cache hit rate over THIS cell's lookups only (the shared
  /// cache's counters are cumulative, so this is a per-cell delta).
  double cache_hit_rate = 0.0;
};

struct MatrixResult {
  ScenarioConfig config;
  std::string config_fp;
  std::string toolchain;
  std::size_t threads = 0;  // ambient thread count the run started from
  double total_wall_ms = 0.0;
  std::vector<CellResult> cells;
};

// ---- Cell resolution (public for differential tests and benches) ----

/// World generator config for a cell: preset scaled by the spec's
/// overrides, seeded by preset seed + config seed + spec seed_offset.
data::SyntheticWorldConfig resolve_world(const WorldSpec& spec,
                                         std::uint64_t config_seed);

/// Seeker config for a cell: the world preset's seeker with the attack
/// and model axes applied (blocking mode, quantized KNN, shards, tau,
/// sigma, slot tolerance, candidate predicate) and seed += config seed.
core::FriendSeekerConfig resolve_seeker(const WorldSpec& world,
                                        const AttackSpec& attack,
                                        const ModelSpec& model,
                                        std::uint64_t config_seed);

/// Deterministic RNG seed for a (world, defense) dataset perturbation —
/// shared across the attack/model/dynamics axes so a perturbed dataset is
/// built once and reused, and reproducible outside the runner.
std::uint64_t defense_seed(std::uint64_t config_seed,
                           const std::string& world_label,
                           const std::string& defense_label);

/// Same derivation for the dynamics axis.
std::uint64_t dynamics_seed(std::uint64_t config_seed,
                            const std::string& world_label,
                            const std::string& dynamics_label);

/// Applies one defense spec to a dataset (identity for kNone / rate 0).
/// Blur and FriendGuard build the defender's quadtree at spec.grid_sigma.
data::Dataset apply_defense(const data::Dataset& ds, const DefenseSpec& spec,
                            std::uint64_t seed);

/// Applies temporal drift (identity for drift 0).
data::Dataset apply_dynamics(const data::Dataset& ds,
                             const DynamicsSpec& spec, std::uint64_t seed);

/// The split seed every cell of a config shares (the pair split is part of
/// the protocol, not the grid).
std::uint64_t split_seed(std::uint64_t config_seed);

// ---- Execution ----

struct RunOptions {
  /// Ambient thread count for cells whose attack spec says 0 (inherit);
  /// 0 = keep the process's current par::threads().
  std::size_t threads = 0;
  /// Progress callback after each cell (may be empty).
  std::function<void(const CellResult&)> on_cell;
};

/// Executes the full grid. Worlds are generated once per world label,
/// perturbed datasets once per (world, dynamics, defense) coordinate, and
/// one feature cache spans all cells (its signature check keeps reuse
/// digest-safe). Restores the ambient thread count on return.
MatrixResult run_scenario(const ScenarioConfig& config,
                          const RunOptions& options = {});

/// Quality block from a finished attack run (exposed for the differential
/// tests, which grade direct invocations with the same arithmetic).
CellQuality compute_quality(const std::vector<int>& test_labels,
                            const std::vector<int>& predictions,
                            const std::vector<double>& scores);

}  // namespace fs::scenario
