#include "obs/telemetry.h"

#include <chrono>
#include <fstream>
#include <limits>

#include "util/logging.h"

namespace fs::obs {

std::string prometheus_path_for(const std::string& json_path) {
  const std::size_t slash = json_path.find_last_of('/');
  const std::size_t dot = json_path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash))
    return json_path + ".prom";
  return json_path.substr(0, dot) + ".prom";
}

void write_metrics_files(const MetricsRegistry& registry,
                         const std::string& json_path) {
  json::write_file(json_path, registry.to_json(), 2);
  const std::string prom_path = prometheus_path_for(json_path);
  std::ofstream prom(prom_path);
  if (!prom)
    throw IoError("write_metrics_files: cannot open " + prom_path);
  prom << registry.to_prometheus();
  if (!prom.flush())
    throw IoError("write_metrics_files: write failed for " + prom_path);
}

void bridge_diagnostics(const util::Diagnostics& diagnostics,
                        MetricsRegistry& registry) {
  registry
      .gauge("diagnostics.events_total", {},
             "diagnostics reported by the last run")
      .set(static_cast<double>(diagnostics.entries().size()));
  for (const util::Severity severity :
       {util::Severity::kInfo, util::Severity::kWarning,
        util::Severity::kError})
    registry
        .gauge("diagnostics.events",
               {{"severity", util::severity_name(severity)}},
               "diagnostics by severity for the last run")
        .set(static_cast<double>(diagnostics.count(severity)));
}

void bridge_execution(const runtime::ExecutionContext& context,
                      MetricsRegistry& registry) {
  registry
      .gauge("runtime.memory.charged_bytes", {},
             "currently charged estimated working-set bytes")
      .set(static_cast<double>(context.charged()));
  registry
      .gauge("runtime.memory.peak_bytes", {},
             "high-water mark of the estimated working set")
      .set_max(static_cast<double>(context.peak_charged()));
  const double remaining = context.deadline().is_unlimited()
                               ? -1.0
                               : context.remaining_seconds();
  registry
      .gauge("runtime.deadline.remaining_seconds", {},
             "wall-clock budget left (-1 = unlimited)")
      .set(remaining);
}

void bridge_degradation(const runtime::DegradationReport& report,
                        MetricsRegistry& registry) {
  registry
      .gauge("pipeline.degraded_phases", {},
             "phases the last run truncated instead of completing")
      .set(static_cast<double>(report.phases.size()));
  // Zero the known reasons first so a clean re-run overwrites stale values.
  for (const char* reason : {"deadline", "memory", "iterations", "cancelled"})
    registry
        .gauge("pipeline.degradations", {{"reason", reason}},
               "truncated phases by reason for the last run")
        .set(0.0);
  for (const runtime::PhaseDegradation& phase : report.phases) {
    Gauge& gauge = registry.gauge("pipeline.degradations",
                                  {{"reason", phase.reason}},
                                  "truncated phases by reason for the last "
                                  "run");
    gauge.set(gauge.value() + 1.0);
  }
}

// ---- PeriodicSnapshotWriter -------------------------------------------

PeriodicSnapshotWriter::PeriodicSnapshotWriter(std::string json_path,
                                               double interval_sec,
                                               MetricsRegistry& registry)
    : json_path_(std::move(json_path)), registry_(registry) {
  if (interval_sec > 0.0)
    worker_ = std::thread([this, interval_sec] { run(interval_sec); });
}

PeriodicSnapshotWriter::~PeriodicSnapshotWriter() { stop(); }

void PeriodicSnapshotWriter::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && !worker_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  write_once();
}

void PeriodicSnapshotWriter::run(double interval_sec) {
  const auto interval = std::chrono::duration<double>(interval_sec);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) break;
    lock.unlock();
    write_once();
    lock.lock();
  }
}

void PeriodicSnapshotWriter::write_once() noexcept {
  try {
    write_metrics_files(registry_, json_path_);
  } catch (const std::exception& e) {
    bool warn = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      warn = !warned_;
      warned_ = true;
    }
    if (warn)
      util::log_warn("metrics snapshot write failed (will keep trying): ",
                     e.what());
  }
}

}  // namespace fs::obs
