// Thread-safe metrics registry: named counters, gauges, and fixed-bucket
// histograms, exported as Prometheus text format and JSON.
//
// Design points:
//   * Handles are stable references — call sites resolve a metric once
//     (registry lookup takes a mutex) and then update it lock-free with
//     relaxed atomics, so instrumented hot loops pay one atomic add per
//     batch, not a map lookup per event.
//   * Metric names are dotted and hierarchical ("data.loader.lines_total");
//     the Prometheus exporter sanitizes them ([a-zA-Z0-9_:] only) and the
//     JSON exporter keeps them verbatim.
//   * Histograms use fixed upper bounds chosen at registration; quantiles
//     (p50/p95/p99) are answered by linear interpolation inside the
//     bracketing bucket, the same estimate Prometheus' histogram_quantile
//     computes server-side.
//   * A process-wide enable flag gates *expensive derived instrumentation*
//     (e.g. gradient-norm computation). Plain counter/gauge updates are a
//     relaxed atomic op and stay unconditional.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace fs::obs {

/// Sorted (key, value) label pairs; part of a metric's identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  /// High-water update: keeps the maximum of the current and new value.
  void set_max(double v) noexcept;
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing; an implicit +inf overflow
  /// bucket is appended.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  /// Quantile estimate for q in [0, 1] by linear interpolation within the
  /// bracketing bucket (observations in the overflow bucket clamp to the
  /// largest finite bound). Returns 0 when empty.
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; the last entry is the overflow
  /// bucket.
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Exponential duration buckets in milliseconds (0.25 ms .. ~2 min), the
/// default for span/stage timing histograms.
std::vector<double> default_duration_buckets_ms();

class MetricsRegistry {
 public:
  /// Resolve-or-create. The help string is recorded on first registration
  /// of a name; later calls may omit it. Returned references stay valid for
  /// the registry's lifetime.
  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = "");
  /// `upper_bounds` is used only when the (name, labels) pair is new.
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& upper_bounds,
                       const Labels& labels = {},
                       const std::string& help = "");

  /// Prometheus text exposition format (# HELP / # TYPE / samples), with
  /// name sanitization, label-value escaping, and histogram
  /// _bucket/_sum/_count expansion.
  std::string to_prometheus() const;

  /// JSON snapshot: {"counters": [...], "gauges": [...],
  /// "histograms": [...]} with verbatim names, labels, and p50/p95/p99.
  json::Value to_json() const;

  /// Drops every metric (tests and the bench harness isolate runs with
  /// this; live handles are invalidated).
  void reset();

 private:
  struct Family {
    std::string help;
    char type = '?';  // 'c' | 'g' | 'h'
  };
  using Key = std::pair<std::string, Labels>;

  template <typename T, typename... Args>
  T& resolve(std::map<Key, std::unique_ptr<T>>& store,
             const std::string& name, const Labels& labels,
             const std::string& help, char type, Args&&... args);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry all pipeline instrumentation writes into.
MetricsRegistry& metrics();

/// Gate for derived instrumentation whose *computation* costs something
/// (gradient norms, per-epoch series). Off by default; the CLI and
/// perf_bench turn it on. Plain counters/gauges ignore this flag.
bool metrics_enabled() noexcept;
void set_metrics_enabled(bool enabled) noexcept;

/// Sanitizes a dotted metric name for Prometheus ([a-zA-Z0-9_:], no leading
/// digit). Exposed for tests.
std::string prometheus_name(const std::string& name);
/// Escapes a Prometheus label value (backslash, double quote, newline) or
/// HELP text (backslash, newline). Exposed for tests.
std::string prometheus_escape_label(const std::string& value);
std::string prometheus_escape_help(const std::string& help);

}  // namespace fs::obs
