// Minimal JSON document model for the observability exporters.
//
// Every machine-readable artifact this repo emits (metrics snapshots,
// Chrome trace files, BENCH_*.json trajectories, bench_report summaries)
// goes through one writer with correct string escaping, and the test suite
// re-parses those artifacts with the same parser to pin well-formedness.
// This is a document model, not a streaming parser: artifacts here are
// megabytes at most.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/error.h"

namespace fs::obs::json {

class Value;
using Array = std::vector<Value>;
/// std::map keeps exports deterministic (sorted keys) across runs.
using Object = std::map<std::string, Value>;

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(double n) : type_(Type::kNumber), number_(n) {}
  Value(int n) : type_(Type::kNumber), number_(n) {}
  Value(long n) : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Value(long long n) : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Value(unsigned n) : type_(Type::kNumber), number_(n) {}
  Value(unsigned long n)
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Value(unsigned long long n)
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Value(const char* s) : type_(Type::kString), string_(s) {}
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Value(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Value(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors throw ParseError on a type mismatch so schema
  /// validators report what was wrong instead of crashing.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object member lookup; throws ParseError when absent or not an object.
  const Value& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Serializes with full string escaping. indent 0 = compact single line;
  /// indent > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Escapes a string body for embedding between JSON quotes (", \, control
/// characters). Exposed for the exporters that stream text directly.
std::string escape(const std::string& raw);

/// Parses a complete JSON document; throws fs::ParseError with an offset on
/// malformed input. Accepts the JSON subset this repo emits (no \u surrogate
/// pairs are *generated*, but \uXXXX escapes are decoded).
Value parse(const std::string& text);

/// Writes `value` to `path` (pretty-printed), fsync-free; throws IoError on
/// failure. A trailing newline is appended.
void write_file(const std::string& path, const Value& value, int indent = 2);

}  // namespace fs::obs::json
