#include "obs/trace.h"

#include <ctime>

#include "obs/metrics.h"
#include "util/logging.h"

namespace fs::obs {

namespace {

/// Per-thread nesting depth for hierarchical spans.
thread_local int t_span_depth = 0;

/// Small dense per-thread ids (Chrome traces key rows on tid).
std::uint32_t this_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Thread CPU time in microseconds (0 where unavailable).
double thread_cpu_us() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) * 1e6 +
           static_cast<double>(ts.tv_nsec) * 1e-3;
#endif
  return 0.0;
}

}  // namespace

double trace_now_us() { return util::monotonic_seconds() * 1e6; }

void Tracer::record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void Tracer::counter(const std::string& name, double value) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.phase = 'C';
  event.ts_us = trace_now_us();
  event.tid = this_thread_id();
  event.args.emplace_back("value", value);
  record(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::map<std::string, Tracer::Aggregate> Tracer::aggregate() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, Aggregate> out;
  for (const TraceEvent& event : events_) {
    if (event.phase != 'X') continue;
    Aggregate& agg = out[event.name];
    ++agg.count;
    agg.wall_ms += event.dur_us * 1e-3;
    agg.cpu_ms += event.cpu_us * 1e-3;
  }
  return out;
}

json::Value Tracer::to_chrome_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Array trace_events;
  trace_events.reserve(events_.size() + 1);
  {
    // Process-name metadata event so viewers label the single row usefully.
    json::Object meta;
    meta["name"] = "process_name";
    meta["ph"] = "M";
    meta["pid"] = 1;
    meta["tid"] = 0;
    json::Object args;
    args["name"] = "friendseeker";
    meta["args"] = std::move(args);
    trace_events.emplace_back(std::move(meta));
  }
  for (const TraceEvent& event : events_) {
    json::Object entry;
    entry["name"] = event.name;
    entry["ph"] = std::string(1, event.phase);
    entry["ts"] = event.ts_us;
    entry["pid"] = 1;
    entry["tid"] = event.tid;
    if (event.phase == 'X') entry["dur"] = event.dur_us;
    json::Object args;
    if (event.phase == 'X') {
      args["cpu_us"] = event.cpu_us;
      args["depth"] = event.depth;
    }
    for (const auto& [key, value] : event.args) args[key] = value;
    if (!args.empty()) entry["args"] = std::move(args);
    trace_events.emplace_back(std::move(entry));
  }
  json::Object root;
  root["traceEvents"] = std::move(trace_events);
  root["displayTimeUnit"] = "ms";
  return json::Value(std::move(root));
}

void Tracer::write_chrome_json(const std::string& path) const {
  json::write_file(path, to_chrome_json(), 1);
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

// ---- Span --------------------------------------------------------------

Span::Span(const char* name)
    : name_(name), wall_start_(clock::now()) {
  if (!tracer().enabled()) return;
  recording_ = true;
  cpu_start_us_ = thread_cpu_us();
  depth_ = t_span_depth++;
}

double Span::seconds() const {
  return std::chrono::duration<double>(clock::now() - wall_start_).count();
}

void Span::arg(const char* key, double value) {
  if (recording_ && !ended_) args_.emplace_back(key, value);
}

void Span::end() {
  if (ended_) return;
  ended_ = true;
  const double dur_s = seconds();
  if (recording_) {
    --t_span_depth;
    TraceEvent event;
    event.name = name_;
    event.phase = 'X';
    event.dur_us = dur_s * 1e6;
    event.ts_us = trace_now_us() - event.dur_us;
    event.cpu_us = thread_cpu_us() - cpu_start_us_;
    event.depth = depth_;
    event.tid = this_thread_id();
    event.args = std::move(args_);
    tracer().record(std::move(event));
  }

  // Span timings mirror into the registry so a metrics-only run still
  // covers every phase.
  if (metrics_enabled())
    metrics()
        .histogram(std::string("span.") + name_ + "_ms",
                   default_duration_buckets_ms(), {},
                   "wall-time distribution of the span")
        .observe(dur_s * 1e3);
}

Span::~Span() { end(); }

}  // namespace fs::obs
