// Hierarchical RAII trace spans with Chrome trace_event export.
//
//   FS_SPAN("phase2.iteration");            // records the enclosing scope
//   fs::obs::Span span("core.joc.build");   // named handle: args, seconds()
//
// A Span measures wall time always (it doubles as the repo's stopwatch — one
// timing idiom) and, when the global Tracer is enabled, also thread CPU time
// and its nesting depth; on destruction it records a Chrome "X" (complete)
// event. With the tracer disabled a span is two steady_clock reads and
// nothing else — no allocation, no locking — so spans can stay compiled into
// release binaries.
//
// The exported file loads in chrome://tracing and Perfetto: one "X" event
// per span (ts/dur in microseconds since process start), "C" counter events
// for time series (autoencoder loss, edge churn), and span durations are
// mirrored into the metrics registry as "span.<name>_ms" histograms when
// metrics are enabled.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace fs::obs {

struct TraceEvent {
  std::string name;
  char phase = 'X';   // 'X' complete span | 'C' counter sample
  double ts_us = 0.0;  // microseconds since process start (monotonic)
  double dur_us = 0.0;
  double cpu_us = 0.0;  // thread CPU time consumed inside the span
  int depth = 0;        // nesting depth at entry (0 = top level)
  std::uint32_t tid = 0;
  std::vector<std::pair<std::string, double>> args;
};

class Tracer {
 public:
  void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  void disable() noexcept {
    enabled_.store(false, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  void record(TraceEvent event);

  /// Records a 'C' counter sample (a time-series point) when enabled.
  void counter(const std::string& name, double value);

  std::vector<TraceEvent> events() const;
  std::size_t event_count() const;
  void clear();

  /// Wall/CPU totals per span name — the per-stage rollup perf_bench and
  /// the CLI summary consume.
  struct Aggregate {
    std::uint64_t count = 0;
    double wall_ms = 0.0;
    double cpu_ms = 0.0;
  };
  std::map<std::string, Aggregate> aggregate() const;

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} — the Chrome
  /// trace_event JSON object format.
  json::Value to_chrome_json() const;
  void write_chrome_json(const std::string& path) const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// The process-wide tracer all spans record into.
Tracer& tracer();

/// Microseconds since process start on the shared monotonic epoch
/// (util::monotonic_seconds * 1e6).
double trace_now_us();

class Span {
 public:
  /// `name` must outlive the span (string literals in practice).
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Wall seconds since construction; works with the tracer disabled, so a
  /// Span is also the repo's stopwatch.
  double seconds() const;
  double milliseconds() const { return seconds() * 1e3; }

  /// Attaches a numeric argument shown in the trace viewer's args pane.
  /// No-op when the tracer is disabled.
  void arg(const char* key, double value);

  /// Ends the span early (records the event now); the destructor becomes a
  /// no-op.
  void end();

 private:
  using clock = std::chrono::steady_clock;

  const char* name_;
  clock::time_point wall_start_;
  double cpu_start_us_ = 0.0;
  int depth_ = 0;
  bool recording_ = false;  // tracer was enabled at construction
  bool ended_ = false;
  std::vector<std::pair<std::string, double>> args_;
};

#define FS_OBS_CONCAT_INNER(a, b) a##b
#define FS_OBS_CONCAT(a, b) FS_OBS_CONCAT_INNER(a, b)
/// Traces the enclosing scope under `name` (anonymous local Span).
#define FS_SPAN(name) \
  ::fs::obs::Span FS_OBS_CONCAT(fs_obs_span_, __LINE__)(name)

}  // namespace fs::obs
