#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace fs::obs::json {

namespace {

[[noreturn]] void type_error(const char* wanted, Type got) {
  static const char* const kNames[] = {"null",   "bool",  "number",
                                       "string", "array", "object"};
  throw ParseError(std::string("json: expected ") + wanted + ", got " +
                   kNames[static_cast<int>(got)]);
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const Array& Value::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const Object& Value::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

Array& Value::as_array() {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

Object& Value::as_object() {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

const Value& Value::at(const std::string& key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end())
    throw ParseError("json: missing key '" + key + "'");
  return it->second;
}

bool Value::contains(const std::string& key) const {
  return is_object() && object_.count(key) > 0;
}

std::string escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (const char ch : raw) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, double v) {
  // JSON has no NaN/Inf; they surface as null so a consumer sees "missing"
  // instead of a parse failure.
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // Integers (counters, counts) print exactly; everything else round-trips
  // through %.17g.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

void append_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, number_); break;
    case Type::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const Value& v : array_) {
        if (!first) out += ',';
        first = false;
        append_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      append_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, v] : object_) {
        if (!first) out += ',';
        first = false;
        append_indent(out, indent, depth + 1);
        out += '"';
        out += escape(key);
        out += "\":";
        if (indent > 0) out += ' ';
        v.dump_to(out, indent, depth + 1);
      }
      append_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---- parser ------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch) fail(std::string("expected '") + ch + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char ch = peek();
    if (ch == '{') return parse_object();
    if (ch == '[') return parse_array();
    if (ch == '"') return Value(parse_string());
    if (ch == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Value(true);
    }
    if (ch == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Value(false);
    }
    if (ch == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Value(nullptr);
    }
    return parse_number();
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char ch = peek();
      if (ch == ',') {
        ++pos_;
        continue;
      }
      if (ch == '}') {
        ++pos_;
        return Value(std::move(obj));
      }
      fail("expected ',' or '}'");
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char ch = peek();
      if (ch == ',') {
        ++pos_;
        continue;
      }
      if (ch == ']') {
        ++pos_;
        return Value(std::move(arr));
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (static_cast<unsigned char>(ch) < 0x20)
        fail("raw control character in string");
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char hex = text_[pos_++];
            code <<= 4;
            if (hex >= '0' && hex <= '9') code |= hex - '0';
            else if (hex >= 'a' && hex <= 'f') code |= hex - 'a' + 10;
            else if (hex >= 'A' && hex <= 'F') code |= hex - 'A' + 10;
            else fail("bad \\u escape digit");
          }
          // UTF-8 encode the code point (BMP only; the writer never emits
          // surrogate pairs).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + token + "'");
    return Value(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

void write_file(const std::string& path, const Value& value, int indent) {
  std::ofstream out(path);
  if (!out) throw IoError("json::write_file: cannot open " + path);
  out << value.dump(indent) << '\n';
  if (!out.flush()) throw IoError("json::write_file: write failed for " + path);
}

}  // namespace fs::obs::json
