#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace fs::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

/// Atomic max / add for doubles via CAS (atomic<double>::fetch_add is C++20
/// but not universally lock-free; the CAS loop is portable and contention
/// here is negligible).
void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed))
    ;
}

void atomic_max(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (cur < v &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed))
    ;
}

std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void Gauge::set_max(double v) noexcept { atomic_max(value_, v); }

// ---- Histogram ---------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (bounds_[i] <= bounds_[i - 1])
      throw std::invalid_argument(
          "Histogram: bucket bounds must be strictly increasing");
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // == size() -> overflow
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    out[i] = counts_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::vector<std::uint64_t> buckets = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;

  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (buckets[i] == 0) continue;
    // Overflow bucket: no finite upper bound, clamp to the largest bound.
    if (i == bounds_.size()) return bounds_.back();
    const double upper = bounds_[i];
    const double lower = i == 0 ? std::min(0.0, upper) : bounds_[i - 1];
    const double before = static_cast<double>(cumulative - buckets[i]);
    const double within =
        (rank - before) / static_cast<double>(buckets[i]);
    return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
  }
  return bounds_.back();
}

std::vector<double> default_duration_buckets_ms() {
  // 0.25 ms .. ~2 min, x2 per bucket: 20 buckets cover a JOC row batch up
  // to a full phase.
  std::vector<double> bounds;
  double b = 0.25;
  for (int i = 0; i < 20; ++i) {
    bounds.push_back(b);
    b *= 2.0;
  }
  return bounds;
}

// ---- MetricsRegistry ---------------------------------------------------

template <typename T, typename... Args>
T& MetricsRegistry::resolve(std::map<Key, std::unique_ptr<T>>& store,
                            const std::string& name, const Labels& labels,
                            const std::string& help, char type,
                            Args&&... args) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = families_[name];
  if (family.type == '?') {
    family.type = type;
    family.help = help;
  } else if (family.type != type) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered with another type");
  } else if (family.help.empty() && !help.empty()) {
    family.help = help;
  }
  auto& slot = store[Key{name, std::move(sorted)}];
  if (!slot) slot = std::make_unique<T>(std::forward<Args>(args)...);
  return *slot;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels,
                                  const std::string& help) {
  return resolve(counters_, name, labels, help, 'c');
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels,
                              const std::string& help) {
  return resolve(gauges_, name, labels, help, 'g');
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& upper_bounds,
                                      const Labels& labels,
                                      const std::string& help) {
  return resolve(histograms_, name, labels, help, 'h', upper_bounds);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  families_.clear();
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

// ---- Prometheus export -------------------------------------------------

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
    out += ok ? ch : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

std::string prometheus_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char ch : value) {
    if (ch == '\\') out += "\\\\";
    else if (ch == '"') out += "\\\"";
    else if (ch == '\n') out += "\\n";
    else out += ch;
  }
  return out;
}

std::string prometheus_escape_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char ch : help) {
    if (ch == '\\') out += "\\\\";
    else if (ch == '\n') out += "\\n";
    else out += ch;
  }
  return out;
}

namespace {

std::string label_block(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += prometheus_name(k);
    out += "=\"";
    out += prometheus_escape_label(v);
    out += '"';
  }
  out += '}';
  return out;
}

/// Labels plus one extra pair (histogram "le"), keeping label order.
std::string label_block_with(const Labels& labels, const std::string& key,
                             const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return label_block(extended);
}

json::Object labels_json(const Labels& labels) {
  json::Object out;
  for (const auto& [k, v] : labels) out[k] = v;
  return out;
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream oss;
  std::string last_family;
  const auto header = [&](const std::string& name, const char* type) {
    if (name == last_family) return;
    last_family = name;
    const auto fam = families_.find(name);
    if (fam != families_.end() && !fam->second.help.empty())
      oss << "# HELP " << prometheus_name(name) << ' '
          << prometheus_escape_help(fam->second.help) << '\n';
    oss << "# TYPE " << prometheus_name(name) << ' ' << type << '\n';
  };

  for (const auto& [key, counter] : counters_) {
    header(key.first, "counter");
    oss << prometheus_name(key.first) << label_block(key.second) << ' '
        << counter->value() << '\n';
  }
  last_family.clear();
  for (const auto& [key, gauge] : gauges_) {
    header(key.first, "gauge");
    oss << prometheus_name(key.first) << label_block(key.second) << ' '
        << format_double(gauge->value()) << '\n';
  }
  last_family.clear();
  for (const auto& [key, histogram] : histograms_) {
    header(key.first, "histogram");
    const std::string name = prometheus_name(key.first);
    const std::vector<std::uint64_t> buckets = histogram->bucket_counts();
    const std::vector<double>& bounds = histogram->bounds();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      cumulative += buckets[i];
      const std::string le =
          i < bounds.size() ? format_double(bounds[i]) : "+Inf";
      oss << name << "_bucket" << label_block_with(key.second, "le", le)
          << ' ' << cumulative << '\n';
    }
    oss << name << "_sum" << label_block(key.second) << ' '
        << format_double(histogram->sum()) << '\n';
    oss << name << "_count" << label_block(key.second) << ' '
        << histogram->count() << '\n';
  }
  return oss.str();
}

json::Value MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Array counters;
  for (const auto& [key, counter] : counters_) {
    json::Object entry;
    entry["name"] = key.first;
    if (!key.second.empty()) entry["labels"] = labels_json(key.second);
    entry["value"] = counter->value();
    counters.emplace_back(std::move(entry));
  }
  json::Array gauges;
  for (const auto& [key, gauge] : gauges_) {
    json::Object entry;
    entry["name"] = key.first;
    if (!key.second.empty()) entry["labels"] = labels_json(key.second);
    entry["value"] = gauge->value();
    gauges.emplace_back(std::move(entry));
  }
  json::Array histograms;
  for (const auto& [key, histogram] : histograms_) {
    json::Object entry;
    entry["name"] = key.first;
    if (!key.second.empty()) entry["labels"] = labels_json(key.second);
    entry["count"] = histogram->count();
    entry["sum"] = histogram->sum();
    json::Object quantiles;
    quantiles["p50"] = histogram->quantile(0.50);
    quantiles["p95"] = histogram->quantile(0.95);
    quantiles["p99"] = histogram->quantile(0.99);
    entry["quantiles"] = std::move(quantiles);
    json::Array buckets;
    const std::vector<std::uint64_t> counts = histogram->bucket_counts();
    const std::vector<double>& bounds = histogram->bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      json::Object bucket;
      bucket["le"] = i < bounds.size()
                         ? json::Value(bounds[i])
                         : json::Value("inf");
      bucket["count"] = counts[i];
      buckets.emplace_back(std::move(bucket));
    }
    entry["buckets"] = std::move(buckets);
    histograms.emplace_back(std::move(entry));
  }
  json::Object root;
  root["counters"] = std::move(counters);
  root["gauges"] = std::move(gauges);
  root["histograms"] = std::move(histograms);
  return json::Value(std::move(root));
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace fs::obs
