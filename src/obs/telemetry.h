// Glue between the observability registry and the rest of the runtime:
// file exporters, bridges from pre-existing sinks (Diagnostics,
// ExecutionContext budgets, DegradationReport), and a periodic snapshot
// writer so a killed run still leaves telemetry on disk.
#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/runtime.h"

namespace fs::obs {

/// The Prometheus twin of a JSON metrics path: extension replaced by
/// ".prom" ("m.json" -> "m.prom"; no extension -> appended).
std::string prometheus_path_for(const std::string& json_path);

/// Writes the registry snapshot to `json_path` (JSON) and its
/// prometheus_path_for twin (text exposition format). Throws IoError.
void write_metrics_files(const MetricsRegistry& registry,
                         const std::string& json_path);

/// Mirrors a run's diagnostics into gauges:
///   diagnostics.events{severity=...} and diagnostics.events_total.
void bridge_diagnostics(const util::Diagnostics& diagnostics,
                        MetricsRegistry& registry = metrics());

/// Mirrors an ExecutionContext's budget accounting into gauges:
///   runtime.memory.charged_bytes, runtime.memory.peak_bytes,
///   runtime.deadline.remaining_seconds (-1 when unlimited).
void bridge_execution(const runtime::ExecutionContext& context,
                      MetricsRegistry& registry = metrics());

/// Mirrors a DegradationReport into gauges:
///   pipeline.degraded_phases and pipeline.degradations{reason=...}.
void bridge_degradation(const runtime::DegradationReport& report,
                        MetricsRegistry& registry = metrics());

/// Background thread that rewrites the metrics files every `interval_sec`
/// until stopped (and once on stop), bounding how much telemetry a
/// SIGKILLed run loses. Write failures are logged once and the writer keeps
/// going — losing a snapshot must never fail the run.
class PeriodicSnapshotWriter {
 public:
  PeriodicSnapshotWriter(std::string json_path, double interval_sec,
                         MetricsRegistry& registry = metrics());
  ~PeriodicSnapshotWriter();

  PeriodicSnapshotWriter(const PeriodicSnapshotWriter&) = delete;
  PeriodicSnapshotWriter& operator=(const PeriodicSnapshotWriter&) = delete;

  /// Stops the thread and writes a final snapshot. Idempotent.
  void stop();

 private:
  void run(double interval_sec);
  void write_once() noexcept;

  std::string json_path_;
  MetricsRegistry& registry_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool warned_ = false;
  std::thread worker_;
};

}  // namespace fs::obs
