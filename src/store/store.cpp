#include "store/store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include "util/binary_io.h"
#include "util/error.h"

namespace fs::store {

namespace {

[[noreturn]] void corrupt(const std::string& path, const std::string& what) {
  throw CorruptStore(path + ": " + what);
}

}  // namespace

std::uint64_t sort_fingerprint(std::span<const std::uint32_t> cells,
                               std::span<const std::uint32_t> slots) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (v >> shift) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  for (std::size_t i = 0; i < cells.size(); ++i) {
    mix(cells[i]);
    mix(slots[i]);
  }
  return h;
}

MappedStore MappedStore::open(const std::string& path, Verify verify) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0)
    throw IoError("store open '" + path + "': " + std::strerror(errno));
  struct stat st{};
  if (fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw IoError("store fstat '" + path + "': " + std::strerror(err));
  }
  const auto bytes = static_cast<std::size_t>(st.st_size);
  if (bytes < kHeaderBytes) {
    ::close(fd);
    corrupt(path, "file shorter than the fixed header (" +
                      std::to_string(bytes) + " bytes)");
  }
  void* base = mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping outlives the descriptor; closing now keeps the fd budget
  // flat no matter how many stores a sharded run opens.
  ::close(fd);
  if (base == MAP_FAILED)
    throw IoError("store mmap '" + path + "': " + std::strerror(errno));

  MappedStore out;
  out.base_ = base;
  out.bytes_ = bytes;
  out.path_ = path;
  const StoreHeader& h = out.header();
  // Layout can only be computed once the counts are trusted; the header CRC
  // check inside validate() runs before anything derived is used.
  out.layout_ = StoreLayout::compute(h.row_count, h.poi_count, h.edge_count);
  try {
    out.validate(verify);
  } catch (...) {
    // `out` would unmap on destruction anyway, but rethrow explicitly to
    // keep the error the caller sees (CorruptStore), not a move surprise.
    throw;
  }
  return out;
}

void MappedStore::validate(Verify verify) const {
  const StoreHeader& h = header();
  if (h.magic != kMagic) corrupt(path_, "bad magic (not a store file)");
  if (h.endian != kEndianMarker)
    corrupt(path_, "foreign endianness (store written on another machine?)");
  if (h.layout_version != kLayoutVersion)
    corrupt(path_, "layout version " + std::to_string(h.layout_version) +
                       " != supported " + std::to_string(kLayoutVersion));
  if (h.header_bytes != kHeaderBytes)
    corrupt(path_, "header size mismatch");
  const std::uint32_t got = util::crc32(base_, kHeaderBytes - sizeof(std::uint32_t));
  if (got != h.header_crc)
    corrupt(path_, "header CRC mismatch (bit rot or torn write)");
  if (h.block_bytes != kBlockBytes)
    corrupt(path_, "unsupported checksum block size");
  // Counts are now trusted; the exact-size equation catches truncation and
  // trailing garbage alike.
  if (bytes_ != layout_.file_bytes)
    corrupt(path_, "file is " + std::to_string(bytes_) + " bytes, layout says " +
                       std::to_string(layout_.file_bytes) + " (truncated?)");
  if (verify == Verify::kHeaderOnly) return;

  // Checksum section first (it vouches for the block CRCs), then each
  // payload block against its CRC, then the semantic sort fingerprint.
  const auto* crcs = ptr<std::uint32_t>(layout_.crc_off);
  const std::uint32_t section_crc =
      util::crc32(crcs, layout_.block_count * sizeof(std::uint32_t));
  if (section_crc != crcs[layout_.block_count])
    corrupt(path_, "checksum-section CRC mismatch");
  const char* payload = static_cast<const char*>(base_) + kHeaderBytes;
  const std::size_t payload_bytes = layout_.payload_end - kHeaderBytes;
  for (std::size_t b = 0; b < layout_.block_count; ++b) {
    const std::size_t off = b * kBlockBytes;
    const std::size_t len = std::min(kBlockBytes, payload_bytes - off);
    if (util::crc32(payload + off, len) != crcs[b])
      corrupt(path_, "payload block " + std::to_string(b) + " CRC mismatch");
  }
  const auto cell_col = cells();
  const auto slot_col = slots();
  for (std::size_t i = 1; i < cell_col.size(); ++i) {
    if (cell_col[i] < cell_col[i - 1] ||
        (cell_col[i] == cell_col[i - 1] && slot_col[i] < slot_col[i - 1]))
      corrupt(path_, "rows not sorted by (cell, slot) at row " +
                         std::to_string(i));
  }
  if (sort_fingerprint(cell_col, slot_col) != h.sort_fingerprint)
    corrupt(path_, "sort fingerprint mismatch");
}

MappedStore::MappedStore(MappedStore&& other) noexcept
    : base_(other.base_), bytes_(other.bytes_), layout_(other.layout_),
      path_(std::move(other.path_)) {
  other.base_ = nullptr;
  other.bytes_ = 0;
}

MappedStore& MappedStore::operator=(MappedStore&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) munmap(base_, bytes_);
    base_ = other.base_;
    bytes_ = other.bytes_;
    layout_ = other.layout_;
    path_ = std::move(other.path_);
    other.base_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

MappedStore::~MappedStore() {
  if (base_ != nullptr) munmap(base_, bytes_);
}

data::LoadReport MappedStore::load_report() const {
  const StoreHeader& h = header();
  data::LoadReport r;
  std::size_t i = 0;
  const auto next = [&] { return static_cast<std::size_t>(h.census[i++]); };
  r.checkin_lines = next();
  r.accepted_checkins = next();
  r.short_lines = next();
  r.bad_timestamps = next();
  r.bad_numbers = next();
  r.out_of_range_coords = next();
  r.edge_lines = next();
  r.accepted_edges = next();
  r.short_edge_lines = next();
  r.bad_edge_numbers = next();
  r.users_below_activity_floor = next();
  r.users_dropped_by_cap = next();
  return r;
}

data::Dataset MappedStore::to_dataset() const {
  const std::size_t n = row_count();
  const std::size_t p = poi_count();
  std::vector<data::Poi> poi_table(p);
  const auto plat = poi_lats();
  const auto plng = poi_lngs();
  const auto pcat = poi_categories();
  for (std::size_t i = 0; i < p; ++i)
    poi_table[i] = {{plat[i], plng[i]}, pcat[i]};

  std::vector<data::CheckIn> rows(n);
  const auto user_col = users();
  const auto poi_col = pois();
  const auto time_col = times();
  const auto lat_col = lats();
  const auto lng_col = lngs();
  for (std::size_t i = 0; i < n; ++i)
    rows[i] = {user_col[i], poi_col[i], time_col[i], {lat_col[i], lng_col[i]}};

  graph::Graph friendships(user_count());
  const auto edge_ids = edges();
  for (std::size_t i = 0; i < edge_ids.size(); i += 2)
    friendships.add_edge(edge_ids[i], edge_ids[i + 1]);
  return data::Dataset::build(user_count(), std::move(poi_table),
                              std::move(rows), std::move(friendships));
}

std::pair<std::size_t, std::size_t> MappedStore::rows_for_grids(
    std::uint32_t grid_lo, std::uint32_t grid_hi) const {
  const auto cell_col = cells();
  const auto lo =
      std::lower_bound(cell_col.begin(), cell_col.end(), grid_lo);
  const auto hi =
      std::lower_bound(cell_col.begin(), cell_col.end(), grid_hi);
  return {static_cast<std::size_t>(lo - cell_col.begin()),
          static_cast<std::size_t>(hi - cell_col.begin())};
}

std::size_t MappedStore::resident_bytes() const {
  const long page_long = sysconf(_SC_PAGESIZE);
  const std::size_t page = page_long > 0 ? static_cast<std::size_t>(page_long)
                                         : 4096;
  const std::size_t pages = (bytes_ + page - 1) / page;
  std::vector<unsigned char> vec(pages);
  if (mincore(base_, bytes_, vec.data()) != 0) return bytes_;
  std::size_t resident = 0;
  for (unsigned char flags : vec) resident += (flags & 1u);
  return resident * page;
}

void MappedStore::release_pages() const {
  // Best effort: MAP_PRIVATE read-only pages are clean, so DONTNEED just
  // drops them; a failure (old kernel, locked memory) only costs accuracy
  // of the resident estimate, never correctness.
  madvise(base_, bytes_, MADV_DONTNEED);
}

}  // namespace fs::store
