#include "store/convert.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <vector>

#include "geo/quadtree.h"
#include "store/format.h"
#include "store/store.h"
#include "util/binary_io.h"
#include "util/error.h"
#include "util/failpoint.h"

namespace fs::store {

namespace {

/// Serializes the whole store image in memory first: the stores this
/// converter targets are bounded by the Dataset that was just materialized
/// anyway, and a single contiguous buffer makes the CRC block pass and the
/// exact-size invariant trivial to get right.
std::vector<char> build_image(const data::Dataset& ds,
                              const data::LoadReport& report,
                              const ConvertOptions& options,
                              ConvertStats& stats) {
  const std::size_t n = ds.checkin_count();
  if (n == 0)
    throw ParseError("store convert: dataset has no check-ins");
  const geo::QuadtreeDivision division(ds.poi_coordinates(), options.sigma);
  const geo::TimeSlotting slots(ds.window_begin(), ds.window_end(),
                                options.tau_seconds);

  // Row order: sort indices by (cell, slot, user, time, poi) — a total
  // order over distinct records, so the store bytes are a pure function of
  // the dataset, not of std::sort's internals.
  const std::vector<data::CheckIn>& checkins = ds.checkins();
  // Cells bin the raw check-in coordinate — the same convention CellIndex
  // uses — not the POI's canonical location: SNAP records at one POI can
  // carry slightly different coordinates, and the store must agree with the
  // attack's own binning for shard row ranges to be trustworthy.
  std::vector<std::uint32_t> cell_of(n), slot_of(n);
  for (std::size_t i = 0; i < n; ++i) {
    cell_of[i] =
        static_cast<std::uint32_t>(division.cell_of(checkins[i].location));
    slot_of[i] = static_cast<std::uint32_t>(slots.slot_of(checkins[i].time));
  }
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (cell_of[a] != cell_of[b]) return cell_of[a] < cell_of[b];
              if (slot_of[a] != slot_of[b]) return slot_of[a] < slot_of[b];
              const data::CheckIn& x = checkins[a];
              const data::CheckIn& y = checkins[b];
              if (x.user != y.user) return x.user < y.user;
              if (x.time != y.time) return x.time < y.time;
              return x.poi < y.poi;
            });

  const std::vector<graph::Edge> edge_list = ds.friendships().edges();
  const StoreLayout layout =
      StoreLayout::compute(n, ds.poi_count(), edge_list.size());
  std::vector<char> image(layout.file_bytes, 0);

  StoreHeader header;
  header.row_count = n;
  header.user_count = ds.user_count();
  header.poi_count = ds.poi_count();
  header.edge_count = edge_list.size();
  header.window_begin = ds.window_begin();
  header.window_end = ds.window_end();
  header.grid_count = division.cell_count();
  header.slot_count = slots.slot_count();
  header.sigma = options.sigma;
  header.tau_seconds = options.tau_seconds;
  const std::uint64_t census[kCensusCounters] = {
      report.checkin_lines, report.accepted_checkins, report.short_lines,
      report.bad_timestamps, report.bad_numbers, report.out_of_range_coords,
      report.edge_lines, report.accepted_edges, report.short_edge_lines,
      report.bad_edge_numbers, report.users_below_activity_floor,
      report.users_dropped_by_cap};
  std::memcpy(header.census, census, sizeof(census));

  const auto col = [&image](std::size_t off) { return image.data() + off; };
  auto* user_col = reinterpret_cast<std::uint32_t*>(col(layout.user_off));
  auto* poi_col = reinterpret_cast<std::uint32_t*>(col(layout.poi_off));
  auto* cell_col = reinterpret_cast<std::uint32_t*>(col(layout.cell_off));
  auto* slot_col = reinterpret_cast<std::uint32_t*>(col(layout.slot_off));
  auto* time_col = reinterpret_cast<std::int64_t*>(col(layout.time_off));
  auto* lat_col = reinterpret_cast<double*>(col(layout.lat_off));
  auto* lng_col = reinterpret_cast<double*>(col(layout.lng_off));
  for (std::size_t i = 0; i < n; ++i) {
    const data::CheckIn& c = checkins[order[i]];
    user_col[i] = c.user;
    poi_col[i] = c.poi;
    cell_col[i] = cell_of[order[i]];
    slot_col[i] = slot_of[order[i]];
    time_col[i] = c.time;
    lat_col[i] = c.location.lat;
    lng_col[i] = c.location.lng;
  }
  header.sort_fingerprint =
      sort_fingerprint({cell_col, n}, {slot_col, n});

  auto* plat = reinterpret_cast<double*>(col(layout.poi_lat_off));
  auto* plng = reinterpret_cast<double*>(col(layout.poi_lng_off));
  auto* pcat = reinterpret_cast<std::uint16_t*>(col(layout.poi_cat_off));
  for (std::size_t i = 0; i < ds.poi_count(); ++i) {
    const data::Poi& p = ds.poi(static_cast<data::PoiId>(i));
    plat[i] = p.location.lat;
    plng[i] = p.location.lng;
    pcat[i] = p.category;
  }
  auto* edge_col = reinterpret_cast<std::uint32_t*>(col(layout.edges_off));
  for (std::size_t i = 0; i < edge_list.size(); ++i) {
    edge_col[2 * i] = edge_list[i].a;
    edge_col[2 * i + 1] = edge_list[i].b;
  }

  // Payload block CRCs, then the CRC over the CRC section itself.
  auto* crcs = reinterpret_cast<std::uint32_t*>(col(layout.crc_off));
  const char* payload = image.data() + kHeaderBytes;
  const std::size_t payload_bytes = layout.payload_end - kHeaderBytes;
  for (std::size_t b = 0; b < layout.block_count; ++b) {
    const std::size_t off = b * kBlockBytes;
    const std::size_t len = std::min(kBlockBytes, payload_bytes - off);
    crcs[b] = util::crc32(payload + off, len);
  }
  crcs[layout.block_count] =
      util::crc32(crcs, layout.block_count * sizeof(std::uint32_t));

  header.header_crc =
      util::crc32(&header, kHeaderBytes - sizeof(std::uint32_t));
  std::memcpy(image.data(), &header, kHeaderBytes);

  stats.rows = n;
  stats.users = ds.user_count();
  stats.pois = ds.poi_count();
  stats.edges = edge_list.size();
  stats.grid_count = division.cell_count();
  stats.slot_count = slots.slot_count();
  stats.file_bytes = layout.file_bytes;
  return image;
}

}  // namespace

ConvertStats write_store(const data::Dataset& ds,
                         const data::LoadReport& report,
                         const std::string& path,
                         const ConvertOptions& options) {
  ConvertStats stats;
  const std::vector<char> image = build_image(ds, report, options, stats);

  // Same atomic discipline as checkpoints/snapshots: all-or-nothing via
  // tmp + rename. The two failpoints bracket the rename: `io` simulates a
  // failed write (clean up the tmp, surface IoError); `kill` simulates a
  // crash after the payload hit disk but before the rename (leave the tmp
  // exactly as a dead process would — the invariant chaos_soak checks is
  // that the *final* path never holds a store that validates).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || util::failpoint::fail("store.convert.io")) {
      out.close();
      std::remove(tmp.c_str());
      throw IoError("store convert: cannot write '" + tmp + "'");
    }
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw IoError("store convert: short write to '" + tmp + "'");
    }
  }
  if (!util::fsync_path(tmp)) {
    std::remove(tmp.c_str());
    throw IoError("store convert: fsync '" + tmp + "' failed");
  }
  if (util::failpoint::fail("store.convert.kill"))
    throw util::failpoint::InjectedKill(
        "store.convert.kill: simulated crash before rename of '" + tmp + "'");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("store convert: rename to '" + path + "' failed");
  }
  util::fsync_parent_dir(path);
  return stats;
}

ConvertStats convert_snap_to_store(const std::string& checkins_path,
                                   const std::string& edges_path,
                                   const std::string& store_path,
                                   const ConvertOptions& options,
                                   data::LoadReport* report) {
  data::LoadReport local;
  data::LoadReport& census = report != nullptr ? *report : local;
  const data::Dataset ds = data::load_checkins_snap(
      checkins_path, edges_path, options.load, &census);
  return write_store(ds, census, store_path, options);
}

}  // namespace fs::store
