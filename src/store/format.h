// On-disk layout of the columnar check-in store (`.fsst`).
//
// The store is the out-of-core twin of data::Dataset: every check-in as
// fixed-width columns, sorted by (cell, slot) so a quadtree shard maps to a
// contiguous row range, memory-mapped read-only at attack time so the
// working set is resident pages, not vectors.
//
//   +--------------------------------------------------------------+
//   | StoreHeader (256 B, fixed)     crc32 over bytes [0, 252)     |
//   +--------------------------------------------------------------+
//   | user  u32[n]  | poi  u32[n] | cell u32[n] | slot u32[n]      |
//   | time  i64[n]  | lat  f64[n] | lng  f64[n]      (row columns) |
//   +--------------------------------------------------------------+
//   | poi_lat f64[p] | poi_lng f64[p] | poi_category u16[p]        |
//   +--------------------------------------------------------------+
//   | edges u32[2*e]   (canonical a<b pairs, sorted)               |
//   +--------------------------------------------------------------+
//   | block_crc u32[ceil(payload/1MiB)] | section_crc u32          |
//   +--------------------------------------------------------------+
//
// Every section starts 64-byte aligned (deterministic padding of zeros), so
// mapped column pointers satisfy any SIMD alignment a kernel may want. All
// offsets are pure functions of the header counts (see StoreLayout), pinned
// by kLayoutVersion: bumping the version is the only way the byte layout
// may change. Integers are host-endian; the endian marker in the header
// rejects files from a foreign-endian machine instead of reading swapped
// numbers.
//
// Integrity: the header carries its own CRC32; the payload (everything
// between the header and the checksum section) is covered by per-1MiB-block
// CRC32s, and the checksum section itself by a final CRC32 — so truncation
// (exact-size check), a flipped bit in any column, and a flipped bit in the
// checksum section are all rejected with fs::CorruptStore before a single
// row is trusted.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fs::store {

inline constexpr std::uint32_t kMagic = 0x54535346u;  // "FSST" little-endian
inline constexpr std::uint32_t kLayoutVersion = 1;
inline constexpr std::uint32_t kEndianMarker = 0x01020304u;
inline constexpr std::size_t kHeaderBytes = 256;
inline constexpr std::size_t kSectionAlign = 64;
/// Granularity of payload checksums. Small enough that verifying a tiny
/// store is cheap, large enough that the checksum section stays negligible
/// (4 B per MiB).
inline constexpr std::size_t kBlockBytes = 1u << 20;
/// Number of quarantine-census counters persisted from data::LoadReport.
inline constexpr std::size_t kCensusCounters = 12;

/// Fixed 256-byte header. Field order and widths are frozen under
/// kLayoutVersion; `reserved` absorbs future fields without moving offsets.
struct StoreHeader {
  std::uint32_t magic = kMagic;
  std::uint32_t layout_version = kLayoutVersion;
  std::uint32_t endian = kEndianMarker;
  std::uint32_t header_bytes = kHeaderBytes;
  std::uint64_t row_count = 0;
  std::uint64_t user_count = 0;
  std::uint64_t poi_count = 0;
  std::uint64_t edge_count = 0;
  std::int64_t window_begin = 0;  // half-open observation window
  std::int64_t window_end = 0;
  std::uint64_t grid_count = 0;   // quadtree leaves at convert time
  std::uint64_t slot_count = 0;
  std::uint64_t sigma = 0;        // division parameters baked into cell/slot
  std::int64_t tau_seconds = 0;
  std::uint64_t block_bytes = kBlockBytes;
  /// FNV-1a over the (cell, slot) sequence in row order: certifies the sort
  /// order the shard planner's binary searches depend on.
  std::uint64_t sort_fingerprint = 0;
  /// data::LoadReport counters in declaration order, so the quarantine
  /// census of the original SNAP load survives the conversion.
  std::uint64_t census[kCensusCounters] = {};
  std::uint8_t reserved[44] = {};
  /// crc32 over the preceding 252 bytes.
  std::uint32_t header_crc = 0;
};
static_assert(sizeof(StoreHeader) == kHeaderBytes,
              "StoreHeader layout is frozen at 256 bytes");

inline constexpr std::size_t align_up(std::size_t offset) {
  return (offset + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

/// Byte offsets of every section, derived purely from the header counts.
/// Writer and reader both call `compute`, so there is exactly one place
/// that knows the layout.
struct StoreLayout {
  std::size_t user_off = 0, poi_off = 0, cell_off = 0, slot_off = 0;
  std::size_t time_off = 0, lat_off = 0, lng_off = 0;
  std::size_t poi_lat_off = 0, poi_lng_off = 0, poi_cat_off = 0;
  std::size_t edges_off = 0;
  std::size_t payload_end = 0;  // first byte after the last data section
  std::size_t crc_off = 0;      // == payload_end (crc section is unaligned)
  std::size_t block_count = 0;  // payload blocks covered by crc_off[]
  std::size_t file_bytes = 0;   // exact expected file size

  static StoreLayout compute(std::uint64_t rows, std::uint64_t pois,
                             std::uint64_t edges) {
    const auto n = static_cast<std::size_t>(rows);
    const auto p = static_cast<std::size_t>(pois);
    const auto e = static_cast<std::size_t>(edges);
    StoreLayout out;
    std::size_t at = kHeaderBytes;
    const auto section = [&at](std::size_t bytes) {
      at = align_up(at);
      const std::size_t off = at;
      at += bytes;
      return off;
    };
    out.user_off = section(n * sizeof(std::uint32_t));
    out.poi_off = section(n * sizeof(std::uint32_t));
    out.cell_off = section(n * sizeof(std::uint32_t));
    out.slot_off = section(n * sizeof(std::uint32_t));
    out.time_off = section(n * sizeof(std::int64_t));
    out.lat_off = section(n * sizeof(double));
    out.lng_off = section(n * sizeof(double));
    out.poi_lat_off = section(p * sizeof(double));
    out.poi_lng_off = section(p * sizeof(double));
    out.poi_cat_off = section(p * sizeof(std::uint16_t));
    out.edges_off = section(2 * e * sizeof(std::uint32_t));
    out.payload_end = at;
    out.crc_off = at;
    const std::size_t payload_bytes = out.payload_end - kHeaderBytes;
    out.block_count = (payload_bytes + kBlockBytes - 1) / kBlockBytes;
    out.file_bytes = out.crc_off +
                     (out.block_count + 1) * sizeof(std::uint32_t);
    return out;
  }
};

}  // namespace fs::store
