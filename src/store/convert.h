// SNAP → columnar store conversion.
//
// Conversion reuses the batch loader end to end, so the store inherits the
// exact quarantine semantics of `--strict`/`--permissive` loading — same
// densification, same activity floor, same census — and then bakes a
// spatial-temporal assignment (quadtree cell, time slot) into every row,
// sorts by (cell, slot), and writes the checksummed columnar file through
// the repo's durability discipline: payload to `<path>.tmp`, fsync, atomic
// rename, parent-dir fsync. A crash at any point leaves either the old
// file or a stray `.tmp` — never a final path that fails validation.
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "data/loader.h"
#include "geo/time_slots.h"

namespace fs::store {

struct ConvertOptions {
  /// Quadtree sigma (max POIs per leaf) for the cell column.
  std::size_t sigma = 45;
  /// Time-slot length (tau) for the slot column.
  geo::Timestamp tau_seconds = geo::kSecondsPerDay;
  /// Loader semantics (strictness, activity floor, user cap, governance);
  /// passed through to load_checkins_snap unchanged.
  data::LoadOptions load;
};

struct ConvertStats {
  std::size_t rows = 0;
  std::size_t users = 0;
  std::size_t pois = 0;
  std::size_t edges = 0;
  std::size_t grid_count = 0;
  std::size_t slot_count = 0;
  std::size_t file_bytes = 0;
};

/// Writes `ds` (+ the load census that produced it) as a store at `path`.
/// The division/slotting is built here from the options, so a convert and
/// a later attack with the same preset agree on the spatial-temporal grid.
ConvertStats write_store(const data::Dataset& ds,
                         const data::LoadReport& report,
                         const std::string& path,
                         const ConvertOptions& options);

/// Full pipeline: SNAP files → loader (quarantine semantics per
/// options.load) → store at `store_path`. Fills `report` when non-null.
ConvertStats convert_snap_to_store(const std::string& checkins_path,
                                   const std::string& edges_path,
                                   const std::string& store_path,
                                   const ConvertOptions& options,
                                   data::LoadReport* report = nullptr);

}  // namespace fs::store
