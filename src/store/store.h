// Memory-mapped read access to a columnar check-in store.
//
// `MappedStore::open` maps the file read-only, validates it (header CRC,
// layout version, exact size, sort fingerprint, per-block payload CRCs —
// see format.h), and exposes the columns as spans over the mapping. Nothing
// is copied until a caller asks for a materialized `Dataset`; until then the
// working set is whatever pages the kernel keeps resident, which
// `resident_bytes()` measures (mincore) and `release_pages()` trims
// (MADV_DONTNEED) — the numbers `--max-memory-mb` accounting charges for a
// store-backed run instead of the file size.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>

#include "data/dataset.h"
#include "data/loader.h"
#include "store/format.h"

namespace fs::store {

enum class Verify {
  /// Header CRC + layout/version/size checks only. O(1) pages touched;
  /// for metadata queries (`stats`) and repeated opens of a store that a
  /// full verify already admitted this run.
  kHeaderOnly,
  /// Everything kHeaderOnly checks, plus the checksum-section CRC, every
  /// payload block CRC, and the (cell, slot) sort fingerprint. Touches every
  /// page once (sequential readahead), then the pages can be dropped again.
  kFull,
};

class MappedStore {
 public:
  /// Maps and validates `path`. Throws fs::IoError if the file cannot be
  /// opened or mapped, fs::CorruptStore if validation fails.
  static MappedStore open(const std::string& path, Verify verify = Verify::kFull);

  MappedStore(MappedStore&& other) noexcept;
  MappedStore& operator=(MappedStore&& other) noexcept;
  MappedStore(const MappedStore&) = delete;
  MappedStore& operator=(const MappedStore&) = delete;
  ~MappedStore();

  const StoreHeader& header() const {
    return *reinterpret_cast<const StoreHeader*>(base_);
  }
  std::size_t row_count() const { return header().row_count; }
  std::size_t user_count() const { return header().user_count; }
  std::size_t poi_count() const { return header().poi_count; }
  std::size_t edge_count() const { return header().edge_count; }
  std::size_t file_bytes() const { return bytes_; }
  const std::string& path() const { return path_; }

  // Row columns, sorted by (cell, slot); all spans have row_count() entries.
  std::span<const std::uint32_t> users() const { return col_u32(layout_.user_off); }
  std::span<const std::uint32_t> pois() const { return col_u32(layout_.poi_off); }
  std::span<const std::uint32_t> cells() const { return col_u32(layout_.cell_off); }
  std::span<const std::uint32_t> slots() const { return col_u32(layout_.slot_off); }
  std::span<const std::int64_t> times() const {
    return {ptr<std::int64_t>(layout_.time_off), row_count()};
  }
  std::span<const double> lats() const { return {ptr<double>(layout_.lat_off), row_count()}; }
  std::span<const double> lngs() const { return {ptr<double>(layout_.lng_off), row_count()}; }

  // POI table, indexable by PoiId.
  std::span<const double> poi_lats() const {
    return {ptr<double>(layout_.poi_lat_off), poi_count()};
  }
  std::span<const double> poi_lngs() const {
    return {ptr<double>(layout_.poi_lng_off), poi_count()};
  }
  std::span<const std::uint16_t> poi_categories() const {
    return {ptr<std::uint16_t>(layout_.poi_cat_off), poi_count()};
  }

  /// Canonical (a < b) friendship pairs, flattened: 2 * edge_count() ids.
  std::span<const std::uint32_t> edges() const {
    return {ptr<std::uint32_t>(layout_.edges_off), 2 * edge_count()};
  }

  /// The quarantine census of the SNAP load this store was converted from.
  data::LoadReport load_report() const;

  /// Materializes the full in-memory Dataset. Dataset::build re-sorts by
  /// (user, time, poi) — a total order over SNAP records — so the result is
  /// byte-identical to loading the original file directly, regardless of
  /// the store's (cell, slot) row order.
  data::Dataset to_dataset() const;

  /// Half-open row range [lo, hi) whose cell lies in [grid_lo, grid_hi).
  /// Valid because rows are sorted by (cell, slot) — certified by the sort
  /// fingerprint at open — so a shard's grids are one contiguous stripe.
  std::pair<std::size_t, std::size_t> rows_for_grids(std::uint32_t grid_lo,
                                                     std::uint32_t grid_hi) const;

  /// Bytes of the mapping currently resident in RAM (mincore census).
  /// Falls back to file size if the kernel refuses the query.
  std::size_t resident_bytes() const;

  /// Advises the kernel the mapping's pages are no longer needed
  /// (MADV_DONTNEED); the next access faults them back in from disk.
  void release_pages() const;

 private:
  MappedStore() = default;
  void validate(Verify verify) const;

  template <typename T>
  const T* ptr(std::size_t offset) const {
    return reinterpret_cast<const T*>(static_cast<const char*>(base_) + offset);
  }
  std::span<const std::uint32_t> col_u32(std::size_t offset) const {
    return {ptr<std::uint32_t>(offset), row_count()};
  }

  void* base_ = nullptr;
  std::size_t bytes_ = 0;
  StoreLayout layout_;
  std::string path_;
};

/// FNV-1a over a (cell, slot) sequence; the writer stamps it into the
/// header, the reader recomputes it under Verify::kFull.
std::uint64_t sort_fingerprint(std::span<const std::uint32_t> cells,
                               std::span<const std::uint32_t> slots);

}  // namespace fs::store
