// Execution-governance layer: deadlines, cooperative cancellation, resource
// budgets, declarative retries, and graceful-degradation reporting.
//
// The pipeline's heavy loops (ingestion, JOC construction, autoencoder
// epochs, SMO passes, phase-2 refinement) are unbounded in the worst case —
// adversarial inputs can make them hang or exhaust memory. Instead of dying,
// a governed run carries an ExecutionContext and:
//
//   * checks a CancellationToken at cooperative cancellation points (wired
//     to SIGINT/SIGTERM by install_signal_handlers), so an interrupted run
//     stops at the next safe boundary with its last checkpoint intact;
//   * enforces a wall-clock Deadline — hard at cancellation points (throws
//     BudgetError), soft at loop boundaries where truncation is meaningful
//     (an autoencoder stopped at epoch 7/18 is a usable model);
//   * accounts an explicit memory estimate for the large allocations (JOC
//     matrix, embeddings, composite features, SVM kernel) against a budget,
//     refusing the allocation with BudgetError instead of OOMing;
//   * records every truncated phase into a DegradationReport so a degraded
//     run is distinguishable from a complete one.
//
// Everything is single-threaded like the rest of the runtime, except
// CancellationToken, which is async-signal-safe (a lock-free atomic flag).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace fs::runtime {

// ---- Cancellation ------------------------------------------------------

/// Cooperative cancellation flag. request() is async-signal-safe.
class CancellationToken {
 public:
  void request() noexcept { requested_.store(true, std::memory_order_relaxed); }
  bool requested() const noexcept {
    return requested_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { requested_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> requested_{false};
};

/// The process-wide token signal handlers trip.
CancellationToken& global_token();

/// Routes SIGINT and SIGTERM to global_token().request(). Idempotent.
void install_signal_handlers();

/// The last signal routed to the global token (0 = none).
int last_signal() noexcept;

// ---- Deadlines ---------------------------------------------------------

/// Wall-clock deadline on the steady clock.
class Deadline {
 public:
  Deadline() = default;  // unlimited

  static Deadline after_seconds(double seconds);
  static Deadline unlimited() { return Deadline(); }

  bool is_unlimited() const { return !at_.has_value(); }
  bool expired() const;
  /// Seconds until expiry; +inf when unlimited, 0 when already expired.
  double remaining_seconds() const;

 private:
  using clock = std::chrono::steady_clock;
  std::optional<clock::time_point> at_;
};

// ---- Execution context -------------------------------------------------

/// Budgets and cancellation for one pipeline run. Default-constructed it is
/// unlimited and non-cancellable, so ungoverned callers pay nothing.
///
/// Two check flavours, by design:
///   * checkpoint(where) — a cooperative cancellation point for loops whose
///     partial output is unusable (ingestion, JOC rows). Throws
///     CancelledError on cancellation, BudgetError past the deadline.
///   * cancelled() / deadline_expired() — soft probes for loops that can
///     truncate instead (training epochs, SMO passes, refinement
///     iterations); the caller stops early and reports the degradation.
class ExecutionContext {
 public:
  ExecutionContext() = default;

  // -- cancellation --
  void set_cancellation(const CancellationToken* token) { token_ = token; }
  bool cancelled() const { return token_ != nullptr && token_->requested(); }
  /// Throws CancelledError if the token is tripped.
  void throw_if_cancelled(const char* where) const;

  // -- deadline --
  void set_deadline(Deadline deadline) { deadline_ = deadline; }
  void set_deadline_seconds(double seconds) {
    deadline_ = Deadline::after_seconds(seconds);
  }
  const Deadline& deadline() const { return deadline_; }
  bool deadline_expired() const { return deadline_.expired(); }
  double remaining_seconds() const { return deadline_.remaining_seconds(); }

  /// Hard cooperative cancellation point: CancelledError on cancellation,
  /// BudgetError past the deadline.
  void checkpoint(const char* where) const;

  // -- memory budget (estimate accounting, not an allocator hook) --
  void set_memory_limit(std::size_t bytes) { memory_limit_ = bytes; }
  std::size_t memory_limit() const { return memory_limit_; }  // 0 = unlimited
  /// Accounts `bytes` against the budget; throws BudgetError if the total
  /// would exceed the limit. Pair with release() (or use MemoryCharge).
  void charge(std::size_t bytes, const char* what);
  void release(std::size_t bytes) noexcept;
  std::size_t charged() const { return charged_; }
  std::size_t peak_charged() const { return peak_charged_; }

 private:
  const CancellationToken* token_ = nullptr;
  Deadline deadline_;
  std::size_t memory_limit_ = 0;
  std::size_t charged_ = 0;
  std::size_t peak_charged_ = 0;
};

/// RAII memory accounting against an ExecutionContext (null context = free).
/// Charges in the constructor (may throw BudgetError), releases on
/// destruction.
class MemoryCharge {
 public:
  MemoryCharge() = default;
  MemoryCharge(ExecutionContext* context, std::size_t bytes,
               const char* what);
  ~MemoryCharge();

  MemoryCharge(MemoryCharge&& other) noexcept;
  MemoryCharge& operator=(MemoryCharge&& other) noexcept;
  MemoryCharge(const MemoryCharge&) = delete;
  MemoryCharge& operator=(const MemoryCharge&) = delete;

  std::size_t bytes() const { return bytes_; }

 private:
  ExecutionContext* context_ = nullptr;
  std::size_t bytes_ = 0;
};

/// RAII per-phase deadline: tightens the context's deadline to
/// min(current, now + budget_seconds) for the scope's lifetime, restoring
/// the outer deadline on exit. budget_seconds <= 0 leaves it unchanged.
class PhaseScope {
 public:
  PhaseScope(ExecutionContext* context, double budget_seconds);
  ~PhaseScope();

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  ExecutionContext* context_ = nullptr;
  Deadline saved_;
};

// ---- Declarative retries ----------------------------------------------

/// Bounded retries with exponential backoff and deterministic jitter; one
/// policy shape for loader I/O and trainer divergence (call sites decide
/// what "retry" means — re-open a file, reinitialize weights).
struct RetryPolicy {
  int max_attempts = 3;      // total attempts, including the first
  double backoff_ms = 1.0;   // base delay before the first retry
  double multiplier = 2.0;   // delay growth per retry
  double jitter = 0.25;      // +/- fraction applied to each delay
  std::uint64_t seed = 0x7e7e7e7eULL;  // jitter stream (determinism)
};

/// Drives one RetryPolicy instance across attempts.
class Retrier {
 public:
  explicit Retrier(const RetryPolicy& policy);

  /// Call after a failed attempt. Returns true (after sleeping the jittered
  /// exponential backoff) if another attempt is allowed, false when the
  /// attempt budget is exhausted and the caller should give up.
  bool retry();

  int failures() const { return failures_; }
  double last_delay_ms() const { return last_delay_ms_; }

  /// The delay that retry() would sleep after `failures` failed attempts
  /// (jitter applied). Exposed for tests.
  double delay_ms_for(int failures);

 private:
  RetryPolicy policy_;
  util::Rng rng_;
  int failures_ = 0;
  double last_delay_ms_ = 0.0;
};

// ---- Degradation reporting --------------------------------------------

/// One truncated/abandoned phase: which, why, and how far it got.
struct PhaseDegradation {
  std::string phase;   // e.g. "phase1.autoencoder", "phase2.refine"
  std::string reason;  // "deadline" | "memory" | "iterations" | "cancelled"
  std::string detail;  // human-readable context
  int progress = 0;    // epochs/iterations completed when truncated
  int target = 0;      // configured total (0 = open-ended)
};

/// Everything a governed run truncated instead of failing on. An empty
/// report means the run completed without giving anything up.
struct DegradationReport {
  std::vector<PhaseDegradation> phases;

  bool degraded() const { return !phases.empty(); }
  bool cancelled() const;

  void add(std::string phase, std::string reason, std::string detail,
           int progress = 0, int target = 0);

  /// One line per entry: "phase: reason (progress/target) — detail".
  std::string to_string() const;
};

}  // namespace fs::runtime
