// Tagged little-endian binary serialization for trained models.
//
// The format is deliberately simple: every record starts with a 4-byte tag
// so version/type mismatches fail loudly at the exact field, not as
// corrupted numbers downstream. Host endianness is assumed (the project
// targets a single machine; files are a cache, not an interchange format).
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace fs::util {

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  void tag(const char (&name)[5]);  // 4 chars + NUL
  void u64(std::uint64_t value);
  void i64(std::int64_t value);
  void f64(double value);
  void str(const std::string& value);
  void f64_vector(const std::vector<double>& values);
  void i32_vector(const std::vector<int>& values);

 private:
  void raw(const void* data, std::size_t bytes);
  std::ostream& out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  /// Reads 4 bytes and throws std::runtime_error on mismatch.
  void expect_tag(const char (&name)[5]);

  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();
  std::vector<double> f64_vector();
  std::vector<int> i32_vector();

 private:
  void raw(void* data, std::size_t bytes);
  std::istream& in_;
};

}  // namespace fs::util
