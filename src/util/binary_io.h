// Tagged little-endian binary serialization for trained models.
//
// The format is deliberately simple: every record starts with a 4-byte tag
// so version/type mismatches fail loudly at the exact field, not as
// corrupted numbers downstream. Host endianness is assumed (the project
// targets a single machine; files are a cache, not an interchange format).
//
// For durable artifacts (checkpoints), both ends support CRC32 regions:
// the writer accumulates a checksum over every byte between crc_begin()
// and crc_end() and appends it; the reader recomputes it over the same
// span and verifies — so truncation and bit rot fail loudly instead of
// deserializing garbage.
#pragma once

#include <sys/socket.h>
#include <sys/types.h>

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace fs::util {

// ---- EINTR-safe POSIX I/O ----------------------------------------------
// Raw read/write/accept return EINTR whenever a signal lands mid-call —
// which, in a process that installs SIGINT/SIGTERM handlers (the CLI does),
// means every unwrapped syscall is a latent truncated read or lost accept.
// All fd-based I/O in this repo (stream journal, tail source, fs::net
// sockets) goes through these helpers.

/// read(2), retried on EINTR. Returns bytes read (0 = EOF) or -1 with errno
/// set to the first non-EINTR error.
ssize_t read_eintr(int fd, void* buf, std::size_t bytes);

/// write(2), retried on EINTR. May still write short (not an error);
/// callers that need the full buffer use write_all_eintr.
ssize_t write_eintr(int fd, const void* buf, std::size_t bytes);

/// Writes the whole buffer, looping over short writes and EINTR. Returns
/// false (errno set) on the first hard error.
bool write_all_eintr(int fd, const void* buf, std::size_t bytes);

/// accept(2), retried on EINTR. Returns the new fd or -1 with errno set to
/// the first non-EINTR error (EAGAIN/EWOULDBLOCK included — callers on
/// non-blocking listeners check for it).
int accept_eintr(int fd, struct sockaddr* addr, socklen_t* addr_len);

/// fsync(2), retried on EINTR. Returns false (errno set) on hard error.
bool fsync_eintr(int fd);

/// Opens `path` read-only, fsyncs it, closes it. For durability barriers on
/// files written through buffered streams (e.g. a snapshot tmp before its
/// atomic rename).
bool fsync_path(const std::string& path);

/// fsyncs the directory containing `path`, making a just-renamed entry
/// durable (rename alone only updates the in-memory dirent).
bool fsync_parent_dir(const std::string& path);

/// CRC-32 (IEEE 802.3, the zlib polynomial), one-shot over a buffer.
std::uint32_t crc32(const void* data, std::size_t bytes,
                    std::uint32_t seed = 0);

/// Incremental CRC-32 accumulator.
class Crc32 {
 public:
  void update(const void* data, std::size_t bytes) {
    value_ = crc32(data, bytes, value_);
  }
  std::uint32_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint32_t value_ = 0;
};

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  void tag(const char (&name)[5]);  // 4 chars + NUL
  void u64(std::uint64_t value);
  void i64(std::int64_t value);
  void f64(double value);
  void str(const std::string& value);
  void f64_vector(const std::vector<double>& values);
  void i32_vector(const std::vector<int>& values);

  /// Starts checksumming subsequent writes.
  void crc_begin();
  /// Stops checksumming, writes the CRC32 as a u64 record, returns it.
  std::uint32_t crc_end();

 private:
  void raw(const void* data, std::size_t bytes);
  std::ostream& out_;
  Crc32 crc_;
  bool crc_active_ = false;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  /// Reads 4 bytes and throws std::runtime_error on mismatch.
  void expect_tag(const char (&name)[5]);

  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();
  std::vector<double> f64_vector();
  std::vector<int> i32_vector();

  /// Starts checksumming subsequent reads.
  void crc_begin();
  /// Stops checksumming, reads the stored CRC32 and throws
  /// fs::CorruptCheckpoint on mismatch. Returns the verified value.
  std::uint32_t crc_end();

 private:
  void raw(void* data, std::size_t bytes);
  std::istream& in_;
  Crc32 crc_;
  bool crc_active_ = false;
};

}  // namespace fs::util
