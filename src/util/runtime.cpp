#include "util/runtime.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <limits>
#include <sstream>
#include <thread>

namespace fs::runtime {

// ---- Cancellation ------------------------------------------------------

CancellationToken& global_token() {
  static CancellationToken token;
  return token;
}

namespace {

std::atomic<int> g_last_signal{0};

extern "C" void fs_signal_handler(int signal) {
  // Only async-signal-safe operations: two lock-free atomic stores.
  g_last_signal.store(signal, std::memory_order_relaxed);
  global_token().request();
}

}  // namespace

void install_signal_handlers() {
  std::signal(SIGINT, fs_signal_handler);
  std::signal(SIGTERM, fs_signal_handler);
}

int last_signal() noexcept {
  return g_last_signal.load(std::memory_order_relaxed);
}

// ---- Deadline ----------------------------------------------------------

Deadline Deadline::after_seconds(double seconds) {
  Deadline d;
  d.at_ = clock::now() + std::chrono::duration_cast<clock::duration>(
                             std::chrono::duration<double>(seconds));
  return d;
}

bool Deadline::expired() const {
  return at_.has_value() && clock::now() >= *at_;
}

double Deadline::remaining_seconds() const {
  if (!at_.has_value()) return std::numeric_limits<double>::infinity();
  const double remaining =
      std::chrono::duration<double>(*at_ - clock::now()).count();
  return std::max(0.0, remaining);
}

// ---- ExecutionContext --------------------------------------------------

void ExecutionContext::throw_if_cancelled(const char* where) const {
  if (cancelled())
    throw CancelledError(std::string(where) + ": cancellation requested");
}

void ExecutionContext::checkpoint(const char* where) const {
  throw_if_cancelled(where);
  if (deadline_.expired())
    throw BudgetError(std::string(where) + ": wall-clock deadline exceeded");
}

void ExecutionContext::charge(std::size_t bytes, const char* what) {
  if (memory_limit_ != 0 && charged_ + bytes > memory_limit_) {
    std::ostringstream oss;
    oss << what << ": memory budget exceeded (" << charged_ << " + " << bytes
        << " > " << memory_limit_ << " bytes)";
    throw BudgetError(oss.str());
  }
  charged_ += bytes;
  peak_charged_ = std::max(peak_charged_, charged_);
}

void ExecutionContext::release(std::size_t bytes) noexcept {
  charged_ -= std::min(bytes, charged_);
}

MemoryCharge::MemoryCharge(ExecutionContext* context, std::size_t bytes,
                           const char* what)
    : context_(context), bytes_(bytes) {
  if (context_ != nullptr) context_->charge(bytes_, what);
}

MemoryCharge::~MemoryCharge() {
  if (context_ != nullptr) context_->release(bytes_);
}

MemoryCharge::MemoryCharge(MemoryCharge&& other) noexcept
    : context_(other.context_), bytes_(other.bytes_) {
  other.context_ = nullptr;
  other.bytes_ = 0;
}

MemoryCharge& MemoryCharge::operator=(MemoryCharge&& other) noexcept {
  if (this != &other) {
    if (context_ != nullptr) context_->release(bytes_);
    context_ = other.context_;
    bytes_ = other.bytes_;
    other.context_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

PhaseScope::PhaseScope(ExecutionContext* context, double budget_seconds)
    : context_(context) {
  if (context_ == nullptr || budget_seconds <= 0.0) {
    context_ = nullptr;  // nothing to restore
    return;
  }
  saved_ = context_->deadline();
  if (budget_seconds < saved_.remaining_seconds())
    context_->set_deadline_seconds(budget_seconds);
}

PhaseScope::~PhaseScope() {
  if (context_ != nullptr) context_->set_deadline(saved_);
}

// ---- Retrier -----------------------------------------------------------

Retrier::Retrier(const RetryPolicy& policy)
    : policy_(policy), rng_(policy.seed) {}

double Retrier::delay_ms_for(int failures) {
  double delay =
      policy_.backoff_ms * std::pow(policy_.multiplier, failures - 1);
  if (policy_.jitter > 0.0)
    delay *= 1.0 + rng_.uniform(-policy_.jitter, policy_.jitter);
  return std::max(0.0, delay);
}

bool Retrier::retry() {
  ++failures_;
  if (failures_ >= policy_.max_attempts) return false;
  last_delay_ms_ = delay_ms_for(failures_);
  if (last_delay_ms_ > 0.0)
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(last_delay_ms_));
  return true;
}

// ---- DegradationReport -------------------------------------------------

bool DegradationReport::cancelled() const {
  for (const PhaseDegradation& p : phases)
    if (p.reason == "cancelled") return true;
  return false;
}

void DegradationReport::add(std::string phase, std::string reason,
                            std::string detail, int progress, int target) {
  phases.push_back(PhaseDegradation{std::move(phase), std::move(reason),
                                    std::move(detail), progress, target});
}

std::string DegradationReport::to_string() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseDegradation& p = phases[i];
    if (i > 0) oss << '\n';
    oss << p.phase << ": " << p.reason;
    if (p.target > 0)
      oss << " (" << p.progress << "/" << p.target << ")";
    else if (p.progress > 0)
      oss << " (at " << p.progress << ")";
    if (!p.detail.empty()) oss << " — " << p.detail;
  }
  return oss.str();
}

}  // namespace fs::runtime
