// Minimal command-line option parser for the CLI tool and examples.
//
// Supports:  --name value | --name=value | --flag | positional arguments.
// Unknown options are an error (loudness over forgiveness).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace fs::util {

class ArgParser {
 public:
  /// Declares an option taking a value, with a default.
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);
  /// Declares a boolean flag (false unless present).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv after the program name (and, by convention, after the
  /// subcommand). Throws std::invalid_argument on unknown/malformed input.
  void parse(int argc, const char* const* argv, int first = 1);

  const std::string& get(const std::string& name) const;
  long long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// One line per declared option, for --help output.
  std::string help() const;

 private:
  struct Option {
    std::string value;
    std::string help;
  };
  std::map<std::string, Option> options_;
  std::set<std::string> flags_declared_;
  std::set<std::string> flags_set_;
  std::vector<std::string> positional_;
};

}  // namespace fs::util
