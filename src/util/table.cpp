#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace fs::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

Table& Table::new_row() {
  if (!rows_.empty() && rows_.back().size() != header_.size())
    throw std::logic_error("Table: previous row incomplete");
  rows_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& cell) {
  if (rows_.empty()) throw std::logic_error("Table: add before new_row");
  if (rows_.back().size() >= header_.size())
    throw std::logic_error("Table: row overflow");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return add(std::string(buf));
}

Table& Table::add(int value) { return add(std::to_string(value)); }
Table& Table::add(long value) { return add(std::to_string(value)); }
Table& Table::add(std::size_t value) { return add(std::to_string(value)); }

std::string Table::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      oss << "  " << cell << std::string(widths[c] - cell.size(), ' ');
    }
    oss << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  oss << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return oss.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) oss << ',';
      oss << csv_escape(cells[c]);
    }
    oss << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return oss.str();
}

void Table::print(const std::string& title) const {
  std::cout << "\n== " << title << " ==\n" << to_text() << std::flush;
}

void Table::write_csv(const std::string& path) const {
  std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p);
  if (!out) throw std::runtime_error("Table::write_csv: cannot open " + path);
  out << to_csv();
}

}  // namespace fs::util
