#include "util/rng.h"

#include <cmath>
#include <unordered_set>

namespace fs::util {

double Rng::normal(double mean, double stddev) {
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::exponential(double lambda) {
  if (lambda <= 0.0)
    throw std::invalid_argument("Rng::exponential: lambda must be > 0");
  return -std::log(1.0 - uniform()) / lambda;
}

int Rng::power_law_int(double alpha, int cap) {
  if (cap < 1) throw std::invalid_argument("Rng::power_law_int: cap < 1");
  // Inverse-CDF sampling of the continuous Pareto on [1, cap], floored.
  // alpha == 1 handled as the log-uniform limit case.
  double u = uniform();
  double x;
  if (std::abs(alpha - 1.0) < 1e-9) {
    x = std::exp(u * std::log(static_cast<double>(cap)));
  } else {
    double a = 1.0 - alpha;
    double c = std::pow(static_cast<double>(cap), a);
    x = std::pow(1.0 + u * (c - 1.0), 1.0 / a);
  }
  int v = static_cast<int>(x);
  if (v < 1) v = 1;
  if (v > cap) v = cap;
  return v;
}

int Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  // Knuth's method; fine for the small means used in trace generation.
  double l = std::exp(-mean);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > l);
  return k - 1;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_indices: k > n");
  if (k == 0) return {};
  // For dense draws use a partial Fisher-Yates; for sparse draws, rejection.
  if (k * 3 >= n) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + index(n - i);
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  std::unordered_set<std::size_t> seen;
  std::vector<std::size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    std::size_t candidate = index(n);
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0)
      throw std::invalid_argument("Rng::weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument("Rng::weighted_index: weights sum to zero");
  double target = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // Numerical tail; target == total.
}

}  // namespace fs::util
