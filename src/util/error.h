// Structured error taxonomy and a diagnostics sink for the whole pipeline.
//
// Every failure the runtime can recover from (or must report precisely)
// carries an ErrorCode, so callers can branch on *what kind* of thing went
// wrong instead of string-matching `what()`. All types derive from
// std::runtime_error, so legacy catch sites keep working.
//
// `Diagnostics` is the companion sink: subsystems that degrade gracefully
// (loader quarantining records, autoencoder backing off a diverging run,
// pipeline falling back to its phase-1 graph) report what happened into it
// instead of throwing, and the caller decides whether the run is usable.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace fs {

enum class ErrorCode {
  kIo,                // file missing, unreadable, write failed
  kParse,             // malformed text input (timestamps, numbers, lines)
  kNumeric,           // NaN/Inf loss, gradient, feature, or score
  kCorruptCheckpoint, // bad magic/version/CRC/truncation in a checkpoint
  kCorruptStore,      // bad magic/version/CRC/truncation in a columnar store
  kConvergence,       // training diverged beyond the retry budget
  kCancelled,         // cooperative cancellation (SIGINT/SIGTERM, caller)
  kBudget,            // deadline, memory, or iteration budget exhausted
};

const char* error_code_name(ErrorCode code);

/// Base of the taxonomy; `what()` is prefixed with the code name.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message);
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

class IoError : public Error {
 public:
  explicit IoError(const std::string& message)
      : Error(ErrorCode::kIo, message) {}
};

class ParseError : public Error {
 public:
  explicit ParseError(const std::string& message)
      : Error(ErrorCode::kParse, message) {}
};

class NumericError : public Error {
 public:
  explicit NumericError(const std::string& message)
      : Error(ErrorCode::kNumeric, message) {}
};

class CorruptCheckpoint : public Error {
 public:
  explicit CorruptCheckpoint(const std::string& message)
      : Error(ErrorCode::kCorruptCheckpoint, message) {}
};

/// A columnar check-in store failed validation (magic, layout version,
/// header CRC, block checksum, or truncation). Distinct from
/// CorruptCheckpoint so callers can tell "my resume state is bad" from
/// "my input artifact is bad" — the former is recoverable by restarting
/// the run, the latter needs a re-convert.
class CorruptStore : public Error {
 public:
  explicit CorruptStore(const std::string& message)
      : Error(ErrorCode::kCorruptStore, message) {}
};

class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& message)
      : Error(ErrorCode::kConvergence, message) {}
};

/// Thrown at a cooperative cancellation point once cancellation was
/// requested; the run stops at the next safe boundary instead of mid-write.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& message)
      : Error(ErrorCode::kCancelled, message) {}
};

/// Thrown when a wall-clock or memory budget would be exceeded; callers
/// with last-good state degrade instead of propagating.
class BudgetError : public Error {
 public:
  explicit BudgetError(const std::string& message)
      : Error(ErrorCode::kBudget, message) {}
};

namespace util {

enum class Severity { kInfo, kWarning, kError };

const char* severity_name(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kInfo;
  ErrorCode code = ErrorCode::kIo;
  std::string component;  // e.g. "loader", "autoencoder", "pipeline"
  std::string message;
  /// Seconds since process start (util::monotonic_seconds) when the event
  /// was reported; orders diagnostics against log lines and trace spans.
  double ts_sec = 0.0;
};

/// Append-only event sink. Copyable so a pipeline can hand its collected
/// diagnostics to the caller inside the result struct.
class Diagnostics {
 public:
  void report(Severity severity, ErrorCode code, std::string component,
              std::string message);

  const std::vector<Diagnostic>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  std::size_t count(Severity severity) const;
  bool has_errors() const { return count(Severity::kError) > 0; }

  /// One line per entry: "[severity] code component: message".
  std::string to_string() const;

  void clear() { entries_.clear(); }

 private:
  std::vector<Diagnostic> entries_;
};

}  // namespace util
}  // namespace fs
