// Named failpoints for fault-injection testing.
//
// A failpoint is a call site in production code that asks the registry
// "should I fail here, and how?". With nothing activated every helper is a
// cheap early-out, so the hooks stay compiled into release builds and the
// fault-injection suite exercises the exact binaries that ship.
//
// Naming convention: `<subsystem>.<operation>.<fault>` — e.g.
// `data.load.open`, `nn.train.nan`, `checkpoint.load.truncate`.
//
// Activation is programmatic (`activate`) or via the FS_FAILPOINTS
// environment variable:
//
//   FS_FAILPOINTS="data.load.open=error;nn.train.nan=nan:limit=2"
//
// Per-failpoint config: `skip=N` ignores the first N evaluations, `limit=N`
// fires at most N times (-1 = unlimited), `latency_ms=N` for latency
// injection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace fs::util::failpoint {

enum class Action {
  kError,    // the call site throws (IoError at I/O sites)
  kNan,      // corrupt(value) returns NaN
  kTruncate, // truncate(size) returns a shortened size
  kLatency,  // sleep latency_ms, then behave as if inactive
};

struct Config {
  Action action = Action::kError;
  int skip = 0;        // don't fire on the first `skip` evaluations
  int limit = -1;      // fire at most this many times; -1 = unlimited
  int latency_ms = 1;  // for kLatency
};

void activate(const std::string& name, const Config& config);
void activate(const std::string& name, Action action, int limit = -1);
void deactivate(const std::string& name);
/// Deactivates everything and resets all counters.
void clear();

/// True if any failpoint is active (fast pre-check used by the helpers).
bool any_active();

/// Bookkeeping for tests: how often a failpoint was evaluated / fired.
std::uint64_t evaluations(const std::string& name);
std::uint64_t triggers(const std::string& name);

/// Parses FS_FAILPOINTS. Runs automatically on the first evaluation; safe
/// to call again (re-reads the variable on explicit calls).
void init_from_env();

// ---- compiled-in registry ---------------------------------------------

/// A failpoint baked into the sources: its name, the action(s) its call
/// site honours, and what firing it simulates. Chaos schedules are authored
/// against this table (`friendseeker --list-failpoints`) instead of
/// grepping the code. Any entry additionally accepts `latency` (delay
/// without failing).
struct KnownFailpoint {
  const char* name;
  const char* actions;  // e.g. "error", "nan", "truncate"
  const char* description;
};

/// Every failpoint compiled into the binaries, sorted by name.
const std::vector<KnownFailpoint>& known_failpoints();

/// Thrown by the `pipeline.iteration.abort` call site to simulate a
/// process kill at an iteration boundary. Deliberately NOT derived from
/// fs::Error: no graceful-degradation catch may swallow it, so it unwinds
/// to the top level exactly like a crash would (modulo destructors) and
/// the chaos harness resumes from the on-disk checkpoint.
class InjectedKill : public std::runtime_error {
 public:
  explicit InjectedKill(const std::string& message)
      : std::runtime_error(message) {}
};

// ---- call-site helpers ------------------------------------------------
// Each evaluates the named failpoint once (consuming skip/limit budget).
// A latency-action failpoint sleeps and then reports "not fired" so the
// call site proceeds normally.

/// True when an error-action failpoint fires: the call site should throw.
bool fail(const char* name);

/// Returns NaN when a nan-action failpoint fires, `value` otherwise.
double corrupt(const char* name, double value);

/// Returns a truncated size (half, rounded down) when a truncate-action
/// failpoint fires, `size` otherwise.
std::size_t truncate(const char* name, std::size_t size);

}  // namespace fs::util::failpoint
