// Aligned-text table printing and CSV export.
//
// Every bench prints the paper's table/figure as a human-readable aligned
// table on stdout and writes the same rows as CSV for downstream plotting.
#pragma once

#include <string>
#include <vector>

namespace fs::util {

/// A simple column-oriented results table. Cells are strings; numeric
/// convenience overloads format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Begins a new row; subsequent add() calls fill it left to right.
  Table& new_row();

  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(double value, int precision = 4);
  Table& add(int value);
  Table& add(long value);
  Table& add(std::size_t value);

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders the table with padded columns and a rule under the header.
  std::string to_text() const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  std::string to_csv() const;

  /// Prints to stdout with a title banner.
  void print(const std::string& title) const;

  /// Writes CSV to `path`, creating parent directories. Throws on failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fs::util
