// Deterministic pseudo-random number generation for simulations.
//
// All stochastic components in this repository (world generation, sampling,
// network initialization, SGD shuffling) draw from fs::util::Rng so that a
// single seed reproduces an entire experiment end to end.
#pragma once

#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fs::util {

/// splitmix64: used to expand a single 64-bit seed into stream state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Small, fast, and high quality; satisfies
/// std::uniform_random_bit_generator so it can drive <random> distributions
/// when needed, though the member helpers below avoid libstdc++'s
/// distribution objects for cross-platform reproducibility.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedf00dULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_u64(std::uint64_t n) {
    if (n == 0) throw std::invalid_argument("Rng::next_u64: n must be > 0");
    // Lemire's multiply-shift rejection method: unbiased and branch-light.
    std::uint64_t x = operator()();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = operator()();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(next_u64(n));
  }

  /// Uniform integer in [lo, hi] inclusive.
  long long range(long long lo, long long hi) {
    if (lo > hi) throw std::invalid_argument("Rng::range: lo > hi");
    return lo + static_cast<long long>(
                    next_u64(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller (cached second variate dropped for
  /// simplicity; generation cost is negligible at our scales).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with given rate lambda (> 0).
  double exponential(double lambda);

  /// Geometric-like power-law sample in [1, cap]: P(x) proportional to
  /// x^(-alpha). Used for check-in counts per user (heavy-tailed, like real
  /// LBSN activity distributions).
  int power_law_int(double alpha, int cap);

  /// Zero-truncated Poisson-ish small count sampler via inversion.
  int poisson(double mean);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), order unspecified.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Weighted index draw; weights need not be normalized, must be >= 0 and
  /// sum to a positive value.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derive an independent child stream (for per-component determinism that
  /// does not depend on call order elsewhere).
  Rng fork() { return Rng(operator()()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace fs::util
