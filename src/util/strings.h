// Small string helpers used by loaders and report generation.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fs::util {

/// Splits on a single delimiter character; keeps empty fields.
std::vector<std::string_view> split(std::string_view text, char delim);

/// Splits on any run of whitespace; drops empty fields.
std::vector<std::string_view> split_whitespace(std::string_view text);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Parses a double/long; throws std::invalid_argument with context on
/// failure (loaders want loud failures, not silent zeros).
double parse_double(std::string_view text);
long long parse_int(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace fs::util
