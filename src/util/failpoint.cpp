#include "util/failpoint.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include "util/strings.h"

namespace fs::util::failpoint {

namespace {

struct State {
  Config config;
  std::uint64_t evaluations = 0;
  std::uint64_t triggers = 0;
  bool active = false;
};

// The registry is shared: fs::net evaluates failpoints from the server poll
// thread and the feed-client thread while chaos harnesses (re)activate them
// from the main thread between daemon incarnations. A mutex guards the map;
// the inactive fast path is a single relaxed atomic load so call sites in
// hot loops stay free when nothing is activated.
std::mutex& registry_mutex() {
  static std::mutex instance;
  return instance;
}

std::map<std::string, State>& registry() {
  static std::map<std::string, State> instance;
  return instance;
}

std::atomic<std::size_t>& active_count() {
  static std::atomic<std::size_t> count{0};
  return count;
}

bool parse_action(std::string_view text, Action& out) {
  if (text == "error") out = Action::kError;
  else if (text == "nan") out = Action::kNan;
  else if (text == "truncate") out = Action::kTruncate;
  else if (text == "latency") out = Action::kLatency;
  else return false;
  return true;
}

void ensure_env_init() {
  // Magic static (thread-safe once-init); a plain bool flag here would be a
  // data race on concurrent first evaluations.
  static const bool done = [] {
    init_from_env();
    return true;
  }();
  (void)done;
}

/// Evaluates a failpoint: returns the action if it fired, nullopt if not.
/// Latency actions sleep (outside the lock) and report "not fired".
std::optional<Action> evaluate(const char* name) {
  ensure_env_init();
  if (active_count().load(std::memory_order_relaxed) == 0) return std::nullopt;
  int latency_ms = 0;
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    const auto it = registry().find(name);
    if (it == registry().end() || !it->second.active) return std::nullopt;
    State& state = it->second;
    const auto evaluation = static_cast<std::int64_t>(state.evaluations++);
    if (evaluation < state.config.skip) return std::nullopt;
    if (state.config.limit >= 0 &&
        static_cast<std::int64_t>(state.triggers) >= state.config.limit)
      return std::nullopt;
    ++state.triggers;
    if (state.config.action != Action::kLatency) return state.config.action;
    latency_ms = state.config.latency_ms;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(latency_ms));
  return std::nullopt;  // latency delays the call site but never fails it
}

}  // namespace

void activate(const std::string& name, const Config& config) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  State& state = registry()[name];
  if (!state.active) active_count().fetch_add(1, std::memory_order_relaxed);
  state.config = config;
  state.active = true;
}

void activate(const std::string& name, Action action, int limit) {
  Config config;
  config.action = action;
  config.limit = limit;
  activate(name, config);
}

void deactivate(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(name);
  if (it != registry().end() && it->second.active) {
    it->second.active = false;
    active_count().fetch_sub(1, std::memory_order_relaxed);
  }
}

void clear() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry().clear();
  active_count().store(0, std::memory_order_relaxed);
}

bool any_active() {
  return active_count().load(std::memory_order_relaxed) > 0;
}

std::uint64_t evaluations(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(name);
  return it == registry().end() ? 0 : it->second.evaluations;
}

std::uint64_t triggers(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(name);
  return it == registry().end() ? 0 : it->second.triggers;
}

const std::vector<KnownFailpoint>& known_failpoints() {
  // Sorted by name at first use rather than by hand: entries are added in
  // PR-sized batches and a hand-maintained order drifts, which makes
  // --list-failpoints (and the chaos schedules diffed against it)
  // nondeterministic relative to the sources.
  static const std::vector<KnownFailpoint> table = [] {
    std::vector<KnownFailpoint> entries = {
        {"checkpoint.load.truncate", "truncate",
         "drop the tail of a checkpoint read (torn write / short read); the "
         "loader must reject it as CorruptCheckpoint"},
        {"checkpoint.save.io", "error",
         "fail a checkpoint save before anything is written; the run "
         "continues, losing only resumability"},
        {"checkpoint.save.rename", "error",
         "fail the temp-file rename after the payload was written; the saver "
         "must clean up the stray .tmp file"},
        {"data.load.open", "error",
         "fail opening the check-in/edge file; retried under the loader's "
         "RetryPolicy before surfacing IoError"},
        {"net.accept.fail", "error",
         "fail one accept(2) on the fs::net listener; counted in "
         "net.accept_failures_total, the listener keeps polling"},
        {"net.conn.drop", "error",
         "drop an established fs::net connection mid-stream; the peer sees "
         "a reset and the feed client reconnects under its RetryPolicy"},
        {"net.feed.stall", "latency",
         "stall the feed client before a send, simulating a slow peer; the "
         "server's idle deadline reaps connections that stall too long"},
        {"net.feed.torn_send", "truncate",
         "cut a feed-client frame short mid-send then disconnect (torn "
         "write); the server discards the partial frame and the client "
         "resends from its acknowledged watermark"},
        {"net.write.torn", "truncate",
         "cut an fs::net server write short (torn response); the connection "
         "is closed rather than left desynchronized"},
        {"ml.svm.nan", "nan",
         "poison the SVM's input features with a non-finite value; fit() "
         "throws NumericError and phase 2 keeps its last-good graph"},
        {"nn.train.nan", "nan",
         "poison one autoencoder batch loss; training reinitializes with a "
         "backed-off learning rate under its RetryPolicy"},
        {"pipeline.iteration.abort", "error",
         "simulate a process kill at a phase-2 iteration boundary (after the "
         "checkpoint save); throws InjectedKill, resumable via --resume"},
        {"store.convert.io", "error",
         "fail a store-conversion write before the rename; the converter "
         "removes the stray .tmp file and surfaces IoError"},
        {"store.convert.kill", "error",
         "simulate a process kill mid-conversion, after the payload write "
         "but before the atomic rename; throws InjectedKill, leaving a .tmp "
         "behind but never a final store path that validates"},
        {"stream.journal.torn_write", "truncate",
         "cut a stream journal frame short mid-write (crash during append); "
         "the writer throws IoError and recovery truncates the torn tail"},
        {"stream.source.open_fail", "error",
         "fail opening the stream source file; retried with backoff under "
         "the source's RetryPolicy before surfacing IoError"},
        {"stream.tick.abort", "error",
         "simulate a process kill at a serve-tick boundary (after the "
         "journal flush); throws InjectedKill, resumable via the journal"},
    };
    std::sort(entries.begin(), entries.end(),
              [](const KnownFailpoint& a, const KnownFailpoint& b) {
                return std::string_view(a.name) < std::string_view(b.name);
              });
    return entries;
  }();
  return table;
}

void init_from_env() {
  const char* env = std::getenv("FS_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  // "name=action[:key=value[:...]];name2=action"
  for (std::string_view entry : split(env, ';')) {
    entry = trim(entry);
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string_view::npos) continue;
    const std::string name(trim(entry.substr(0, eq)));
    const std::vector<std::string_view> parts =
        split(entry.substr(eq + 1), ':');
    Config config;
    if (parts.empty() || !parse_action(trim(parts[0]), config.action))
      continue;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      const std::string_view part = trim(parts[i]);
      const auto kv = part.find('=');
      if (kv == std::string_view::npos) continue;
      const std::string_view key = part.substr(0, kv);
      const long long value = parse_int(part.substr(kv + 1));
      if (key == "skip") config.skip = static_cast<int>(value);
      else if (key == "limit") config.limit = static_cast<int>(value);
      else if (key == "latency_ms") config.latency_ms =
          static_cast<int>(value);
    }
    activate(name, config);
  }
}

bool fail(const char* name) {
  return evaluate(name) == Action::kError;
}

double corrupt(const char* name, double value) {
  if (evaluate(name) == Action::kNan)
    return std::numeric_limits<double>::quiet_NaN();
  return value;
}

std::size_t truncate(const char* name, std::size_t size) {
  if (evaluate(name) == Action::kTruncate) return size / 2;
  return size;
}

}  // namespace fs::util::failpoint
