#include "util/error.h"

#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace fs {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kIo: return "IoError";
    case ErrorCode::kParse: return "ParseError";
    case ErrorCode::kNumeric: return "NumericError";
    case ErrorCode::kCorruptCheckpoint: return "CorruptCheckpoint";
    case ErrorCode::kCorruptStore: return "CorruptStore";
    case ErrorCode::kConvergence: return "ConvergenceError";
    case ErrorCode::kCancelled: return "CancelledError";
    case ErrorCode::kBudget: return "BudgetError";
  }
  return "UnknownError";
}

Error::Error(ErrorCode code, const std::string& message)
    : std::runtime_error(std::string(error_code_name(code)) + ": " + message),
      code_(code) {}

namespace util {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

void Diagnostics::report(Severity severity, ErrorCode code,
                         std::string component, std::string message) {
  // Mirror into the logger so interactive runs see degradations as they
  // happen, not only in the final report; the logger stamps its own
  // monotonic timestamp on the line.
  LogLevel level = LogLevel::kInfo;
  if (severity == Severity::kWarning) level = LogLevel::kWarn;
  if (severity == Severity::kError) level = LogLevel::kError;
  log(level, error_code_name(code), ' ', component, ": ", message);
  entries_.push_back(Diagnostic{severity, code, std::move(component),
                                std::move(message), monotonic_seconds()});
}

std::size_t Diagnostics::count(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : entries_) n += (d.severity == severity);
  return n;
}

std::string Diagnostics::to_string() const {
  std::ostringstream oss;
  for (const Diagnostic& d : entries_) {
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "[%8.2fs]", d.ts_sec);
    oss << stamp << " [" << severity_name(d.severity) << "] "
        << error_code_name(d.code) << ' ' << d.component << ": " << d.message
        << '\n';
  }
  return oss.str();
}

}  // namespace util
}  // namespace fs
