#include "util/binary_io.h"

#include <errno.h>
#include <fcntl.h>
#include <libgen.h>
#include <unistd.h>

#include <array>
#include <cstring>
#include <stdexcept>

#include "util/error.h"

namespace fs::util {

ssize_t read_eintr(int fd, void* buf, std::size_t bytes) {
  while (true) {
    const ssize_t n = ::read(fd, buf, bytes);
    if (n >= 0 || errno != EINTR) return n;
  }
}

ssize_t write_eintr(int fd, const void* buf, std::size_t bytes) {
  while (true) {
    const ssize_t n = ::write(fd, buf, bytes);
    if (n >= 0 || errno != EINTR) return n;
  }
}

bool write_all_eintr(int fd, const void* buf, std::size_t bytes) {
  const char* cursor = static_cast<const char*>(buf);
  std::size_t remaining = bytes;
  while (remaining > 0) {
    const ssize_t n = write_eintr(fd, cursor, remaining);
    if (n < 0) return false;
    cursor += n;
    remaining -= static_cast<std::size_t>(n);
  }
  return true;
}

int accept_eintr(int fd, struct sockaddr* addr, socklen_t* addr_len) {
  while (true) {
    const int conn = ::accept(fd, addr, addr_len);
    if (conn >= 0 || errno != EINTR) return conn;
  }
}

bool fsync_eintr(int fd) {
  while (true) {
    if (::fsync(fd) == 0) return true;
    if (errno != EINTR) return false;
  }
}

bool fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = fsync_eintr(fd);
  ::close(fd);
  return ok;
}

bool fsync_parent_dir(const std::string& path) {
  // dirname may modify its argument; give it a scratch copy.
  std::string scratch = path;
  const char* dir = ::dirname(scratch.data());
  const int fd = ::open(dir, O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = fsync_eintr(fd);
  ::close(fd);
  return ok;
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t bytes, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* bytes_ptr = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < bytes; ++i)
    c = table[(c ^ bytes_ptr[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void BinaryWriter::raw(const void* data, std::size_t bytes) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(bytes));
  if (!out_) throw IoError("BinaryWriter: write failed");
  if (crc_active_) crc_.update(data, bytes);
}

void BinaryWriter::crc_begin() {
  crc_.reset();
  crc_active_ = true;
}

std::uint32_t BinaryWriter::crc_end() {
  crc_active_ = false;
  const std::uint32_t value = crc_.value();
  u64(value);
  return value;
}

void BinaryWriter::tag(const char (&name)[5]) { raw(name, 4); }

void BinaryWriter::u64(std::uint64_t value) { raw(&value, sizeof value); }
void BinaryWriter::i64(std::int64_t value) { raw(&value, sizeof value); }
void BinaryWriter::f64(double value) { raw(&value, sizeof value); }

void BinaryWriter::str(const std::string& value) {
  u64(value.size());
  if (!value.empty()) raw(value.data(), value.size());
}

void BinaryWriter::f64_vector(const std::vector<double>& values) {
  u64(values.size());
  if (!values.empty()) raw(values.data(), values.size() * sizeof(double));
}

void BinaryWriter::i32_vector(const std::vector<int>& values) {
  u64(values.size());
  if (!values.empty()) raw(values.data(), values.size() * sizeof(int));
}

void BinaryReader::raw(void* data, std::size_t bytes) {
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in_.gcount()) != bytes)
    throw std::runtime_error("BinaryReader: truncated stream");
  if (crc_active_) crc_.update(data, bytes);
}

void BinaryReader::crc_begin() {
  crc_.reset();
  crc_active_ = true;
}

std::uint32_t BinaryReader::crc_end() {
  crc_active_ = false;
  const std::uint32_t computed = crc_.value();
  const std::uint64_t stored = u64();
  if (stored != computed)
    throw CorruptCheckpoint(
        "BinaryReader: CRC mismatch (stored " + std::to_string(stored) +
        ", computed " + std::to_string(computed) + ")");
  return computed;
}

void BinaryReader::expect_tag(const char (&name)[5]) {
  char found[4];
  raw(found, 4);
  if (std::memcmp(found, name, 4) != 0)
    throw std::runtime_error(std::string("BinaryReader: expected tag '") +
                             name + "', found '" +
                             std::string(found, 4) + "'");
}

std::uint64_t BinaryReader::u64() {
  std::uint64_t value;
  raw(&value, sizeof value);
  return value;
}

std::int64_t BinaryReader::i64() {
  std::int64_t value;
  raw(&value, sizeof value);
  return value;
}

double BinaryReader::f64() {
  double value;
  raw(&value, sizeof value);
  return value;
}

std::string BinaryReader::str() {
  const std::uint64_t size = u64();
  if (size > (1ull << 32))
    throw std::runtime_error("BinaryReader: implausible string size");
  std::string value(size, '\0');
  if (size) raw(value.data(), size);
  return value;
}

std::vector<double> BinaryReader::f64_vector() {
  const std::uint64_t size = u64();
  if (size > (1ull << 32))
    throw std::runtime_error("BinaryReader: implausible vector size");
  std::vector<double> values(size);
  if (size) raw(values.data(), size * sizeof(double));
  return values;
}

std::vector<int> BinaryReader::i32_vector() {
  const std::uint64_t size = u64();
  if (size > (1ull << 32))
    throw std::runtime_error("BinaryReader: implausible vector size");
  std::vector<int> values(size);
  if (size) raw(values.data(), size * sizeof(int));
  return values;
}

}  // namespace fs::util
