#include "util/binary_io.h"

#include <cstring>
#include <stdexcept>

namespace fs::util {

void BinaryWriter::raw(const void* data, std::size_t bytes) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(bytes));
  if (!out_) throw std::runtime_error("BinaryWriter: write failed");
}

void BinaryWriter::tag(const char (&name)[5]) { raw(name, 4); }

void BinaryWriter::u64(std::uint64_t value) { raw(&value, sizeof value); }
void BinaryWriter::i64(std::int64_t value) { raw(&value, sizeof value); }
void BinaryWriter::f64(double value) { raw(&value, sizeof value); }

void BinaryWriter::str(const std::string& value) {
  u64(value.size());
  if (!value.empty()) raw(value.data(), value.size());
}

void BinaryWriter::f64_vector(const std::vector<double>& values) {
  u64(values.size());
  if (!values.empty()) raw(values.data(), values.size() * sizeof(double));
}

void BinaryWriter::i32_vector(const std::vector<int>& values) {
  u64(values.size());
  if (!values.empty()) raw(values.data(), values.size() * sizeof(int));
}

void BinaryReader::raw(void* data, std::size_t bytes) {
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in_.gcount()) != bytes)
    throw std::runtime_error("BinaryReader: truncated stream");
}

void BinaryReader::expect_tag(const char (&name)[5]) {
  char found[4];
  raw(found, 4);
  if (std::memcmp(found, name, 4) != 0)
    throw std::runtime_error(std::string("BinaryReader: expected tag '") +
                             name + "', found '" +
                             std::string(found, 4) + "'");
}

std::uint64_t BinaryReader::u64() {
  std::uint64_t value;
  raw(&value, sizeof value);
  return value;
}

std::int64_t BinaryReader::i64() {
  std::int64_t value;
  raw(&value, sizeof value);
  return value;
}

double BinaryReader::f64() {
  double value;
  raw(&value, sizeof value);
  return value;
}

std::string BinaryReader::str() {
  const std::uint64_t size = u64();
  if (size > (1ull << 32))
    throw std::runtime_error("BinaryReader: implausible string size");
  std::string value(size, '\0');
  if (size) raw(value.data(), size);
  return value;
}

std::vector<double> BinaryReader::f64_vector() {
  const std::uint64_t size = u64();
  if (size > (1ull << 32))
    throw std::runtime_error("BinaryReader: implausible vector size");
  std::vector<double> values(size);
  if (size) raw(values.data(), size * sizeof(double));
  return values;
}

std::vector<int> BinaryReader::i32_vector() {
  const std::uint64_t size = u64();
  if (size > (1ull << 32))
    throw std::runtime_error("BinaryReader: implausible vector size");
  std::vector<int> values(size);
  if (size) raw(values.data(), size * sizeof(int));
  return values;
}

}  // namespace fs::util
