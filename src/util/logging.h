// Minimal leveled logger for experiment binaries.
//
// Benches and examples narrate progress through this logger; tests silence
// it. Not thread-safe by design — all heavy code in this repo is
// single-threaded (the evaluation machine has one core) and the logger keeps
// zero state beyond the level.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace fs::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Seconds since process start on the steady clock — the shared monotonic
/// epoch used by log lines, diagnostics timestamps, and trace spans, so all
/// telemetry sorts on one axis.
double monotonic_seconds();

namespace detail {
void log_line(LogLevel level, const std::string& message);
}

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  detail::log_line(level, oss.str());
}

template <typename... Args>
void log_debug(Args&&... args) {
  log(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  log(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  log(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  log(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace fs::util
