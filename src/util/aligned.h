// 64-byte-aligned allocation for SIMD-facing buffers.
//
// The kernel layer (fs::kern) loads matrix rows and packed panels with
// vector instructions; the columnar store already writes its columns on
// 64-byte boundaries. This allocator makes in-memory Matrix storage agree
// with both conventions, so a cache line (and an AVX-512 register) never
// straddles an allocation's first element.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>

namespace fs::util {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal std-compatible allocator over ::operator new(align).
template <typename T, std::size_t Align = kCacheLineBytes>
struct AlignedAllocator {
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

}  // namespace fs::util
