#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

namespace fs::util {

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_whitespace(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

double parse_double(std::string_view text) {
  text = trim(text);
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    throw std::invalid_argument("parse_double: bad input '" +
                                std::string(text) + "'");
  return value;
}

long long parse_int(std::string_view text) {
  text = trim(text);
  long long value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    throw std::invalid_argument("parse_int: bad input '" + std::string(text) +
                                "'");
  return value;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (needed < 0) {
    va_end(args);
    throw std::runtime_error("format: encoding error");
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

}  // namespace fs::util
