#include "util/args.h"

#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace fs::util {

void ArgParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  options_[name] = Option{default_value, help};
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  flags_declared_.insert(name);
  options_["__flag_" + name] = Option{"", help};  // help bookkeeping only
}

void ArgParser::parse(int argc, const char* const* argv, int first) {
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    if (flags_declared_.count(arg)) {
      if (has_value)
        throw std::invalid_argument("flag --" + arg + " takes no value");
      flags_set_.insert(arg);
      continue;
    }
    const auto it = options_.find(arg);
    if (it == options_.end())
      throw std::invalid_argument("unknown option --" + arg);
    if (!has_value) {
      if (i + 1 >= argc)
        throw std::invalid_argument("option --" + arg + " needs a value");
      value = argv[++i];
    }
    it->second.value = std::move(value);
  }
}

const std::string& ArgParser::get(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end())
    throw std::invalid_argument("undeclared option --" + name);
  return it->second.value;
}

long long ArgParser::get_int(const std::string& name) const {
  return parse_int(get(name));
}

double ArgParser::get_double(const std::string& name) const {
  return parse_double(get(name));
}

bool ArgParser::get_flag(const std::string& name) const {
  if (!flags_declared_.count(name))
    throw std::invalid_argument("undeclared flag --" + name);
  return flags_set_.count(name) > 0;
}

std::string ArgParser::help() const {
  std::ostringstream oss;
  for (const auto& [name, option] : options_) {
    if (starts_with(name, "__flag_")) {
      oss << "  --" << name.substr(7) << "\n      " << option.help << '\n';
    } else {
      oss << "  --" << name << " <value> (default: "
          << (option.value.empty() ? "none" : option.value) << ")\n      "
          << option.help << '\n';
    }
  }
  return oss.str();
}

}  // namespace fs::util
