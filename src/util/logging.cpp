#include "util/logging.h"

#include <chrono>
#include <cstdio>

namespace fs::util {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

double monotonic_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

namespace detail {
void log_line(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%8.2fs] %s %s\n", monotonic_seconds(),
               level_tag(level), message.c_str());
}
}  // namespace detail

}  // namespace fs::util
