// fs::kern — the compute kernel layer.
//
// Everything hot in the pipeline reduces to two primitives: dense GEMM
// (the autoencoder's forward/backward products, batch encoding, Gram
// matrices) and point-to-set squared distances (the KNN stage). This layer
// implements both as cache-blocked, register-tiled kernels with runtime
// ISA dispatch:
//
//   * GEMM packs A into MR-tall row panels and B into NR-wide column
//     panels (BLIS-style MC/KC/NC blocking), then drives an MR x NR
//     micro-kernel of FMA accumulators per ISA path. The three logical
//     variants (NN, NT, TN) differ only in how the pack routines read the
//     operands, so all of them share one macro kernel.
//   * Epilogues (bias add, bias+ReLU/sigmoid/tanh) are fused into the
//     C-tile writeback, so callers get activated layer outputs in a single
//     pass instead of re-sweeping the matrix.
//   * The quantized KNN path computes asymmetric lower-bound distances
//     between a full-precision query and int8-coded reference rows
//     (per-dimension scale/offset), which callers use to prune exact
//     re-ranking.
//
// Dispatch model: the ISA path (scalar, AVX2, AVX-512) is chosen once, at
// first use, from CPU capabilities, and can be pinned with FS_KERNEL=
// scalar|avx2|avx512 for differential testing. Determinism contract: for a
// FIXED path, every kernel accumulates each output element over k in
// ascending order with a fixed blocking scheme, and parallel execution
// (over fs::par, chunked by MC row blocks — never by thread count) assigns
// every output element to exactly one chunk. An N-thread run is therefore
// byte-identical to a 1-thread run on the same path. Different paths
// legitimately differ in low-order bits (FMA vs separate multiply-add,
// vector-lane epilogue order); the scalar path is the golden reference the
// parity suite measures the vector paths against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fs::kern {

// ---------------------------------------------------------------------------
// ISA dispatch
// ---------------------------------------------------------------------------

enum class IsaPath { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Name used in FS_KERNEL, perf_bench output, and test logs.
const char* path_name(IsaPath path);

/// True when the running CPU (and this build) can execute the path.
bool path_supported(IsaPath path);

/// Every supported path, in ascending capability order (always starts with
/// kScalar).
std::vector<IsaPath> supported_paths();

/// The active path. Resolved once on first call: FS_KERNEL if set (an
/// unsupported or unknown value throws std::runtime_error), otherwise the
/// most capable supported path.
IsaPath active_path();

/// The FS_KERNEL override in effect, or "" when the path was auto-detected.
std::string requested_path();

/// Pins the active path (differential testing and kernel_bench only —
/// production code must let FS_KERNEL/auto-detection decide). Throws
/// std::runtime_error if the path is unsupported on this host.
void force_path(IsaPath path);

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

/// Fused epilogue applied to C during tile writeback, after the full k
/// accumulation. Bias is indexed by output column and may be null only for
/// kNone. Sigmoid/tanh call the same libm routines on every path, so the
/// epilogue itself never contributes cross-path divergence.
enum class Epilogue {
  kNone = 0,
  kBias,         // c += bias[j]
  kBiasRelu,     // c = max(c + bias[j], 0)
  kBiasSigmoid,  // c = 1 / (1 + exp(-(c + bias[j])))
  kBiasTanh,     // c = tanh(c + bias[j])
};

/// One GEMM invocation: C (m x n, row-major, leading dimension ldc) gets
/// A.B (+ C when `accumulate`). The transpose flags say how the operand is
/// stored, not what it means: logical A is always m x k and logical B is
/// always k x n; with a_trans the buffer holds A^T (k x m, lda >= m), with
/// b_trans it holds B^T (n x k, ldb >= k).
struct GemmCall {
  std::size_t m = 0, n = 0, k = 0;
  const double* a = nullptr;
  std::size_t lda = 0;
  bool a_trans = false;
  const double* b = nullptr;
  std::size_t ldb = 0;
  bool b_trans = false;
  double* c = nullptr;
  std::size_t ldc = 0;
  bool accumulate = false;
  Epilogue epilogue = Epilogue::kNone;
  const double* bias = nullptr;
};

/// C = A.B (+C): a is m x k (lda), b is k x n (ldb).
void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc, bool accumulate = false,
             Epilogue epilogue = Epilogue::kNone, const double* bias = nullptr);

/// C = A.B^T (+C): a is m x k (lda), b is n x k (ldb).
void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc, bool accumulate = false,
             Epilogue epilogue = Epilogue::kNone, const double* bias = nullptr);

/// C = A^T.B (+C): a is k x m (lda), b is k x n (ldb).
void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc, bool accumulate = false,
             Epilogue epilogue = Epilogue::kNone, const double* bias = nullptr);

/// Raw entry point behind the three wrappers (kernel_bench uses it).
void gemm(const GemmCall& call);

// ---------------------------------------------------------------------------
// Quantized KNN distance
// ---------------------------------------------------------------------------

/// Lower bounds on squared Euclidean distance between one full-precision
/// query and n int8-quantized reference rows.
///
/// Row i, dimension c is stored as codes[i*dim + c] with reconstruction
/// x_hat = offset[c] + scale[c] * code; the true coordinate satisfies
/// |x - x_hat| <= half_scale[c] (= scale[c]/2, precomputed). The bound per
/// row is sum_c max(|q_c - x_hat_c| - half_scale_c, 0)^2 <= ||q - x||^2,
/// evaluated in f32 — callers add a small relative slack to absorb f32
/// rounding before using it to prune exact (f64) evaluation.
void knn_lower_bounds(const std::uint8_t* codes, std::size_t n,
                      std::size_t dim, const float* query, const float* scale,
                      const float* offset, const float* half_scale,
                      float* out_lb);

}  // namespace fs::kern
