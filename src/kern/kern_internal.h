// Internal seams between the dispatcher (kern.cpp) and the per-ISA
// translation units. Each arch TU is compiled with its own instruction-set
// flags and exposes exactly one symbol: its vtable accessor. Everything
// else in those TUs lives in anonymous namespaces, so template code
// instantiated under -mavx2/-mavx512f can never be ODR-merged into the
// scalar path (which must stay free of FMA contraction).
#pragma once

#include <cstddef>
#include <cstdint>

#include "kern/kern.h"

namespace fs::kern::detail {

struct VTable {
  void (*gemm)(const GemmCall& call);
  void (*knn_lb)(const std::uint8_t* codes, std::size_t n, std::size_t dim,
                 const float* query, const float* scale, const float* offset,
                 const float* half_scale, float* out_lb);
};

/// Always available; the golden reference.
const VTable* vtable_scalar();
/// Null when the build (not the CPU) lacks the path.
const VTable* vtable_avx2();
const VTable* vtable_avx512();

/// 64-byte-aligned thread-local pack scratch, grown monotonically. Two
/// separate arenas because one GEMM holds both an A block and a B block.
double* pack_scratch_a(std::size_t count);
double* pack_scratch_b(std::size_t count);

}  // namespace fs::kern::detail
