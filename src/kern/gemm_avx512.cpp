// AVX-512F path: 8x8 register tile of double — one full 512-bit B vector
// per tile column block, eight zmm accumulators, FMA accumulation in
// ascending-k order. Compiled with -mavx512f -mfma on x86-64 builds; on
// any other toolchain the TU degrades to a null vtable.
#include <cstddef>
#include <cstdint>

#include "kern/kern_internal.h"

#if defined(__x86_64__) && defined(__AVX512F__)

#include <immintrin.h>

#include <cmath>

#include "kern/gemm_body.h"

namespace fs::kern::detail {

namespace {

struct Avx512Arch {
  static constexpr std::size_t kMr = 8;
  static constexpr std::size_t kNr = 8;

  static void micro_kernel(std::size_t kc, const double* ap, const double* bp,
                           double* acc) {
    __m512d c0 = _mm512_setzero_pd(), c1 = _mm512_setzero_pd();
    __m512d c2 = _mm512_setzero_pd(), c3 = _mm512_setzero_pd();
    __m512d c4 = _mm512_setzero_pd(), c5 = _mm512_setzero_pd();
    __m512d c6 = _mm512_setzero_pd(), c7 = _mm512_setzero_pd();
    for (std::size_t p = 0; p < kc; ++p) {
      // Panel bases and the p-stride (8 doubles) are 64-byte aligned.
      const __m512d b = _mm512_load_pd(bp + p * kNr);
      const double* arow = ap + p * kMr;
      c0 = _mm512_fmadd_pd(_mm512_set1_pd(arow[0]), b, c0);
      c1 = _mm512_fmadd_pd(_mm512_set1_pd(arow[1]), b, c1);
      c2 = _mm512_fmadd_pd(_mm512_set1_pd(arow[2]), b, c2);
      c3 = _mm512_fmadd_pd(_mm512_set1_pd(arow[3]), b, c3);
      c4 = _mm512_fmadd_pd(_mm512_set1_pd(arow[4]), b, c4);
      c5 = _mm512_fmadd_pd(_mm512_set1_pd(arow[5]), b, c5);
      c6 = _mm512_fmadd_pd(_mm512_set1_pd(arow[6]), b, c6);
      c7 = _mm512_fmadd_pd(_mm512_set1_pd(arow[7]), b, c7);
    }
    _mm512_store_pd(acc + 0 * kNr, c0);
    _mm512_store_pd(acc + 1 * kNr, c1);
    _mm512_store_pd(acc + 2 * kNr, c2);
    _mm512_store_pd(acc + 3 * kNr, c3);
    _mm512_store_pd(acc + 4 * kNr, c4);
    _mm512_store_pd(acc + 5 * kNr, c5);
    _mm512_store_pd(acc + 6 * kNr, c6);
    _mm512_store_pd(acc + 7 * kNr, c7);
  }

  static float lb_row(const std::uint8_t* codes, std::size_t dim,
                      const float* query, const float* scale,
                      const float* offset, const float* half_scale) {
    const __m512 zero = _mm512_setzero_ps();
    __m512 acc = zero;
    std::size_t c = 0;
    for (; c + 16 <= dim; c += 16) {
      const __m128i raw =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + c));
      const __m512 code = _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(raw));
      const __m512 reconstructed = _mm512_fmadd_ps(
          _mm512_loadu_ps(scale + c), code, _mm512_loadu_ps(offset + c));
      const __m512 diff =
          _mm512_abs_ps(_mm512_sub_ps(_mm512_loadu_ps(query + c),
                                      reconstructed));
      const __m512 gap = _mm512_max_ps(
          _mm512_sub_ps(diff, _mm512_loadu_ps(half_scale + c)), zero);
      acc = _mm512_fmadd_ps(gap, gap, acc);
    }
    // Fixed-order lane reduction: halves, quarters, pairs, singles.
    const __m256 hi = _mm512_castps512_ps256(
        _mm512_shuffle_f32x4(acc, acc, 0x0e));  // lanes [2,3] -> [0,1]
    const __m256 h = _mm256_add_ps(_mm512_castps512_ps256(acc), hi);
    const __m128 q = _mm_add_ps(_mm256_castps256_ps128(h),
                                _mm256_extractf128_ps(h, 1));
    const __m128 p = _mm_add_ps(q, _mm_movehl_ps(q, q));
    float total =
        _mm_cvtss_f32(_mm_add_ss(p, _mm_shuffle_ps(p, p, 0x1)));
    for (; c < dim; ++c) {
      const float reconstructed =
          offset[c] + scale[c] * static_cast<float>(codes[c]);
      const float gap = std::fabs(query[c] - reconstructed) - half_scale[c];
      if (gap > 0.0f) total += gap * gap;
    }
    return total;
  }
};

void gemm_entry(const GemmCall& call) { run_gemm<Avx512Arch>(call); }

void lb_entry(const std::uint8_t* codes, std::size_t n, std::size_t dim,
              const float* query, const float* scale, const float* offset,
              const float* half_scale, float* out_lb) {
  run_knn_lb<Avx512Arch>(codes, n, dim, query, scale, offset, half_scale,
                         out_lb);
}

}  // namespace

const VTable* vtable_avx512() {
  static const VTable table{&gemm_entry, &lb_entry};
  return &table;
}

}  // namespace fs::kern::detail

#else  // portable build without AVX-512: path compiled out

namespace fs::kern::detail {

const VTable* vtable_avx512() { return nullptr; }

}  // namespace fs::kern::detail

#endif
