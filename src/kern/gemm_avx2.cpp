// AVX2+FMA path: 4x8 register tile of double (4 rows x two 256-bit
// columns, 8 ymm accumulators), FMA accumulation in ascending-k order.
// Compiled with -mavx2 -mfma on x86-64 builds; on any other toolchain the
// TU degrades to a null vtable and dispatch never selects it.
#include <cstddef>
#include <cstdint>

#include "kern/kern_internal.h"

#if defined(__x86_64__) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>

#include "kern/gemm_body.h"

namespace fs::kern::detail {

namespace {

struct Avx2Arch {
  static constexpr std::size_t kMr = 4;
  static constexpr std::size_t kNr = 8;

  static void micro_kernel(std::size_t kc, const double* ap, const double* bp,
                           double* acc) {
    __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
    __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
    __m256d c20 = _mm256_setzero_pd(), c21 = _mm256_setzero_pd();
    __m256d c30 = _mm256_setzero_pd(), c31 = _mm256_setzero_pd();
    for (std::size_t p = 0; p < kc; ++p) {
      // Panel bases are 64-byte aligned and strides are multiples of 32
      // bytes, so aligned loads are safe.
      const __m256d b0 = _mm256_load_pd(bp + p * kNr);
      const __m256d b1 = _mm256_load_pd(bp + p * kNr + 4);
      const double* arow = ap + p * kMr;
      __m256d a = _mm256_broadcast_sd(arow + 0);
      c00 = _mm256_fmadd_pd(a, b0, c00);
      c01 = _mm256_fmadd_pd(a, b1, c01);
      a = _mm256_broadcast_sd(arow + 1);
      c10 = _mm256_fmadd_pd(a, b0, c10);
      c11 = _mm256_fmadd_pd(a, b1, c11);
      a = _mm256_broadcast_sd(arow + 2);
      c20 = _mm256_fmadd_pd(a, b0, c20);
      c21 = _mm256_fmadd_pd(a, b1, c21);
      a = _mm256_broadcast_sd(arow + 3);
      c30 = _mm256_fmadd_pd(a, b0, c30);
      c31 = _mm256_fmadd_pd(a, b1, c31);
    }
    _mm256_store_pd(acc + 0 * kNr, c00);
    _mm256_store_pd(acc + 0 * kNr + 4, c01);
    _mm256_store_pd(acc + 1 * kNr, c10);
    _mm256_store_pd(acc + 1 * kNr + 4, c11);
    _mm256_store_pd(acc + 2 * kNr, c20);
    _mm256_store_pd(acc + 2 * kNr + 4, c21);
    _mm256_store_pd(acc + 3 * kNr, c30);
    _mm256_store_pd(acc + 3 * kNr + 4, c31);
  }

  static float lb_row(const std::uint8_t* codes, std::size_t dim,
                      const float* query, const float* scale,
                      const float* offset, const float* half_scale) {
    const __m256 sign_mask = _mm256_set1_ps(-0.0f);
    const __m256 zero = _mm256_setzero_ps();
    __m256 acc = zero;
    std::size_t c = 0;
    for (; c + 8 <= dim; c += 8) {
      const __m128i raw =
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + c));
      const __m256 code = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(raw));
      const __m256 reconstructed = _mm256_fmadd_ps(
          _mm256_loadu_ps(scale + c), code, _mm256_loadu_ps(offset + c));
      const __m256 diff =
          _mm256_andnot_ps(sign_mask,
                           _mm256_sub_ps(_mm256_loadu_ps(query + c),
                                         reconstructed));
      const __m256 gap = _mm256_max_ps(
          _mm256_sub_ps(diff, _mm256_loadu_ps(half_scale + c)), zero);
      acc = _mm256_fmadd_ps(gap, gap, acc);
    }
    // Fixed-order lane reduction: (lo half + hi half), then pairwise.
    const __m128 halves = _mm_add_ps(_mm256_castps256_ps128(acc),
                                     _mm256_extractf128_ps(acc, 1));
    const __m128 pairs = _mm_add_ps(halves, _mm_movehl_ps(halves, halves));
    float total = _mm_cvtss_f32(
        _mm_add_ss(pairs, _mm_shuffle_ps(pairs, pairs, 0x1)));
    for (; c < dim; ++c) {
      const float reconstructed =
          offset[c] + scale[c] * static_cast<float>(codes[c]);
      const float gap = std::fabs(query[c] - reconstructed) - half_scale[c];
      if (gap > 0.0f) total += gap * gap;
    }
    return total;
  }
};

void gemm_entry(const GemmCall& call) { run_gemm<Avx2Arch>(call); }

void lb_entry(const std::uint8_t* codes, std::size_t n, std::size_t dim,
              const float* query, const float* scale, const float* offset,
              const float* half_scale, float* out_lb) {
  run_knn_lb<Avx2Arch>(codes, n, dim, query, scale, offset, half_scale,
                       out_lb);
}

}  // namespace

const VTable* vtable_avx2() {
  static const VTable table{&gemm_entry, &lb_entry};
  return &table;
}

}  // namespace fs::kern::detail

#else  // portable build without AVX2: path compiled out

namespace fs::kern::detail {

const VTable* vtable_avx2() { return nullptr; }

}  // namespace fs::kern::detail

#endif
