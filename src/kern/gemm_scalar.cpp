// Portable scalar path — the golden reference every vector path is
// measured against. This TU is compiled with -ffp-contract=off so the
// compiler can never fuse the multiply-add below into an FMA: the
// reference semantics are exactly "round after multiply, round after add"
// in ascending-k order, on any host.
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "kern/gemm_body.h"
#include "kern/kern_internal.h"

namespace fs::kern::detail {

namespace {

struct ScalarArch {
  static constexpr std::size_t kMr = 4;
  static constexpr std::size_t kNr = 4;

  static void micro_kernel(std::size_t kc, const double* ap, const double* bp,
                           double* acc) {
    double local[kMr * kNr] = {};
    for (std::size_t p = 0; p < kc; ++p) {
      const double* arow = ap + p * kMr;
      const double* brow = bp + p * kNr;
      for (std::size_t i = 0; i < kMr; ++i) {
        const double a = arow[i];
        for (std::size_t j = 0; j < kNr; ++j)
          local[i * kNr + j] += a * brow[j];
      }
    }
    for (std::size_t v = 0; v < kMr * kNr; ++v) acc[v] = local[v];
  }

  static float lb_row(const std::uint8_t* codes, std::size_t dim,
                      const float* query, const float* scale,
                      const float* offset, const float* half_scale) {
    float acc = 0.0f;
    for (std::size_t c = 0; c < dim; ++c) {
      const float reconstructed =
          offset[c] + scale[c] * static_cast<float>(codes[c]);
      const float gap = std::fabs(query[c] - reconstructed) - half_scale[c];
      if (gap > 0.0f) acc += gap * gap;
    }
    return acc;
  }
};

void gemm_entry(const GemmCall& call) { run_gemm<ScalarArch>(call); }

void lb_entry(const std::uint8_t* codes, std::size_t n, std::size_t dim,
              const float* query, const float* scale, const float* offset,
              const float* half_scale, float* out_lb) {
  run_knn_lb<ScalarArch>(codes, n, dim, query, scale, offset, half_scale,
                         out_lb);
}

}  // namespace

const VTable* vtable_scalar() {
  static const VTable table{&gemm_entry, &lb_entry};
  return &table;
}

}  // namespace fs::kern::detail
