#include "kern/kern.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "kern/kern_internal.h"
#include "util/aligned.h"

namespace fs::kern {

namespace {

const detail::VTable* vtable_for(IsaPath path) {
  switch (path) {
    case IsaPath::kScalar:
      return detail::vtable_scalar();
    case IsaPath::kAvx2:
      return detail::vtable_avx2();
    case IsaPath::kAvx512:
      return detail::vtable_avx512();
  }
  return nullptr;
}

bool cpu_supports(IsaPath path) {
  switch (path) {
    case IsaPath::kScalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case IsaPath::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case IsaPath::kAvx512:
      return __builtin_cpu_supports("avx512f");
#else
    case IsaPath::kAvx2:
    case IsaPath::kAvx512:
      return false;
#endif
  }
  return false;
}

IsaPath parse_path(const std::string& name) {
  if (name == "scalar") return IsaPath::kScalar;
  if (name == "avx2") return IsaPath::kAvx2;
  if (name == "avx512") return IsaPath::kAvx512;
  throw std::runtime_error("FS_KERNEL: unknown kernel path '" + name +
                           "' (expected scalar|avx2|avx512)");
}

struct Dispatch {
  IsaPath path = IsaPath::kScalar;
  std::string requested;  // FS_KERNEL value, "" when auto-detected
};

std::mutex g_mutex;
Dispatch g_dispatch;
// The hot path reads one atomic: the resolved vtable (null = unresolved).
std::atomic<const detail::VTable*> g_vtable{nullptr};

const detail::VTable* resolve_locked() {
  const char* env = std::getenv("FS_KERNEL");
  if (env != nullptr && *env != '\0') {
    const IsaPath requested = parse_path(env);
    if (!path_supported(requested))
      throw std::runtime_error(std::string("FS_KERNEL=") + env +
                               " is not supported on this host/build");
    g_dispatch = Dispatch{requested, env};
  } else {
    IsaPath best = IsaPath::kScalar;
    for (IsaPath candidate : {IsaPath::kAvx2, IsaPath::kAvx512})
      if (path_supported(candidate)) best = candidate;
    g_dispatch = Dispatch{best, ""};
  }
  const detail::VTable* table = vtable_for(g_dispatch.path);
  g_vtable.store(table, std::memory_order_release);
  return table;
}

const detail::VTable* active_vtable() {
  const detail::VTable* table = g_vtable.load(std::memory_order_acquire);
  if (table != nullptr) return table;
  std::lock_guard<std::mutex> lock(g_mutex);
  table = g_vtable.load(std::memory_order_acquire);
  if (table != nullptr) return table;
  return resolve_locked();
}

}  // namespace

const char* path_name(IsaPath path) {
  switch (path) {
    case IsaPath::kScalar:
      return "scalar";
    case IsaPath::kAvx2:
      return "avx2";
    case IsaPath::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool path_supported(IsaPath path) {
  return cpu_supports(path) && vtable_for(path) != nullptr;
}

std::vector<IsaPath> supported_paths() {
  std::vector<IsaPath> paths;
  for (IsaPath candidate :
       {IsaPath::kScalar, IsaPath::kAvx2, IsaPath::kAvx512})
    if (path_supported(candidate)) paths.push_back(candidate);
  return paths;
}

IsaPath active_path() {
  active_vtable();
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_dispatch.path;
}

std::string requested_path() {
  active_vtable();
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_dispatch.requested;
}

void force_path(IsaPath path) {
  if (!path_supported(path))
    throw std::runtime_error(std::string("force_path: ") + path_name(path) +
                             " is not supported on this host/build");
  std::lock_guard<std::mutex> lock(g_mutex);
  g_dispatch.path = path;
  g_vtable.store(vtable_for(path), std::memory_order_release);
}

namespace detail {

double* pack_scratch_a(std::size_t count) {
  thread_local std::vector<double, util::AlignedAllocator<double>> buffer;
  if (buffer.size() < count) buffer.resize(count);
  return buffer.data();
}

double* pack_scratch_b(std::size_t count) {
  thread_local std::vector<double, util::AlignedAllocator<double>> buffer;
  if (buffer.size() < count) buffer.resize(count);
  return buffer.data();
}

}  // namespace detail

void gemm(const GemmCall& call) {
  if (call.m == 0 || call.n == 0) return;
  if (call.c == nullptr)
    throw std::invalid_argument("kern::gemm: null output");
  if (call.k != 0 && (call.a == nullptr || call.b == nullptr))
    throw std::invalid_argument("kern::gemm: null operand");
  if (call.epilogue != Epilogue::kNone && call.bias == nullptr)
    throw std::invalid_argument("kern::gemm: epilogue without bias");
  if (call.ldc < call.n)
    throw std::invalid_argument("kern::gemm: ldc < n");
  active_vtable()->gemm(call);
}

namespace {

GemmCall make_call(std::size_t m, std::size_t n, std::size_t k,
                   const double* a, std::size_t lda, bool a_trans,
                   const double* b, std::size_t ldb, bool b_trans, double* c,
                   std::size_t ldc, bool accumulate, Epilogue epilogue,
                   const double* bias) {
  GemmCall call;
  call.m = m;
  call.n = n;
  call.k = k;
  call.a = a;
  call.lda = lda;
  call.a_trans = a_trans;
  call.b = b;
  call.ldb = ldb;
  call.b_trans = b_trans;
  call.c = c;
  call.ldc = ldc;
  call.accumulate = accumulate;
  call.epilogue = epilogue;
  call.bias = bias;
  return call;
}

}  // namespace

void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc, bool accumulate, Epilogue epilogue,
             const double* bias) {
  gemm(make_call(m, n, k, a, lda, /*a_trans=*/false, b, ldb,
                 /*b_trans=*/false, c, ldc, accumulate, epilogue, bias));
}

void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc, bool accumulate, Epilogue epilogue,
             const double* bias) {
  gemm(make_call(m, n, k, a, lda, /*a_trans=*/false, b, ldb,
                 /*b_trans=*/true, c, ldc, accumulate, epilogue, bias));
}

void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc, bool accumulate, Epilogue epilogue,
             const double* bias) {
  gemm(make_call(m, n, k, a, lda, /*a_trans=*/true, b, ldb,
                 /*b_trans=*/false, c, ldc, accumulate, epilogue, bias));
}

void knn_lower_bounds(const std::uint8_t* codes, std::size_t n,
                      std::size_t dim, const float* query, const float* scale,
                      const float* offset, const float* half_scale,
                      float* out_lb) {
  if (n == 0) return;
  if (codes == nullptr || query == nullptr || scale == nullptr ||
      offset == nullptr || half_scale == nullptr || out_lb == nullptr)
    throw std::invalid_argument("kern::knn_lower_bounds: null argument");
  active_vtable()->knn_lb(codes, n, dim, query, scale, offset, half_scale,
                          out_lb);
}

}  // namespace fs::kern
