// Shared cache-blocked GEMM driver, templated over an Arch policy.
//
// Each per-ISA translation unit instantiates run_gemm<Arch> (inside an
// anonymous namespace) with a policy providing:
//
//   static constexpr std::size_t kMr, kNr;   // register tile shape
//   static void micro_kernel(std::size_t kc, const double* ap,
//                            const double* bp, double* acc);
//       // acc[kMr*kNr] = sum_{p<kc} ap[p*kMr+i] * bp[p*kNr+j], overwriting
//   static float lb_row(const std::uint8_t* codes, std::size_t dim,
//                       const float* query, const float* scale,
//                       const float* offset, const float* half_scale);
//
// Blocking follows the BLIS decomposition: B is packed into NR-wide column
// panels per (jc, pc) block by the calling thread; A is packed into
// MR-tall row panels per MC block by whichever worker owns that block. The
// parallel axis is the MC row-block index — a pure function of m, so the
// fs::par determinism contract (chunks independent of thread count) makes
// output bits thread-count-invariant for a fixed Arch. Edge tiles are
// zero-padded during packing, so the micro-kernel always runs a full
// MR x NR tile and writeback clips.
//
// Epilogues fuse into tile writeback on the LAST pc block: by then the
// tile holds its complete k-accumulation (the pc loop is outer to the
// tile loops), so bias+activation costs no extra pass over C.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "kern/kern.h"
#include "kern/kern_internal.h"
#include "par/par.h"

namespace fs::kern::detail {

// Blocking parameters in doubles: a KC-deep A strip streams from L1, the
// packed MC x KC A block (~192 KiB) targets L2, the packed KC x NC B block
// (~1 MiB) targets L3.
inline constexpr std::size_t kKc = 256;
inline constexpr std::size_t kMc = 96;
inline constexpr std::size_t kNc = 512;

/// Logical A(i, p) of the m x k operand, whichever way it is stored.
inline double load_a(const GemmCall& call, std::size_t i, std::size_t p) {
  return call.a_trans ? call.a[p * call.lda + i] : call.a[i * call.lda + p];
}

/// Logical B(p, j) of the k x n operand.
inline double load_b(const GemmCall& call, std::size_t p, std::size_t j) {
  return call.b_trans ? call.b[j * call.ldb + p] : call.b[p * call.ldb + j];
}

template <std::size_t MR>
inline void pack_a_block(const GemmCall& call, std::size_t ic, std::size_t mc,
                         std::size_t pc, std::size_t kc, double* ap) {
  std::size_t panel = 0;
  for (std::size_t ir = 0; ir < mc; ir += MR, ++panel) {
    double* dst = ap + panel * kc * MR;
    const std::size_t mr = std::min(MR, mc - ir);
    for (std::size_t p = 0; p < kc; ++p)
      for (std::size_t ii = 0; ii < MR; ++ii)
        dst[p * MR + ii] =
            ii < mr ? load_a(call, ic + ir + ii, pc + p) : 0.0;
  }
}

template <std::size_t NR>
inline void pack_b_block(const GemmCall& call, std::size_t jc, std::size_t nc,
                         std::size_t pc, std::size_t kc, double* bp) {
  std::size_t panel = 0;
  for (std::size_t jr = 0; jr < nc; jr += NR, ++panel) {
    double* dst = bp + panel * kc * NR;
    const std::size_t nr = std::min(NR, nc - jr);
    for (std::size_t p = 0; p < kc; ++p)
      for (std::size_t jj = 0; jj < NR; ++jj)
        dst[p * NR + jj] =
            jj < nr ? load_b(call, pc + p, jc + jr + jj) : 0.0;
  }
}

/// Bias + activation on one finished accumulator value. Sigmoid/tanh go
/// through libm on every path, so epilogue bits never depend on the ISA.
inline double apply_epilogue(Epilogue epilogue, double v, double bias) {
  switch (epilogue) {
    case Epilogue::kNone:
      return v;
    case Epilogue::kBias:
      return v + bias;
    case Epilogue::kBiasRelu:
      v += bias;
      return v > 0.0 ? v : 0.0;
    case Epilogue::kBiasSigmoid:
      v += bias;
      return 1.0 / (1.0 + std::exp(-v));
    case Epilogue::kBiasTanh:
      v += bias;
      return std::tanh(v);
  }
  return v;
}

template <std::size_t MR, std::size_t NR>
inline void write_tile(const GemmCall& call, std::size_t i0, std::size_t mr,
                       std::size_t j0, std::size_t nr, const double* acc,
                       bool accumulate, bool finish) {
  const bool epi = finish && call.epilogue != Epilogue::kNone;
  for (std::size_t i = 0; i < mr; ++i) {
    double* crow = call.c + (i0 + i) * call.ldc + j0;
    for (std::size_t j = 0; j < nr; ++j) {
      double v = acc[i * NR + j];
      if (accumulate) v += crow[j];
      if (epi) v = apply_epilogue(call.epilogue, v, call.bias[j0 + j]);
      crow[j] = v;
    }
  }
}

/// k == 0 degenerates to an epilogue-only sweep: C = epilogue(C or 0).
inline void epilogue_only(const GemmCall& call) {
  for (std::size_t i = 0; i < call.m; ++i) {
    double* crow = call.c + i * call.ldc;
    for (std::size_t j = 0; j < call.n; ++j) {
      double v = call.accumulate ? crow[j] : 0.0;
      if (call.epilogue != Epilogue::kNone)
        v = apply_epilogue(call.epilogue, v, call.bias[j]);
      crow[j] = v;
    }
  }
}

template <typename Arch>
void run_gemm(const GemmCall& call) {
  constexpr std::size_t MR = Arch::kMr;
  constexpr std::size_t NR = Arch::kNr;
  if (call.m == 0 || call.n == 0) return;
  if (call.k == 0) {
    epilogue_only(call);
    return;
  }

  const std::size_t num_ic = (call.m + kMc - 1) / kMc;
  par::ParallelOptions options;
  options.what = "kern.gemm";
  options.grain = 1;  // one chunk per MC row block — never thread-derived

  for (std::size_t jc = 0; jc < call.n; jc += kNc) {
    const std::size_t nc = std::min(kNc, call.n - jc);
    const std::size_t nc_padded = (nc + NR - 1) / NR * NR;
    for (std::size_t pc = 0; pc < call.k; pc += kKc) {
      const std::size_t kc = std::min(kKc, call.k - pc);
      const bool last_pc = pc + kc == call.k;
      const bool acc_c = call.accumulate || pc != 0;
      double* bp = pack_scratch_b(nc_padded * kc);
      pack_b_block<NR>(call, jc, nc, pc, kc, bp);
      const auto block_body = [&, bp](std::size_t blk) {
        const std::size_t ic = blk * kMc;
        const std::size_t mc = std::min(kMc, call.m - ic);
        const std::size_t mc_padded = (mc + MR - 1) / MR * MR;
        double* ap = pack_scratch_a(mc_padded * kc);
        pack_a_block<MR>(call, ic, mc, pc, kc, ap);
        alignas(64) double acc[MR * NR];
        for (std::size_t jr = 0; jr < nc; jr += NR) {
          const double* bpanel = bp + (jr / NR) * kc * NR;
          const std::size_t nr = std::min(NR, nc - jr);
          for (std::size_t ir = 0; ir < mc; ir += MR) {
            Arch::micro_kernel(kc, ap + (ir / MR) * kc * MR, bpanel, acc);
            write_tile<MR, NR>(call, ic + ir, std::min(MR, mc - ir), jc + jr,
                               nr, acc, acc_c, last_pc);
          }
        }
      };
      // Mini-batch-sized products (a single MC block) skip the parallel
      // region entirely — same body, same order, none of the fork-join
      // bookkeeping. Identical to what a 1-chunk region would execute.
      if (num_ic == 1)
        block_body(0);
      else
        par::parallel_for(num_ic, options, block_body);
    }
  }
}

template <typename Arch>
void run_knn_lb(const std::uint8_t* codes, std::size_t n, std::size_t dim,
                const float* query, const float* scale, const float* offset,
                const float* half_scale, float* out_lb) {
  // Serial on purpose: callers (KNN predict) already run one query per
  // fs::par chunk, and nested regions would inline anyway.
  for (std::size_t i = 0; i < n; ++i)
    out_lb[i] =
        Arch::lb_row(codes + i * dim, dim, query, scale, offset, half_scale);
}

}  // namespace fs::kern::detail
