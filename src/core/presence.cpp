#include "core/presence.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "obs/trace.h"

namespace fs::core {

std::vector<std::size_t> make_encoder_dims(
    std::size_t input_dim, const PresenceModelConfig& config) {
  if (input_dim <= config.feature_dim)
    throw std::invalid_argument(
        "make_encoder_dims: input not larger than feature dim");
  std::vector<std::size_t> dims{input_dim};
  std::size_t width = input_dim;
  for (int layer = 0; layer < config.max_hidden_layers; ++layer) {
    width /= 2;
    // Keep halving only while the layer stays meaningfully wider than the
    // code; otherwise the extra layer adds depth without compression.
    if (width <= config.feature_dim * 2) break;
    dims.push_back(std::min(width, config.max_hidden_width));
  }
  dims.push_back(config.feature_dim);
  return dims;
}

PresenceModel::PresenceModel(const PresenceModelConfig& config)
    : config_(config), knn_(config.knn_k) {
  if (config.feature_dim == 0)
    throw std::invalid_argument("PresenceModel: feature_dim must be > 0");
  knn_.set_quantize(config.knn_quantize);
}

void PresenceModel::set_knn_quantize(bool enabled) {
  config_.knn_quantize = enabled;
  knn_.set_quantize(enabled);
}

void PresenceModel::train(const nn::Matrix& jocs,
                          const std::vector<int>& labels) {
  if (jocs.rows() != labels.size())
    throw std::invalid_argument("PresenceModel::train: size mismatch");
  if (jocs.rows() == 0)
    throw std::invalid_argument("PresenceModel::train: empty training set");
  FS_SPAN("core.presence.train");

  nn::AutoencoderConfig ae;
  ae.encoder_dims = make_encoder_dims(jocs.cols(), config_);
  ae.learning_rate = config_.learning_rate;
  ae.alpha = config_.alpha;
  ae.epochs = config_.epochs;
  ae.batch_size = config_.batch_size;
  ae.seed = config_.seed;
  ae.diagnostics = config_.diagnostics;
  ae.context = config_.context;
  autoencoder_.emplace(ae);

  // "A small number of raw JOC samples" trains the autoencoder; subsample
  // deterministically and stratified if the corpus is larger.
  obs::Span ae_span("core.presence.autoencoder");
  if (jocs.rows() > config_.max_autoencoder_rows) {
    util::Rng rng(config_.seed ^ 0xfeedULL);
    std::vector<std::size_t> pos, neg;
    for (std::size_t i = 0; i < labels.size(); ++i)
      (labels[i] != 0 ? pos : neg).push_back(i);
    rng.shuffle(pos);
    rng.shuffle(neg);
    const std::size_t half = config_.max_autoencoder_rows / 2;
    std::vector<std::size_t> chosen;
    for (std::size_t i = 0; i < std::min(half, pos.size()); ++i)
      chosen.push_back(pos[i]);
    for (std::size_t i = 0; i < std::min(half, neg.size()); ++i)
      chosen.push_back(neg[i]);
    rng.shuffle(chosen);
    std::vector<int> sub_labels;
    sub_labels.reserve(chosen.size());
    for (std::size_t i : chosen) sub_labels.push_back(labels[i]);
    autoencoder_->train(jocs.gather_rows(chosen), sub_labels);
  } else {
    autoencoder_->train(jocs, labels);
  }
  ae_span.end();

  // KNN stage over the code of the training corpus (capped: query cost is
  // linear in the reference-set size).
  obs::Span knn_span("core.presence.knn_fit");
  const nn::Matrix code = autoencoder_->encode(jocs);
  const nn::Matrix scaled = code_scaler_.fit_transform(code);
  if (scaled.rows() > config_.max_knn_rows) {
    util::Rng rng(config_.seed ^ 0x6b6eULL);
    std::vector<std::size_t> rows(scaled.rows());
    for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
    rng.shuffle(rows);
    rows.resize(config_.max_knn_rows);
    std::vector<int> sub_labels;
    sub_labels.reserve(rows.size());
    for (std::size_t i : rows) sub_labels.push_back(labels[i]);
    knn_.fit(scaled.gather_rows(rows), std::move(sub_labels));
  } else {
    knn_.fit(scaled, labels);
  }
  trained_ = true;
}

nn::Matrix PresenceModel::encode(const nn::Matrix& jocs) const {
  if (!trained_) throw std::logic_error("PresenceModel: encode before train");
  FS_SPAN("core.presence.encode");
  return autoencoder_->encode(jocs);
}

std::vector<double> PresenceModel::predict_proba(
    const nn::Matrix& jocs) const {
  return predict_proba_encoded(encode(jocs));
}

std::vector<double> PresenceModel::predict_proba_encoded(
    const nn::Matrix& features) const {
  if (!trained_)
    throw std::logic_error("PresenceModel: predict before train");
  return knn_.predict_proba(code_scaler_.transform(features),
                            config_.context);
}

std::vector<int> PresenceModel::predict(const nn::Matrix& jocs) const {
  const std::vector<double> probs = predict_proba(jocs);
  std::vector<int> out(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) out[i] = probs[i] >= 0.5;
  return out;
}

void PresenceModel::save(util::BinaryWriter& writer) const {
  if (!trained_) throw std::logic_error("PresenceModel::save: not trained");
  writer.tag("PRES");
  writer.u64(config_.feature_dim);
  writer.i64(config_.max_hidden_layers);
  writer.u64(config_.max_hidden_width);
  writer.f64(config_.learning_rate);
  writer.f64(config_.alpha);
  writer.i64(config_.epochs);
  writer.u64(config_.batch_size);
  writer.u64(config_.knn_k);
  writer.u64(config_.max_autoencoder_rows);
  writer.u64(config_.max_knn_rows);
  writer.u64(config_.seed);
  autoencoder_->save(writer);
  code_scaler_.save(writer);
  knn_.save(writer);
}

PresenceModel PresenceModel::load(util::BinaryReader& reader) {
  reader.expect_tag("PRES");
  PresenceModelConfig cfg;
  cfg.feature_dim = reader.u64();
  cfg.max_hidden_layers = static_cast<int>(reader.i64());
  cfg.max_hidden_width = reader.u64();
  cfg.learning_rate = reader.f64();
  cfg.alpha = reader.f64();
  cfg.epochs = static_cast<int>(reader.i64());
  cfg.batch_size = reader.u64();
  cfg.knn_k = reader.u64();
  cfg.max_autoencoder_rows = reader.u64();
  cfg.max_knn_rows = reader.u64();
  cfg.seed = reader.u64();
  PresenceModel model(cfg);
  model.autoencoder_.emplace(nn::SupervisedAutoencoder::load(reader));
  model.code_scaler_ = ml::StandardScaler::load(reader);
  model.knn_ = ml::KnnClassifier::load(reader);
  model.trained_ = true;
  return model;
}

}  // namespace fs::core
