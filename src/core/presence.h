// Phase 1: presence-proximity feature extraction and real-world friendship
// prediction (Sections III-B.2 and III-B.3).
//
// A supervised autoencoder compresses JOCs into d-dimensional features; a
// KNN classifier over those features predicts real-world friendship and
// seeds the initial social graph G(0).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ml/knn.h"
#include "ml/scaler.h"
#include "nn/supervised_autoencoder.h"

namespace fs::core {

struct PresenceModelConfig {
  std::size_t feature_dim = 64;  // the paper's d
  /// Consecutive encoder layers halve the width (paper Sec IV-B); this caps
  /// how many halving layers are inserted between input and code.
  int max_hidden_layers = 1;
  /// Width cap on hidden encoder layers. The paper halves layer widths all
  /// the way down; at laptop scale the first halved layer can still be very
  /// wide when the quadtree is deep, so widths are clamped (a pure
  /// compute-scaling knob — the code layer and training recipe are
  /// unchanged).
  std::size_t max_hidden_width = 320;
  double learning_rate = 0.005;  // paper's default beta
  double alpha = 1.0;            // loss balance
  int epochs = 18;
  std::size_t batch_size = 16;
  std::size_t knn_k = 7;
  /// Cap on autoencoder training rows; the paper labels "a small number of
  /// raw JOC samples". Extra rows are still used for the KNN stage.
  std::size_t max_autoencoder_rows = 800;
  /// Cap on KNN reference rows (query cost is linear in this).
  std::size_t max_knn_rows = 2500;
  /// Routes KNN queries through the int8 lower-bound distance engine
  /// (exact rerank of survivors; see ml::KnnClassifier::set_quantize).
  /// A runtime acceleration knob: not serialized, and re-applied after
  /// load via set_knn_quantize.
  bool knn_quantize = false;
  std::uint64_t seed = 13;
  /// Optional sink for autoencoder divergence reports (not serialized).
  fs::util::Diagnostics* diagnostics = nullptr;
  /// Optional execution governance (cancellation + deadline truncation for
  /// autoencoder training). Not serialized.
  fs::runtime::ExecutionContext* context = nullptr;
};

/// Builds the encoder layer widths for a given input size: repeated halving
/// down to the code dimension.
std::vector<std::size_t> make_encoder_dims(std::size_t input_dim,
                                           const PresenceModelConfig& config);

class PresenceModel {
 public:
  explicit PresenceModel(const PresenceModelConfig& config);

  /// Trains autoencoder + classifier on labeled JOC rows, then fits the KNN
  /// stage over the learned code of ALL training rows.
  void train(const nn::Matrix& jocs, const std::vector<int>& labels);

  /// Presence-proximity features h^(R) per JOC row.
  nn::Matrix encode(const nn::Matrix& jocs) const;

  /// Real-world friendship probability per JOC row (KNN over the code).
  std::vector<double> predict_proba(const nn::Matrix& jocs) const;
  std::vector<int> predict(const nn::Matrix& jocs) const;

  /// KNN probability for rows that are ALREADY encoded (and unscaled).
  std::vector<double> predict_proba_encoded(const nn::Matrix& features) const;

  bool trained() const { return trained_; }
  std::size_t feature_dim() const { return config_.feature_dim; }

  /// Toggles the quantized KNN distance path at runtime (used to re-apply
  /// the knob to a deserialized model — serialization never records it).
  void set_knn_quantize(bool enabled);
  const ml::KnnQuantStats& knn_quant_stats() const {
    return knn_.quant_stats();
  }

  /// Serializes the trained model (autoencoder, scaler, KNN stage) so an
  /// attack can be trained once and reused across targets.
  void save(util::BinaryWriter& writer) const;
  static PresenceModel load(util::BinaryReader& reader);
  const nn::SupervisedAutoencoder* autoencoder() const {
    return autoencoder_ ? &*autoencoder_ : nullptr;
  }

 private:
  PresenceModelConfig config_;
  std::optional<nn::SupervisedAutoencoder> autoencoder_;
  ml::StandardScaler code_scaler_;
  ml::KnnClassifier knn_;
  bool trained_ = false;
};

}  // namespace fs::core
