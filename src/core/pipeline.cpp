#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <memory>
#include <optional>
#include <stdexcept>

#include "core/checkpoint.h"
#include "core/joc.h"
#include "geo/spatial_division.h"
#include "geo/time_slots.h"
#include "graph/metrics.h"
#include "ml/metrics.h"
#include "ml/scaler.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "par/par.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace fs::core {

FriendSeeker::FriendSeeker(const FriendSeekerConfig& config)
    : config_(config) {
  if (config.k < 2)
    throw std::invalid_argument("FriendSeeker: k must be >= 2");
  if (config.tau_days <= 0.0)
    throw std::invalid_argument("FriendSeeker: tau must be > 0");
}

namespace {

/// All candidate pairs (train + test) with a dense row index; the social
/// graph only ever contains candidate edges, so each edge has a feature row.
struct PairUniverse {
  std::vector<data::UserPair> pairs;
  std::map<data::UserPair, std::size_t> row_of;

  void add(const std::vector<data::UserPair>& more) {
    for (const data::UserPair& p : more) {
      const data::UserPair key = data::make_pair_ordered(p.first, p.second);
      if (row_of.emplace(key, pairs.size()).second) pairs.push_back(key);
    }
  }
};

graph::Graph graph_from_predictions(std::size_t user_count,
                                    const PairUniverse& universe,
                                    const std::vector<int>& predictions) {
  graph::Graph g(user_count);
  for (std::size_t i = 0; i < universe.pairs.size(); ++i)
    if (predictions[i])
      g.add_edge(universe.pairs[i].first, universe.pairs[i].second);
  return g;
}

/// FNV-1a over the run parameters a checkpoint must agree on; a resume
/// against a different dataset/config is rejected instead of mixed in.
std::uint64_t run_fingerprint(const FriendSeekerConfig& config,
                              const data::Dataset& dataset,
                              std::size_t universe_size,
                              std::size_t train_size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(dataset.user_count());
  mix(dataset.checkin_count());
  mix(universe_size);
  mix(train_size);
  mix(config.seed);
  mix(static_cast<std::uint64_t>(config.k));
  mix(config.sigma);
  mix(static_cast<std::uint64_t>(config.tau_days * 1e6));
  mix(config.presence.feature_dim);
  mix(static_cast<std::uint64_t>(config.phase2_classifier));
  return h;
}

}  // namespace

FriendSeekerResult FriendSeeker::run(
    const data::Dataset& dataset,
    const std::vector<data::UserPair>& train_pairs,
    const std::vector<int>& train_labels,
    const std::vector<data::UserPair>& test_pairs) {
  if (train_pairs.size() != train_labels.size())
    throw std::invalid_argument("FriendSeeker::run: train size mismatch");
  if (train_pairs.empty() || test_pairs.empty())
    throw std::invalid_argument("FriendSeeker::run: empty pair lists");

  runtime::ExecutionContext* const ctx = config_.context;
  obs::Span run_span("core.pipeline.run");

  // ---- Spatial-temporal division. ----
  obs::Span std_span("core.pipeline.std_division");
  const std::vector<geo::LatLng> poi_coords = dataset.poi_coordinates();
  std::unique_ptr<geo::QuadtreeDivision> quadtree;
  std::unique_ptr<geo::UniformGridDivision> uniform;
  std::unique_ptr<geo::SpatialDivision> division;
  if (config_.uniform_grid) {
    uniform = std::make_unique<geo::UniformGridDivision>(
        poi_coords, config_.uniform_rows, config_.uniform_cols);
    division = std::make_unique<geo::UniformGridDivisionView>(*uniform);
  } else {
    quadtree =
        std::make_unique<geo::QuadtreeDivision>(poi_coords, config_.sigma);
    division = std::make_unique<geo::QuadtreeDivisionView>(*quadtree);
  }
  const geo::TimeSlotting slots(
      dataset.window_begin(), dataset.window_end(),
      static_cast<geo::Timestamp>(config_.tau_days * geo::kSecondsPerDay));
  const OccupancyIndex occupancy(dataset, *division, slots);
  std_span.end();
  util::log_debug("FriendSeeker: STD I=", division->cell_count(),
                  " J=", slots.slot_count(), " joc_dim=", occupancy.joc_dim());

  // ---- Candidate-pair universe and JOCs. ----
  PairUniverse universe;
  universe.add(train_pairs);
  universe.add(test_pairs);
  // The JOC matrix is the run's dominant allocation; charge its estimate
  // against the memory budget up front so an over-budget configuration is
  // rejected before the build instead of OOMing halfway through.
  JocOptions joc_options;
  joc_options.context = ctx;
  const runtime::MemoryCharge joc_charge(
      ctx, universe.pairs.size() * occupancy.joc_dim() * sizeof(double),
      "core.joc.matrix");
  const nn::Matrix all_jocs =
      build_joc_matrix(occupancy, universe.pairs, joc_options);

  auto rows_of = [&](const std::vector<data::UserPair>& pairs) {
    std::vector<std::size_t> rows;
    rows.reserve(pairs.size());
    for (const data::UserPair& p : pairs)
      rows.push_back(
          universe.row_of.at(data::make_pair_ordered(p.first, p.second)));
    return rows;
  };
  const std::vector<std::size_t> train_rows = rows_of(train_pairs);
  const std::vector<std::size_t> test_rows = rows_of(test_pairs);

  FriendSeekerResult result;
  util::Diagnostics& diagnostics = result.diagnostics;

  // ---- Checkpoint/resume bookkeeping. ----
  const std::string checkpoint_path =
      config_.checkpoint_dir.empty()
          ? std::string()
          : config_.checkpoint_dir + "/checkpoint.fsck";
  const std::uint64_t fingerprint = run_fingerprint(
      config_, dataset, universe.pairs.size(), train_pairs.size());
  if (!config_.checkpoint_dir.empty())
    std::filesystem::create_directories(config_.checkpoint_dir);

  std::optional<PipelineCheckpoint> resumed;
  if (config_.resume && !checkpoint_path.empty() &&
      !std::filesystem::exists(checkpoint_path)) {
    diagnostics.report(util::Severity::kInfo, ErrorCode::kIo, "pipeline",
                       "no checkpoint at " + checkpoint_path +
                           "; starting fresh");
  }
  if (config_.resume && !checkpoint_path.empty() &&
      std::filesystem::exists(checkpoint_path)) {
    try {
      PipelineCheckpoint cp = load_pipeline_checkpoint(checkpoint_path);
      if (cp.fingerprint != fingerprint) {
        diagnostics.report(util::Severity::kWarning,
                           ErrorCode::kCorruptCheckpoint, "pipeline",
                           "checkpoint fingerprint mismatch (different "
                           "dataset or config); restarting from phase 1");
      } else if (cp.predictions.size() != universe.pairs.size() ||
                 cp.scores.size() != universe.pairs.size() ||
                 !cp.presence.has_value() || !cp.presence->trained()) {
        diagnostics.report(util::Severity::kWarning,
                           ErrorCode::kCorruptCheckpoint, "pipeline",
                           "checkpoint shape mismatch; restarting from "
                           "phase 1");
      } else {
        resumed = std::move(cp);
      }
    } catch (const Error& e) {
      diagnostics.report(util::Severity::kWarning,
                         ErrorCode::kCorruptCheckpoint, "pipeline",
                         std::string("cannot resume, restarting cleanly: ") +
                             e.what());
    }
  }

  // ---- Phase 1: presence model (trained, or restored from checkpoint). --
  PresenceModelConfig presence_cfg = config_.presence;
  presence_cfg.seed ^= config_.seed;
  presence_cfg.diagnostics = &diagnostics;
  std::optional<PresenceModel> presence_storage;
  if (resumed.has_value()) {
    presence_storage = std::move(*resumed->presence);
    result.resumed_from_iteration = resumed->iteration;
    diagnostics.report(util::Severity::kInfo, ErrorCode::kIo, "pipeline",
                       "resumed from checkpoint at iteration " +
                           std::to_string(resumed->iteration));
  } else {
    presence_cfg.context = ctx;
    presence_storage.emplace(presence_cfg);
    obs::Span phase1_timer("core.pipeline.phase1");
    {
      // Per-phase budget: tighten the deadline for phase 1 only. An expired
      // deadline truncates autoencoder training at the next epoch boundary
      // (a partially trained model is still usable), recorded below.
      runtime::PhaseScope phase1_scope(ctx, config_.phase1_budget_sec);
      presence_storage->train(all_jocs.gather_rows(train_rows),
                              train_labels);
      if (ctx != nullptr && ctx->deadline_expired())
        result.degradation.add("phase1.autoencoder", "deadline",
                               "training truncated by wall-clock budget");
    }
    phase1_timer.end();
    util::log_debug("FriendSeeker: phase-1 training ",
                    phase1_timer.seconds(), "s");
  }
  PresenceModel& presence = *presence_storage;

  const runtime::MemoryCharge embedding_charge(
      ctx, universe.pairs.size() * presence.feature_dim() * sizeof(double),
      "core.embeddings");
  obs::Span encode_span("core.pipeline.phase1.encode");
  const nn::Matrix embeddings = presence.encode(all_jocs);
  const std::vector<double> phase1_proba =
      presence.predict_proba_encoded(embeddings);
  encode_span.end();
  for (double p : phase1_proba)
    if (!std::isfinite(p))
      throw NumericError(
          "FriendSeeker: phase-1 probabilities contain non-finite values");

  // The operating point is picked on the training split (every attack in
  // the evaluation does the same — the attacker maximizes train F1).
  auto tune_on_train = [&](const std::vector<double>& scores) {
    std::vector<double> train_scores;
    train_scores.reserve(train_rows.size());
    for (std::size_t row : train_rows) train_scores.push_back(scores[row]);
    return ml::tune_f1_threshold(train_scores, train_labels).threshold;
  };

  std::vector<int> predictions;
  std::vector<double> scores;
  int start_iteration = 1;
  if (resumed.has_value()) {
    predictions = std::move(resumed->predictions);
    scores = std::move(resumed->scores);
    start_iteration = resumed->iteration + 1;
  } else {
    // Phase 1 seeds the graph; a too-permissive cut floods G(0) with
    // false edges that phase 2 then has to prune back (overshoot). The seed
    // cut is therefore never below the KNN's natural majority threshold.
    const double phase1_cut = std::max(tune_on_train(phase1_proba), 0.5);
    predictions.resize(universe.pairs.size());
    for (std::size_t i = 0; i < predictions.size(); ++i)
      predictions[i] = phase1_proba[i] >= phase1_cut;
    scores = phase1_proba;
  }

  auto record_iteration = [&](int iteration, double change,
                              const graph::Graph& g) {
    IterationRecord rec;
    rec.iteration = iteration;
    rec.edge_change_ratio = change;
    rec.graph_edges = g.edge_count();
    rec.test_predictions.reserve(test_rows.size());
    for (std::size_t row : test_rows)
      rec.test_predictions.push_back(predictions[row]);
    result.iterations.push_back(std::move(rec));
  };

  graph::Graph current = graph_from_predictions(dataset.user_count(),
                                                universe, predictions);
  // Iteration 0 is the phase-1 graph; a resumed run's baseline is the
  // checkpointed iteration instead (change 0: nothing moved since the save).
  record_iteration(start_iteration - 1, resumed.has_value() ? 0.0 : 1.0,
                   current);
  util::log_debug("FriendSeeker: baseline graph edges=",
                  current.edge_count());

  auto save_checkpoint_if_configured = [&](int iteration) {
    if (checkpoint_path.empty()) return;
    PipelineCheckpoint cp;
    cp.fingerprint = fingerprint;
    cp.iteration = iteration;
    cp.predictions = predictions;
    cp.scores = scores;
    cp.presence = presence;  // copy: the run keeps using the original
    try {
      save_pipeline_checkpoint(checkpoint_path, cp);
    } catch (const Error& e) {
      // A failed save never kills the run; it only costs resumability.
      diagnostics.report(util::Severity::kWarning, ErrorCode::kIo,
                         "pipeline",
                         std::string("checkpoint save failed: ") + e.what());
    }
  };

  if (config_.iterate) {
    // ---- Phase 2: iterative hidden-friends inference. ----
    const std::size_t d = presence.feature_dim();
    SocialFeatureConfig social_cfg;
    social_cfg.k = config_.k;
    social_cfg.feature_dim = d;

    const std::size_t social_width =
        static_cast<std::size_t>(config_.k - 1) * d;
    const std::size_t composite_width = d + social_width;

    EdgeFeatureFn edge_feature = [&](data::UserId a, data::UserId b,
                                     std::vector<double>& out) {
      const auto it =
          universe.row_of.find(data::make_pair_ordered(a, b));
      if (it == universe.row_of.end()) return false;
      out.assign(embeddings.row(it->second),
                 embeddings.row(it->second) + d);
      return true;
    };

    // The composite matrix is phase 2's dominant allocation; it and its
    // budget charge are hoisted out of the refinement loop and reused every
    // iteration. A failed charge degrades exactly like an in-iteration
    // budget failure: keep the phase-1 graph.
    std::optional<runtime::MemoryCharge> composite_charge;
    nn::Matrix composite;
    bool phase2_ready = true;
    try {
      composite_charge.emplace(
          ctx, universe.pairs.size() * composite_width * sizeof(double),
          "core.phase2.composite");
      composite = nn::Matrix(universe.pairs.size(), composite_width);
    } catch (const Error& e) {
      if (e.code() != ErrorCode::kBudget) throw;
      phase2_ready = false;
      diagnostics.report(util::Severity::kError, e.code(), "pipeline",
                         std::string("phase 2 abandoned, keeping phase-1 "
                                     "graph: ") +
                             e.what());
      result.degradation.add("phase2.refine", "memory", e.what(),
                             start_iteration - 1, config_.max_iterations);
    }

    // Hoisted per-iteration temporaries: capacity survives across
    // iterations instead of being reallocated each refinement pass.
    std::vector<std::size_t> svm_rows;
    std::vector<int> svm_labels;
    std::vector<std::size_t> order;
    std::vector<double> decision;

    // Per-phase budget for the whole refinement loop; the loop-top probes
    // below truncate at iteration boundaries, where the last-good graph
    // and checkpoint are both current.
    runtime::PhaseScope phase2_scope(ctx, config_.phase2_budget_sec);
    for (int iteration = start_iteration;
         phase2_ready && iteration <= config_.max_iterations; ++iteration) {
      if (ctx != nullptr && ctx->cancelled()) {
        result.degradation.add("phase2.refine", "cancelled",
                               "stopped at iteration boundary; the last "
                               "checkpoint is current",
                               iteration - 1, config_.max_iterations);
        break;
      }
      if (ctx != nullptr && ctx->deadline_expired()) {
        result.degradation.add("phase2.refine", "deadline",
                               "wall-clock budget exhausted; keeping the "
                               "last-good graph",
                               iteration - 1, config_.max_iterations);
        break;
      }
      obs::Span iter_span("core.pipeline.phase2.iteration");
      iter_span.arg("iteration", static_cast<double>(iteration));
      try {
      // Composite features v = h ⊕ s for every candidate pair on the
      // current graph. Pairs fan out over the pool in fixed chunks; each
      // chunk reuses one social/edge scratch pair across its pairs, and the
      // k-hop working set is covered by the per-worker scratch charge.
      par::ParallelOptions copts;
      copts.context = ctx;
      copts.what = "core.phase2.composite";
      copts.grain = 8;
      copts.scratch_bytes_per_worker = (social_width + d) * sizeof(double);
      par::parallel_for_chunks(
          universe.pairs.size(), copts,
          [&](const par::ChunkRange& chunk) {
            std::vector<double> social, edge_scratch;
            social.reserve(social_width);
            edge_scratch.reserve(d);
            for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
              const auto [a, b] = universe.pairs[i];
              double* row = composite.row(i);
              const double* h = embeddings.row(i);
              std::copy(h, h + d, row);
              if (config_.use_social_feature)
                social_proximity_feature(current, a, b, social_cfg,
                                         edge_feature, social, edge_scratch);
              else
                heuristic_social_feature(current, a, b, social_cfg, social);
              std::copy(social.begin(), social.end(), row + d);
            }
          });

      // Train C' on the labeled pairs (subsampled under the kernel cap).
      // The RNG is derived from (seed, iteration) alone — never from how
      // many iterations this process has executed — so a run resumed from
      // a checkpoint subsamples identically to an uninterrupted one
      // (resume-equivalence).
      util::Rng svm_rng(config_.seed ^ 0x5117ULL ^
                        (static_cast<std::uint64_t>(iteration) *
                         0x9e3779b97f4a7c15ULL));
      svm_rows.assign(train_rows.begin(), train_rows.end());
      svm_labels.assign(train_labels.begin(), train_labels.end());
      if (svm_rows.size() > config_.max_svm_train_rows) {
        order.resize(svm_rows.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        svm_rng.shuffle(order);
        order.resize(config_.max_svm_train_rows);
        for (std::size_t j = 0; j < order.size(); ++j) {
          svm_rows[j] = train_rows[order[j]];
          svm_labels[j] = train_labels[order[j]];
        }
        svm_rows.resize(order.size());
        svm_labels.resize(order.size());
      }

      ml::StandardScaler scaler;
      const nn::Matrix svm_train =
          scaler.fit_transform(composite.gather_rows(svm_rows));
      const nn::Matrix all_scaled = scaler.transform(composite);
      if (config_.phase2_classifier ==
          FriendSeekerConfig::Phase2Classifier::kLogistic) {
        ml::LogisticClassifier clf(config_.logistic);
        clf.fit(svm_train, svm_labels);
        decision = clf.decision(all_scaled);
      } else {
        ml::SvmConfig svm_cfg = config_.svm;
        svm_cfg.seed ^= static_cast<std::uint64_t>(iteration);
        svm_cfg.context = ctx;
        ml::SvmClassifier svm(svm_cfg);
        svm.fit(svm_train, svm_labels);
        decision = svm.decision(all_scaled);
      }
      // All mutation of the working state (predictions/scores/graph)
      // happens after this check, so a diverged classifier leaves the
      // last-good iteration intact for the fallback below.
      for (double v : decision)
        if (!std::isfinite(v))
          throw NumericError("FriendSeeker: non-finite decision scores at "
                             "iteration " +
                             std::to_string(iteration));

      const double cut = tune_on_train(decision);
      // Hysteresis: borderline pairs keep their previous state, so the
      // graph settles instead of oscillating around the cut.
      double margin = 0.0;
      if (config_.flip_margin > 0.0) {
        double mean = 0.0, sq = 0.0;
        for (double d : decision) mean += d;
        mean /= static_cast<double>(decision.size());
        for (double d : decision) sq += (d - mean) * (d - mean);
        margin = config_.flip_margin *
                 std::sqrt(sq / static_cast<double>(decision.size()));
      }
      for (std::size_t i = 0; i < predictions.size(); ++i) {
        if (decision[i] >= cut + margin) {
          predictions[i] = 1;
        } else if (decision[i] < cut - margin) {
          predictions[i] = 0;
        }
        // else: inside the hysteresis band — keep the previous state.
      }
      scores = decision;

      graph::Graph next = graph_from_predictions(dataset.user_count(),
                                                 universe, predictions);
      const double change = graph::edge_change_ratio(current, next);
      current = std::move(next);
      record_iteration(iteration, change, current);
      result.iterations_run = iteration;
      const double edges = static_cast<double>(current.edge_count());
      iter_span.arg("edges", edges);
      iter_span.arg("change", change);
      obs::tracer().counter("core.pipeline.edge_churn", change);
      obs::tracer().counter("core.pipeline.graph_edges", edges);
      obs::metrics()
          .gauge("core.pipeline.edge_churn", {},
                 "edge-change ratio of the latest phase-2 iteration")
          .set(change);
      obs::metrics()
          .gauge("core.pipeline.graph_edges", {},
                 "edge count of the current inferred graph")
          .set(edges);
      obs::metrics()
          .counter("core.pipeline.iterations_total", {},
                   "phase-2 refinement iterations executed")
          .add(1);
      util::log_debug("FriendSeeker: iter=", iteration,
                      " edges=", current.edge_count(), " change=", change,
                      " (", iter_span.seconds(), "s)");
      save_checkpoint_if_configured(iteration);
      // Simulated process kill at the iteration boundary, after the
      // checkpoint save. InjectedKill is not an fs::Error, so the
      // degradation catch below cannot swallow it — it unwinds to the top
      // like a real crash and the chaos harness resumes from disk.
      if (util::failpoint::fail("pipeline.iteration.abort"))
        throw util::failpoint::InjectedKill(
            "pipeline.iteration.abort: injected kill after iteration " +
            std::to_string(iteration));
      if (change < config_.convergence_threshold) {
        result.converged = true;
        break;
      }
      } catch (const Error& e) {
        const ErrorCode code = e.code();
        if (code != ErrorCode::kNumeric &&
            code != ErrorCode::kConvergence &&
            code != ErrorCode::kBudget && code != ErrorCode::kCancelled)
          throw;
        // Recoverable failures in phase 2 degrade gracefully: keep the
        // last-good graph (possibly the phase-1 seed) instead of failing
        // the whole attack. Numeric divergence keeps its diagnostics-only
        // reporting; budget/cancellation additionally land in the
        // structured DegradationReport.
        diagnostics.report(util::Severity::kError, code, "pipeline",
                           "phase-2 iteration " + std::to_string(iteration) +
                               " abandoned, keeping last-good graph: " +
                               e.what());
        if (code == ErrorCode::kBudget || code == ErrorCode::kCancelled)
          result.degradation.add(
              "phase2.refine",
              code == ErrorCode::kCancelled ? "cancelled" : "memory",
              e.what(), iteration - 1, config_.max_iterations);
        break;
      }
    }
    if (ctx != nullptr && !result.converged && !result.degradation.degraded() &&
        result.iterations_run == config_.max_iterations)
      result.degradation.add("phase2.refine", "iterations",
                             "iteration cap reached before convergence",
                             result.iterations_run, config_.max_iterations);
    result.fell_back_to_phase1 =
        result.iterations.size() == 1 &&
        result.iterations.front().iteration == 0;
  }

  result.test_predictions.reserve(test_rows.size());
  result.test_scores.reserve(test_rows.size());
  for (std::size_t row : test_rows) {
    result.test_predictions.push_back(predictions[row]);
    result.test_scores.push_back(scores[row]);
  }
  result.final_graph = std::move(current);
  if (ctx != nullptr) result.peak_memory_estimate = ctx->peak_charged();
  // Mirror the run's sinks into gauges so --metrics-out captures them even
  // when the caller never inspects the result object.
  obs::bridge_diagnostics(diagnostics);
  obs::bridge_degradation(result.degradation);
  if (ctx != nullptr) obs::bridge_execution(*ctx);
  return result;
}

}  // namespace fs::core
