#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <stdexcept>

#include "block/cell_index.h"
#include "core/checkpoint.h"
#include "core/joc.h"
#include "geo/spatial_division.h"
#include "geo/time_slots.h"
#include "graph/metrics.h"
#include "ml/metrics.h"
#include "ml/scaler.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "par/par.h"
#include "shard/sharded_index.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace fs::core {

FriendSeeker::FriendSeeker(const FriendSeekerConfig& config)
    : config_(config) {
  if (config.k < 2)
    throw std::invalid_argument("FriendSeeker: k must be >= 2");
  if (config.tau_days <= 0.0)
    throw std::invalid_argument("FriendSeeker: tau must be > 0");
}

namespace {

/// All candidate pairs (train + test) with a dense row index; the social
/// graph only ever contains candidate edges, so each edge has a feature row.
struct PairUniverse {
  std::vector<data::UserPair> pairs;
  std::map<data::UserPair, std::size_t> row_of;

  void add(const std::vector<data::UserPair>& more) {
    for (const data::UserPair& p : more) {
      const data::UserPair key = data::make_pair_ordered(p.first, p.second);
      if (row_of.emplace(key, pairs.size()).second) pairs.push_back(key);
    }
  }
};

graph::Graph graph_from_predictions(std::size_t user_count,
                                    const PairUniverse& universe,
                                    const std::vector<int>& predictions) {
  graph::Graph g(user_count);
  for (std::size_t i = 0; i < universe.pairs.size(); ++i)
    if (predictions[i])
      g.add_edge(universe.pairs[i].first, universe.pairs[i].second);
  return g;
}

/// FNV-1a over the run parameters a checkpoint must agree on; a resume
/// against a different dataset/config is rejected instead of mixed in.
std::uint64_t run_fingerprint(const FriendSeekerConfig& config,
                              const data::Dataset& dataset,
                              std::size_t universe_size,
                              std::size_t train_size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(dataset.user_count());
  mix(dataset.checkin_count());
  mix(universe_size);
  mix(train_size);
  mix(config.seed);
  mix(static_cast<std::uint64_t>(config.k));
  mix(config.sigma);
  mix(static_cast<std::uint64_t>(config.tau_days * 1e6));
  mix(config.presence.feature_dim);
  // The quantized-KNN knob can flip decisions near the prune slack, so a
  // checkpoint written under one distance path never seeds the other.
  mix(static_cast<std::uint64_t>(config.presence.knn_quantize));
  mix(static_cast<std::uint64_t>(config.phase2_classifier));
  // Blocking changes which rows are ever scored, so a checkpoint written
  // under one blocking configuration must not seed a run under another.
  mix(static_cast<std::uint64_t>(config.blocking.mode));
  mix(static_cast<std::uint64_t>(config.blocking.slot_tolerance));
  mix(static_cast<std::uint64_t>(config.blocking.hop_expansion));
  mix(config.blocking.auto_min_pairs);
  return h;
}

}  // namespace

FriendSeekerResult FriendSeeker::run(
    const data::Dataset& dataset,
    const std::vector<data::UserPair>& train_pairs,
    const std::vector<int>& train_labels,
    const std::vector<data::UserPair>& test_pairs) {
  if (train_pairs.size() != train_labels.size())
    throw std::invalid_argument("FriendSeeker::run: train size mismatch");
  if (train_pairs.empty() || test_pairs.empty())
    throw std::invalid_argument("FriendSeeker::run: empty pair lists");

  runtime::ExecutionContext* const ctx = config_.context;
  obs::Span run_span("core.pipeline.run");

  // ---- Spatial-temporal division. ----
  obs::Span std_span("core.pipeline.std_division");
  const std::vector<geo::LatLng> poi_coords = dataset.poi_coordinates();
  std::unique_ptr<geo::QuadtreeDivision> quadtree;
  std::unique_ptr<geo::UniformGridDivision> uniform;
  std::unique_ptr<geo::SpatialDivision> division;
  if (config_.uniform_grid) {
    uniform = std::make_unique<geo::UniformGridDivision>(
        poi_coords, config_.uniform_rows, config_.uniform_cols);
    division = std::make_unique<geo::UniformGridDivisionView>(*uniform);
  } else {
    quadtree =
        std::make_unique<geo::QuadtreeDivision>(poi_coords, config_.sigma);
    division = std::make_unique<geo::QuadtreeDivisionView>(*quadtree);
  }
  const geo::TimeSlotting slots(
      dataset.window_begin(), dataset.window_end(),
      static_cast<geo::Timestamp>(config_.tau_days * geo::kSecondsPerDay));
  const OccupancyIndex occupancy(dataset, *division, slots);
  std_span.end();
  util::log_debug("FriendSeeker: STD I=", division->cell_count(),
                  " J=", slots.slot_count(), " joc_dim=", occupancy.joc_dim());

  // ---- Candidate-pair universe. ----
  PairUniverse universe;
  universe.add(train_pairs);
  universe.add(test_pairs);

  auto rows_of = [&](const std::vector<data::UserPair>& pairs) {
    std::vector<std::size_t> rows;
    rows.reserve(pairs.size());
    for (const data::UserPair& p : pairs)
      rows.push_back(
          universe.row_of.at(data::make_pair_ordered(p.first, p.second)));
    return rows;
  };
  const std::vector<std::size_t> train_rows = rows_of(train_pairs);
  const std::vector<std::size_t> test_rows = rows_of(test_pairs);

  // ---- Candidate predicate and blocking. ----
  // The candidate predicate — cell co-occurrence within slot_tolerance, or
  // at most hop_expansion hops in the strong-co-occurrence graph — is part
  // of the MODEL, not just an optimization: a non-candidate pair has no
  // mobility evidence (its n_ab channel is identically zero and it is
  // outside phase 2's reachable closure), so it is never labeled a friend,
  // in any mode. The --blocking mode then only decides whether such pairs
  // are *scored*: off runs the full dense computation and gates the final
  // label, on skips their feature rows entirely. That split is what makes
  // a blocked run reproduce the dense run's final graph bit for bit while
  // doing a fraction of the work — and what the differential tests pin.
  //
  // The documented recall-loss contract lives in the predicate itself: a
  // genuinely hidden friend pair that never co-occurs and sits outside the
  // hop radius is predicted non-friend (and, when blocking is on, counted
  // in block.candidates_pruned).
  // Sharded execution (config.shards >= 1) builds the identical CellIndex
  // one quadtree-subtree grid range at a time and later groups phase-1
  // scoring by pair owner shard; the monolithic path (shards == 0) is the
  // pre-sharding pipeline, untouched. Both meet at the same index bytes —
  // signature() equality is checked by the shard tests — so every
  // downstream digest agrees by construction.
  const bool sharded = config_.shards >= 1;
  std::optional<shard::ShardPlan> plan;
  std::vector<std::uint64_t> shard_rows;
  const block::CellIndex cell_index = [&]() -> block::CellIndex {
    if (!sharded) return block::CellIndex(dataset, *division, slots, ctx);
    const shard::BinnedCheckins binned =
        shard::bin_checkins(dataset, *division, slots, ctx);
    plan.emplace(shard::ShardPlan::build(
        shard::grid_row_weights(binned, division->cell_count()),
        config_.shards));
    shard_rows = shard::shard_row_counts(binned, *plan);
    return shard::build_sharded_index(dataset, binned, slots,
                                      division->cell_count(), *plan, ctx);
  }();
  std::vector<shard::ShardRunStats> shard_stats;
  if (sharded) {
    shard_stats.resize(plan->shard_count());
    for (std::size_t s = 0; s < plan->shard_count(); ++s) {
      shard_stats[s].grid_lo = plan->shard(s).grid_lo;
      shard_stats[s].grid_hi = plan->shard(s).grid_hi;
      shard_stats[s].rows = shard_rows[s];
    }
  }
  const bool blocking_on =
      block::blocking_enabled(config_.blocking, universe.pairs.size());
  block::BlockingStats blocking_stats;
  std::vector<char> candidate;
  {
    const graph::Graph strong = block::strong_cooccurrence_graph(cell_index);
    candidate = block::filter_universe(cell_index, strong, universe.pairs,
                                       config_.blocking, &blocking_stats);
  }
  constexpr std::size_t kInactive = static_cast<std::size_t>(-1);
  std::vector<std::size_t> active_of_row(universe.pairs.size(), kInactive);
  std::vector<std::size_t> active_rows;
  if (blocking_on) {
    // Scored rows: candidates plus every train row. Train pairs are always
    // scored — their labels are the attacker's own ground truth and both
    // phases train on their feature rows — though a non-candidate train
    // pair is still gated to non-friend like any other.
    std::vector<char> keep = candidate;
    for (std::size_t row : train_rows) {
      if (!keep[row]) {
        keep[row] = 1;
        ++blocking_stats.forced_pairs;
        ++blocking_stats.scored_pairs;
        --blocking_stats.pruned_pairs;
      }
    }
    active_rows.reserve(blocking_stats.scored_pairs);
    for (std::size_t row = 0; row < keep.size(); ++row) {
      if (keep[row]) {
        active_of_row[row] = active_rows.size();
        active_rows.push_back(row);
      }
    }
  } else {
    active_rows.resize(universe.pairs.size());
    for (std::size_t row = 0; row < active_rows.size(); ++row) {
      active_rows[row] = row;
      active_of_row[row] = row;
    }
    blocking_stats = block::BlockingStats{};
    blocking_stats.universe_pairs = universe.pairs.size();
    blocking_stats.scored_pairs = universe.pairs.size();
  }
  const std::size_t active_count = active_rows.size();
  auto active_indices_of = [&](const std::vector<std::size_t>& rows) {
    std::vector<std::size_t> out;
    out.reserve(rows.size());
    for (std::size_t row : rows) out.push_back(active_of_row[row]);
    return out;
  };
  const std::vector<std::size_t> train_active = active_indices_of(train_rows);
  util::log_debug("FriendSeeker: universe=", universe.pairs.size(),
                  " scored=", active_count,
                  blocking_on ? " (blocking on)" : " (blocking off)");

  // ---- Pair ownership (sharded runs). ----
  // Every universe pair is charged to exactly one shard, so the per-shard
  // scored/pruned counts partition the blocking totals — the invariant the
  // schema-v4 bench validator enforces. Ownership is pure accounting plus
  // the phase-1 grouping key; it never changes which pairs are scored.
  std::vector<std::size_t> owner_of_row;
  if (sharded) {
    owner_of_row.resize(universe.pairs.size());
    for (std::size_t row = 0; row < universe.pairs.size(); ++row) {
      const std::size_t owner =
          shard::owner_shard(cell_index, *plan, universe.pairs[row]);
      owner_of_row[row] = owner;
      ++shard_stats[owner].universe_pairs;
      if (active_of_row[row] != kInactive)
        ++shard_stats[owner].scored_pairs;
      else
        ++shard_stats[owner].pruned_pairs;
    }
    obs::metrics()
        .gauge("shard.count", {}, "shards of the latest sharded run")
        .set(static_cast<double>(plan->shard_count()));
  }

  // ---- Feature cache (run-local unless the caller shares one). ----
  // The signature covers everything the cached rows are a function of: the
  // binned dataset (cell-index content hash) for JOC rows, plus the
  // presence recipe, seeds, and training set for encoded rows. One shared
  // signature is conservative — a seed change also drops the still-valid
  // JOC rows — but keeps invalidation impossible to get subtly wrong.
  block::FeatureCache local_cache;
  block::FeatureCache* const cache =
      config_.feature_cache != nullptr ? config_.feature_cache : &local_cache;
  std::uint64_t cache_signature = cell_index.signature();
  {
    const auto mix = [&cache_signature](std::uint64_t v) {
      cache_signature ^= v;
      cache_signature *= 0x100000001b3ULL;
    };
    const auto mix_double = [&](double v) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &v, sizeof(bits));
      mix(bits);
    };
    mix(config_.seed);
    mix(config_.presence.feature_dim);
    mix(static_cast<std::uint64_t>(config_.presence.max_hidden_layers));
    mix(config_.presence.max_hidden_width);
    mix(static_cast<std::uint64_t>(config_.presence.epochs));
    mix(config_.presence.batch_size);
    mix(config_.presence.knn_k);
    mix(config_.presence.max_autoencoder_rows);
    mix(config_.presence.max_knn_rows);
    mix(config_.presence.seed);
    mix_double(config_.presence.learning_rate);
    mix_double(config_.presence.alpha);
    mix(train_pairs.size());
    for (std::size_t i = 0; i < train_pairs.size(); ++i) {
      mix((static_cast<std::uint64_t>(train_pairs[i].first) << 32) |
          static_cast<std::uint64_t>(train_pairs[i].second));
      mix(static_cast<std::uint64_t>(train_labels[i]));
    }
  }
  cache->prepare(cache_signature, occupancy.joc_dim(),
                 config_.presence.feature_dim, ctx);

  // ---- JOC rows for the scored universe (cache-backed). ----
  // The JOC matrix is the run's dominant allocation; charge its estimate
  // against the memory budget up front so an over-budget configuration is
  // rejected before the build instead of OOMing halfway through.
  const runtime::MemoryCharge joc_charge(
      ctx, active_count * occupancy.joc_dim() * sizeof(double),
      "core.joc.matrix");
  nn::Matrix all_jocs(active_count, occupancy.joc_dim());
  {
    obs::Span joc_span("core.joc.fill");
    // Slot allocation is sequential (insert mutates the arena); only the
    // row fills fan out, each into a disjoint arena row, so the result is
    // byte-identical at any thread count.
    std::vector<const double*> rows(active_count);
    std::vector<double*> fill;
    std::vector<std::size_t> fill_ai;
    for (std::size_t ai = 0; ai < active_count; ++ai) {
      const data::UserPair& pair = universe.pairs[active_rows[ai]];
      if (const double* hit = cache->find_joc(pair)) {
        rows[ai] = hit;
      } else {
        double* slot = cache->insert_joc(pair);
        rows[ai] = slot;
        fill.push_back(slot);
        fill_ai.push_back(ai);
      }
    }
    JocOptions joc_options;
    joc_options.context = ctx;
    par::ParallelOptions jopts;
    jopts.context = ctx;
    jopts.what = "core.joc.fill";
    jopts.grain = par::grain_for(occupancy.joc_dim() * 4);
    const auto fill_one = [&](std::size_t i) {
      const data::UserPair& pair = universe.pairs[active_rows[fill_ai[i]]];
      build_joc(occupancy, pair.first, pair.second, fill[i], joc_options);
    };
    if (sharded) {
      // Same fills, grouped by owner shard and run in plan order — each
      // fill writes its own arena slot, so grouping is invisible to the
      // bytes and only exists for per-shard wall/row accounting (and, out
      // of core, for touching one store stripe's worth of pages at a time).
      std::vector<std::vector<std::size_t>> by_shard(plan->shard_count());
      for (std::size_t i = 0; i < fill.size(); ++i)
        by_shard[owner_of_row[active_rows[fill_ai[i]]]].push_back(i);
      for (std::size_t s = 0; s < by_shard.size(); ++s) {
        if (by_shard[s].empty()) continue;
        obs::Span shard_span("shard.joc.group");
        shard_span.arg("shard", static_cast<double>(s));
        shard_span.arg("rows", static_cast<double>(by_shard[s].size()));
        const std::vector<std::size_t>& group = by_shard[s];
        par::parallel_for(group.size(), jopts,
                          [&](std::size_t i) { fill_one(group[i]); });
        shard_span.end();
        shard_stats[s].wall_ms = shard_span.seconds() * 1000.0;
      }
    } else {
      par::parallel_for(fill.size(), jopts, fill_one);
    }
    par::parallel_for(active_count, jopts, [&](std::size_t ai) {
      std::copy(rows[ai], rows[ai] + occupancy.joc_dim(), all_jocs.row(ai));
    });
    obs::metrics()
        .counter("core.joc.rows_total", {}, "JOC feature rows built")
        .add(fill.size());
    joc_span.arg("rows", static_cast<double>(active_count));
    joc_span.arg("built", static_cast<double>(fill.size()));
  }

  FriendSeekerResult result;
  util::Diagnostics& diagnostics = result.diagnostics;

  // ---- Checkpoint/resume bookkeeping. ----
  const std::string checkpoint_path =
      config_.checkpoint_dir.empty()
          ? std::string()
          : config_.checkpoint_dir + "/checkpoint.fsck";
  const std::uint64_t fingerprint = run_fingerprint(
      config_, dataset, universe.pairs.size(), train_pairs.size());
  if (!config_.checkpoint_dir.empty())
    std::filesystem::create_directories(config_.checkpoint_dir);

  std::optional<PipelineCheckpoint> resumed;
  if (config_.resume && !checkpoint_path.empty() &&
      !std::filesystem::exists(checkpoint_path)) {
    diagnostics.report(util::Severity::kInfo, ErrorCode::kIo, "pipeline",
                       "no checkpoint at " + checkpoint_path +
                           "; starting fresh");
  }
  if (config_.resume && !checkpoint_path.empty() &&
      std::filesystem::exists(checkpoint_path)) {
    try {
      PipelineCheckpoint cp = load_pipeline_checkpoint(checkpoint_path);
      if (cp.fingerprint != fingerprint) {
        diagnostics.report(util::Severity::kWarning,
                           ErrorCode::kCorruptCheckpoint, "pipeline",
                           "checkpoint fingerprint mismatch (different "
                           "dataset or config); restarting from phase 1");
      } else if (cp.predictions.size() != universe.pairs.size() ||
                 cp.scores.size() != universe.pairs.size() ||
                 !cp.presence.has_value() || !cp.presence->trained()) {
        diagnostics.report(util::Severity::kWarning,
                           ErrorCode::kCorruptCheckpoint, "pipeline",
                           "checkpoint shape mismatch; restarting from "
                           "phase 1");
      } else {
        resumed = std::move(cp);
      }
    } catch (const Error& e) {
      diagnostics.report(util::Severity::kWarning,
                         ErrorCode::kCorruptCheckpoint, "pipeline",
                         std::string("cannot resume, restarting cleanly: ") +
                             e.what());
    }
  }

  // ---- Phase 1: presence model (trained, or restored from checkpoint). --
  PresenceModelConfig presence_cfg = config_.presence;
  presence_cfg.seed ^= config_.seed;
  presence_cfg.diagnostics = &diagnostics;
  std::optional<PresenceModel> presence_storage;
  if (resumed.has_value()) {
    presence_storage = std::move(*resumed->presence);
    // The quantize knob is runtime-only (never serialized); re-apply it to
    // the restored model. The fingerprint already guarantees it matches
    // the flag the checkpoint was written under.
    presence_storage->set_knn_quantize(config_.presence.knn_quantize);
    result.resumed_from_iteration = resumed->iteration;
    diagnostics.report(util::Severity::kInfo, ErrorCode::kIo, "pipeline",
                       "resumed from checkpoint at iteration " +
                           std::to_string(resumed->iteration));
  } else {
    presence_cfg.context = ctx;
    presence_storage.emplace(presence_cfg);
    obs::Span phase1_timer("core.pipeline.phase1");
    {
      // Per-phase budget: tighten the deadline for phase 1 only. An expired
      // deadline truncates autoencoder training at the next epoch boundary
      // (a partially trained model is still usable), recorded below.
      runtime::PhaseScope phase1_scope(ctx, config_.phase1_budget_sec);
      presence_storage->train(all_jocs.gather_rows(train_active),
                              train_labels);
      if (ctx != nullptr && ctx->deadline_expired())
        result.degradation.add("phase1.autoencoder", "deadline",
                               "training truncated by wall-clock budget");
    }
    phase1_timer.end();
    util::log_debug("FriendSeeker: phase-1 training ",
                    phase1_timer.seconds(), "s");
  }
  PresenceModel& presence = *presence_storage;
  const std::size_t d = presence.feature_dim();

  // ---- Presence features for the scored universe (cache-backed). ----
  // Rows already in the cache (phase-2 re-entries, shared caches across
  // runs) skip the encoder entirely; only the misses run a forward pass.
  const runtime::MemoryCharge embedding_charge(
      ctx, active_count * d * sizeof(double), "core.embeddings");
  obs::Span encode_span("core.pipeline.phase1.encode");
  nn::Matrix embeddings(active_count, d);
  {
    std::vector<std::size_t> encode_ai;
    for (std::size_t ai = 0; ai < active_count; ++ai) {
      const data::UserPair& pair = universe.pairs[active_rows[ai]];
      if (const double* hit = cache->find_presence(pair))
        std::copy(hit, hit + d, embeddings.row(ai));
      else
        encode_ai.push_back(ai);
    }
    if (!encode_ai.empty()) {
      const nn::Matrix fresh =
          presence.encode(all_jocs.gather_rows(encode_ai));
      for (std::size_t i = 0; i < encode_ai.size(); ++i) {
        const std::size_t ai = encode_ai[i];
        double* slot =
            cache->insert_presence(universe.pairs[active_rows[ai]]);
        std::copy(fresh.row(i), fresh.row(i) + d, slot);
        std::copy(fresh.row(i), fresh.row(i) + d, embeddings.row(ai));
      }
    }
    encode_span.arg("rows", static_cast<double>(active_count));
    encode_span.arg("encoded", static_cast<double>(encode_ai.size()));
  }
  const std::vector<double> phase1_proba =
      presence.predict_proba_encoded(embeddings);
  encode_span.end();
  for (double p : phase1_proba)
    if (!std::isfinite(p))
      throw NumericError(
          "FriendSeeker: phase-1 probabilities contain non-finite values");

  // The operating point is picked on the training split (every attack in
  // the evaluation does the same — the attacker maximizes train F1).
  // `active_scores` is indexed by active (scored) row, not universe row.
  auto tune_on_train = [&](const std::vector<double>& active_scores) {
    std::vector<double> train_scores;
    train_scores.reserve(train_active.size());
    for (std::size_t ai : train_active)
      train_scores.push_back(active_scores[ai]);
    return ml::tune_f1_threshold(train_scores, train_labels).threshold;
  };

  std::vector<int> predictions;
  std::vector<double> scores;
  int start_iteration = 1;
  if (resumed.has_value()) {
    predictions = std::move(resumed->predictions);
    scores = std::move(resumed->scores);
    start_iteration = resumed->iteration + 1;
  } else {
    // Phase 1 seeds the graph; a too-permissive cut floods G(0) with
    // false edges that phase 2 then has to prune back (overshoot). The seed
    // cut is therefore never below the KNN's natural majority threshold.
    const double phase1_cut = std::max(tune_on_train(phase1_proba), 0.5);
    predictions.assign(universe.pairs.size(), 0);
    scores.assign(universe.pairs.size(), 0.0);
    for (std::size_t ai = 0; ai < active_count; ++ai) {
      const std::size_t row = active_rows[ai];
      predictions[row] = candidate[row] && phase1_proba[ai] >= phase1_cut;
      scores[row] = phase1_proba[ai];
    }
  }

  auto record_iteration = [&](int iteration, double change,
                              const graph::Graph& g) {
    IterationRecord rec;
    rec.iteration = iteration;
    rec.edge_change_ratio = change;
    rec.graph_edges = g.edge_count();
    rec.test_predictions.reserve(test_rows.size());
    for (std::size_t row : test_rows)
      rec.test_predictions.push_back(predictions[row]);
    result.iterations.push_back(std::move(rec));
  };

  graph::Graph current = graph_from_predictions(dataset.user_count(),
                                                universe, predictions);
  // Iteration 0 is the phase-1 graph; a resumed run's baseline is the
  // checkpointed iteration instead (change 0: nothing moved since the save).
  record_iteration(start_iteration - 1, resumed.has_value() ? 0.0 : 1.0,
                   current);
  util::log_debug("FriendSeeker: baseline graph edges=",
                  current.edge_count());

  auto save_checkpoint_if_configured = [&](int iteration) {
    if (checkpoint_path.empty()) return;
    PipelineCheckpoint cp;
    cp.fingerprint = fingerprint;
    cp.iteration = iteration;
    cp.predictions = predictions;
    cp.scores = scores;
    cp.presence = presence;  // copy: the run keeps using the original
    try {
      save_pipeline_checkpoint(checkpoint_path, cp);
    } catch (const Error& e) {
      // A failed save never kills the run; it only costs resumability.
      diagnostics.report(util::Severity::kWarning, ErrorCode::kIo,
                         "pipeline",
                         std::string("checkpoint save failed: ") + e.what());
    }
  };

  // Cache traffic of phase-2 iterations >= 2: the steady state the cache
  // exists for, measured for the result and the perf bench.
  std::optional<block::FeatureCache::Stats> after_first_iteration;

  if (config_.iterate) {
    // ---- Phase 2: iterative hidden-friends inference. ----
    SocialFeatureConfig social_cfg;
    social_cfg.k = config_.k;
    social_cfg.feature_dim = d;

    const std::size_t social_width =
        static_cast<std::size_t>(config_.k - 1) * d;
    const std::size_t composite_width = d + social_width;

    EdgeFeatureFn edge_feature = [&](data::UserId a, data::UserId b,
                                     std::vector<double>& out) {
      const auto it =
          universe.row_of.find(data::make_pair_ordered(a, b));
      if (it == universe.row_of.end()) return false;
      // Pruned rows never carry an edge, so this probe only rejects pairs
      // outside the universe; it also keeps the cache's hit accounting
      // clean of pairs that were never cached.
      if (active_of_row[it->second] == kInactive) return false;
      const double* h = cache->find_presence(it->first);
      if (h == nullptr) return false;
      out.assign(h, h + d);
      return true;
    };

    // The composite matrix is phase 2's dominant allocation; it and its
    // budget charge are hoisted out of the refinement loop and reused every
    // iteration. A failed charge degrades exactly like an in-iteration
    // budget failure: keep the phase-1 graph.
    std::optional<runtime::MemoryCharge> composite_charge;
    nn::Matrix composite;
    bool phase2_ready = true;
    try {
      composite_charge.emplace(
          ctx, active_count * composite_width * sizeof(double),
          "core.phase2.composite");
      composite = nn::Matrix(active_count, composite_width);
    } catch (const Error& e) {
      if (e.code() != ErrorCode::kBudget) throw;
      phase2_ready = false;
      diagnostics.report(util::Severity::kError, e.code(), "pipeline",
                         std::string("phase 2 abandoned, keeping phase-1 "
                                     "graph: ") +
                             e.what());
      result.degradation.add("phase2.refine", "memory", e.what(),
                             start_iteration - 1, config_.max_iterations);
    }

    // Hoisted per-iteration temporaries: capacity survives across
    // iterations instead of being reallocated each refinement pass.
    std::vector<std::size_t> svm_rows;
    std::vector<int> svm_labels;
    std::vector<std::size_t> order;
    std::vector<double> decision;

    // Per-phase budget for the whole refinement loop; the loop-top probes
    // below truncate at iteration boundaries, where the last-good graph
    // and checkpoint are both current.
    runtime::PhaseScope phase2_scope(ctx, config_.phase2_budget_sec);
    for (int iteration = start_iteration;
         phase2_ready && iteration <= config_.max_iterations; ++iteration) {
      if (ctx != nullptr && ctx->cancelled()) {
        result.degradation.add("phase2.refine", "cancelled",
                               "stopped at iteration boundary; the last "
                               "checkpoint is current",
                               iteration - 1, config_.max_iterations);
        break;
      }
      if (ctx != nullptr && ctx->deadline_expired()) {
        result.degradation.add("phase2.refine", "deadline",
                               "wall-clock budget exhausted; keeping the "
                               "last-good graph",
                               iteration - 1, config_.max_iterations);
        break;
      }
      obs::Span iter_span("core.pipeline.phase2.iteration");
      iter_span.arg("iteration", static_cast<double>(iteration));
      try {
      // Composite features v = h ⊕ s for every scored pair on the current
      // graph. Pairs fan out over the pool in fixed chunks; each chunk
      // reuses one social/edge scratch pair across its pairs, and the
      // k-hop working set is covered by the per-worker scratch charge. The
      // presence half comes from the feature cache — a guaranteed hit
      // after the phase-1 fill, which is exactly what the cache's hit-rate
      // accounting is meant to show.
      par::ParallelOptions copts;
      copts.context = ctx;
      copts.what = "core.phase2.composite";
      copts.grain = 8;
      copts.scratch_bytes_per_worker = (social_width + d) * sizeof(double);
      par::parallel_for_chunks(
          active_count, copts,
          [&](const par::ChunkRange& chunk) {
            std::vector<double> social, edge_scratch;
            social.reserve(social_width);
            edge_scratch.reserve(d);
            for (std::size_t ai = chunk.begin; ai < chunk.end; ++ai) {
              const auto [a, b] = universe.pairs[active_rows[ai]];
              double* row = composite.row(ai);
              const double* h =
                  cache->find_presence(universe.pairs[active_rows[ai]]);
              std::copy(h, h + d, row);
              if (config_.use_social_feature)
                social_proximity_feature(current, a, b, social_cfg,
                                         edge_feature, social, edge_scratch);
              else
                heuristic_social_feature(current, a, b, social_cfg, social);
              std::copy(social.begin(), social.end(), row + d);
            }
          });

      // Train C' on the labeled pairs (subsampled under the kernel cap).
      // The RNG is derived from (seed, iteration) alone — never from how
      // many iterations this process has executed — so a run resumed from
      // a checkpoint subsamples identically to an uninterrupted one
      // (resume-equivalence).
      util::Rng svm_rng(config_.seed ^ 0x5117ULL ^
                        (static_cast<std::uint64_t>(iteration) *
                         0x9e3779b97f4a7c15ULL));
      svm_rows.assign(train_active.begin(), train_active.end());
      svm_labels.assign(train_labels.begin(), train_labels.end());
      if (svm_rows.size() > config_.max_svm_train_rows) {
        order.resize(svm_rows.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        svm_rng.shuffle(order);
        order.resize(config_.max_svm_train_rows);
        for (std::size_t j = 0; j < order.size(); ++j) {
          svm_rows[j] = train_active[order[j]];
          svm_labels[j] = train_labels[order[j]];
        }
        svm_rows.resize(order.size());
        svm_labels.resize(order.size());
      }

      ml::StandardScaler scaler;
      const nn::Matrix svm_train =
          scaler.fit_transform(composite.gather_rows(svm_rows));
      const nn::Matrix all_scaled = scaler.transform(composite);
      if (config_.phase2_classifier ==
          FriendSeekerConfig::Phase2Classifier::kLogistic) {
        ml::LogisticClassifier clf(config_.logistic);
        clf.fit(svm_train, svm_labels);
        decision = clf.decision(all_scaled);
      } else {
        ml::SvmConfig svm_cfg = config_.svm;
        svm_cfg.seed ^= static_cast<std::uint64_t>(iteration);
        svm_cfg.context = ctx;
        ml::SvmClassifier svm(svm_cfg);
        svm.fit(svm_train, svm_labels);
        decision = svm.decision(all_scaled);
      }
      // All mutation of the working state (predictions/scores/graph)
      // happens after this check, so a diverged classifier leaves the
      // last-good iteration intact for the fallback below.
      for (double v : decision)
        if (!std::isfinite(v))
          throw NumericError("FriendSeeker: non-finite decision scores at "
                             "iteration " +
                             std::to_string(iteration));

      const double cut = tune_on_train(decision);
      // Hysteresis: borderline pairs keep their previous state, so the
      // graph settles instead of oscillating around the cut. The decision
      // spread is estimated on the candidate-or-train rows — the rows
      // scored identically in every blocking mode (a dense run also scores
      // non-candidates, but those are excluded here) — so a blocked and a
      // dense run see the same margin, which is what makes their graphs
      // comparable edge-for-edge.
      double margin = 0.0;
      if (config_.flip_margin > 0.0) {
        double mean = 0.0, sq = 0.0;
        std::size_t margin_rows = 0;
        for (std::size_t ai = 0; ai < active_count; ++ai) {
          if (!candidate[active_rows[ai]]) continue;
          mean += decision[ai];
          ++margin_rows;
        }
        for (std::size_t ai : train_active) {
          if (candidate[active_rows[ai]]) continue;
          mean += decision[ai];
          ++margin_rows;
        }
        mean /= static_cast<double>(margin_rows);
        for (std::size_t ai = 0; ai < active_count; ++ai) {
          if (!candidate[active_rows[ai]]) continue;
          const double delta = decision[ai] - mean;
          sq += delta * delta;
        }
        for (std::size_t ai : train_active) {
          if (candidate[active_rows[ai]]) continue;
          const double delta = decision[ai] - mean;
          sq += delta * delta;
        }
        margin = config_.flip_margin *
                 std::sqrt(sq / static_cast<double>(margin_rows));
      }
      for (std::size_t ai = 0; ai < active_count; ++ai) {
        const std::size_t row = active_rows[ai];
        if (!candidate[row]) {
          // Non-candidate rows are scored (dense mode) but never labeled
          // friend — the candidate gate is part of the model.
          predictions[row] = 0;
        } else if (decision[ai] >= cut + margin) {
          predictions[row] = 1;
        } else if (decision[ai] < cut - margin) {
          predictions[row] = 0;
        }
        // else: inside the hysteresis band — keep the previous state.
        scores[row] = decision[ai];
      }

      graph::Graph next = graph_from_predictions(dataset.user_count(),
                                                 universe, predictions);
      const double change = graph::edge_change_ratio(current, next);
      current = std::move(next);
      record_iteration(iteration, change, current);
      result.iterations_run = iteration;
      if (!after_first_iteration.has_value())
        after_first_iteration = cache->stats();
      const double edges = static_cast<double>(current.edge_count());
      iter_span.arg("edges", edges);
      iter_span.arg("change", change);
      obs::tracer().counter("core.pipeline.edge_churn", change);
      obs::tracer().counter("core.pipeline.graph_edges", edges);
      obs::metrics()
          .gauge("core.pipeline.edge_churn", {},
                 "edge-change ratio of the latest phase-2 iteration")
          .set(change);
      obs::metrics()
          .gauge("core.pipeline.graph_edges", {},
                 "edge count of the current inferred graph")
          .set(edges);
      obs::metrics()
          .counter("core.pipeline.iterations_total", {},
                   "phase-2 refinement iterations executed")
          .add(1);
      util::log_debug("FriendSeeker: iter=", iteration,
                      " edges=", current.edge_count(), " change=", change,
                      " (", iter_span.seconds(), "s)");
      save_checkpoint_if_configured(iteration);
      // Simulated process kill at the iteration boundary, after the
      // checkpoint save. InjectedKill is not an fs::Error, so the
      // degradation catch below cannot swallow it — it unwinds to the top
      // like a real crash and the chaos harness resumes from disk.
      if (util::failpoint::fail("pipeline.iteration.abort"))
        throw util::failpoint::InjectedKill(
            "pipeline.iteration.abort: injected kill after iteration " +
            std::to_string(iteration));
      if (change < config_.convergence_threshold) {
        result.converged = true;
        break;
      }
      } catch (const Error& e) {
        const ErrorCode code = e.code();
        if (code != ErrorCode::kNumeric &&
            code != ErrorCode::kConvergence &&
            code != ErrorCode::kBudget && code != ErrorCode::kCancelled)
          throw;
        // Recoverable failures in phase 2 degrade gracefully: keep the
        // last-good graph (possibly the phase-1 seed) instead of failing
        // the whole attack. Numeric divergence keeps its diagnostics-only
        // reporting; budget/cancellation additionally land in the
        // structured DegradationReport.
        diagnostics.report(util::Severity::kError, code, "pipeline",
                           "phase-2 iteration " + std::to_string(iteration) +
                               " abandoned, keeping last-good graph: " +
                               e.what());
        if (code == ErrorCode::kBudget || code == ErrorCode::kCancelled)
          result.degradation.add(
              "phase2.refine",
              code == ErrorCode::kCancelled ? "cancelled" : "memory",
              e.what(), iteration - 1, config_.max_iterations);
        break;
      }
    }
    if (ctx != nullptr && !result.converged && !result.degradation.degraded() &&
        result.iterations_run == config_.max_iterations)
      result.degradation.add("phase2.refine", "iterations",
                             "iteration cap reached before convergence",
                             result.iterations_run, config_.max_iterations);
    result.fell_back_to_phase1 =
        result.iterations.size() == 1 &&
        result.iterations.front().iteration == 0;
  }

  result.test_predictions.reserve(test_rows.size());
  result.test_scores.reserve(test_rows.size());
  for (std::size_t row : test_rows) {
    result.test_predictions.push_back(predictions[row]);
    result.test_scores.push_back(scores[row]);
  }
  result.final_graph = std::move(current);
  if (ctx != nullptr) result.peak_memory_estimate = ctx->peak_charged();

  // ---- Blocking & cache accounting. ----
  result.blocking_active = blocking_on;
  result.blocking = blocking_stats;
  result.shards = std::move(shard_stats);
  result.cache = cache->stats();
  if (after_first_iteration.has_value()) {
    const std::uint64_t late_hits =
        result.cache.hits() - after_first_iteration->hits();
    const std::uint64_t late_misses =
        result.cache.misses() - after_first_iteration->misses();
    if (late_hits + late_misses > 0)
      result.phase2_cache_hit_rate =
          static_cast<double>(late_hits) /
          static_cast<double>(late_hits + late_misses);
  }
  obs::metrics()
      .counter("block.candidates_pruned", {},
               "candidate pairs pruned from the scored universe by blocking")
      .add(static_cast<double>(blocking_stats.pruned_pairs));
  obs::metrics()
      .gauge("block.universe_pairs", {},
             "candidate pairs supplied to the latest run")
      .set(static_cast<double>(blocking_stats.universe_pairs));
  obs::metrics()
      .gauge("block.scored_pairs", {},
             "pairs actually scored after blocking in the latest run")
      .set(static_cast<double>(blocking_stats.scored_pairs));
  obs::metrics()
      .gauge("block.cache.bytes", {}, "feature-cache arena bytes held")
      .set(static_cast<double>(result.cache.bytes));
  obs::metrics()
      .gauge("block.cache.hits", {}, "feature-cache lookup hits (cumulative)")
      .set(static_cast<double>(result.cache.hits()));
  obs::metrics()
      .gauge("block.cache.misses", {},
             "feature-cache lookup misses (cumulative)")
      .set(static_cast<double>(result.cache.misses()));
  obs::metrics()
      .gauge("block.cache.phase2_hit_rate", {},
             "cache hit rate over phase-2 iterations >= 2 of the latest run")
      .set(result.phase2_cache_hit_rate);
  // Mirror the run's sinks into gauges so --metrics-out captures them even
  // when the caller never inspects the result object.
  obs::bridge_diagnostics(diagnostics);
  obs::bridge_degradation(result.degradation);
  if (ctx != nullptr) obs::bridge_execution(*ctx);
  return result;
}

}  // namespace fs::core
