#include "core/checkpoint.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/binary_io.h"
#include "util/error.h"
#include "util/failpoint.h"

namespace fs::core {

void save_pipeline_checkpoint(const std::string& path,
                              const PipelineCheckpoint& checkpoint) {
  if (!checkpoint.presence.has_value() ||
      !checkpoint.presence->trained())
    throw std::invalid_argument(
        "save_pipeline_checkpoint: presence model missing or untrained");
  if (util::failpoint::fail("checkpoint.save.io"))
    throw IoError("save_pipeline_checkpoint: injected write failure for " +
                  path);

  // Serialize into memory first: a crash mid-write must never leave a
  // half-formed file at the final path.
  std::ostringstream buffer(std::ios::binary);
  {
    util::BinaryWriter writer(buffer);
    writer.tag("FSCP");
    writer.u64(kCheckpointVersion);
    writer.crc_begin();
    writer.u64(checkpoint.fingerprint);
    writer.i64(checkpoint.iteration);
    writer.i32_vector(checkpoint.predictions);
    writer.f64_vector(checkpoint.scores);
    checkpoint.presence->save(writer);
    writer.crc_end();
  }

  // Write to a sibling temp file and rename into place; any failure after
  // the temp file exists removes it again, so a failed save never leaves a
  // stray .tmp behind (the chaos harness asserts exactly this invariant).
  const std::string tmp_path = path + ".tmp";
  try {
    {
      std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
      if (!out)
        throw IoError("save_pipeline_checkpoint: cannot open " + tmp_path);
      const std::string bytes = buffer.str();
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      if (!out.flush())
        throw IoError("save_pipeline_checkpoint: write failed for " +
                      tmp_path);
    }
    if (util::failpoint::fail("checkpoint.save.rename"))
      throw IoError("save_pipeline_checkpoint: injected rename failure for " +
                    path);
    std::error_code ec;
    std::filesystem::rename(tmp_path, path, ec);
    if (ec)
      throw IoError("save_pipeline_checkpoint: rename to " + path +
                    " failed: " + ec.message());
  } catch (...) {
    std::error_code ignored;
    std::filesystem::remove(tmp_path, ignored);
    throw;
  }
}

PipelineCheckpoint load_pipeline_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("load_pipeline_checkpoint: cannot open " + path);
  std::ostringstream raw;
  raw << in.rdbuf();
  std::string bytes = raw.str();
  // Fault injection: a torn write / short read drops the file's tail.
  bytes.resize(util::failpoint::truncate("checkpoint.load.truncate",
                                         bytes.size()));

  std::istringstream stream(bytes, std::ios::binary);
  util::BinaryReader reader(stream);
  PipelineCheckpoint checkpoint;
  try {
    reader.expect_tag("FSCP");
    const std::uint64_t version = reader.u64();
    if (version != kCheckpointVersion)
      throw CorruptCheckpoint(
          "load_pipeline_checkpoint: unsupported version " +
          std::to_string(version));
    reader.crc_begin();
    checkpoint.fingerprint = reader.u64();
    checkpoint.iteration = static_cast<int>(reader.i64());
    checkpoint.predictions = reader.i32_vector();
    checkpoint.scores = reader.f64_vector();
    checkpoint.presence.emplace(PresenceModel::load(reader));
    reader.crc_end();
  } catch (const CorruptCheckpoint&) {
    throw;
  } catch (const std::exception& e) {
    // Truncation, tag mismatches, implausible sizes — every structural
    // defect surfaces as the one code callers branch on.
    throw CorruptCheckpoint(std::string("load_pipeline_checkpoint: ") +
                            e.what());
  }
  return checkpoint;
}

}  // namespace fs::core
