// Phase 2 features: social-proximity vectors from k-hop reachable subgraphs
// (Section III-C.2, Fig 6).
//
// For a pair (a, b), the k-hop reachable subgraph is decomposed by path
// length; the presence features h of the edges on same-length paths are
// summed, and the per-length sums are concatenated — yielding a
// (k-1) * d social-proximity vector s. The composite phase-2 feature is
// v = h_(a,b) ⊕ s_(a,b).
#pragma once

#include <functional>
#include <vector>

#include "data/dataset.h"
#include "graph/khop.h"

namespace fs::core {

/// Supplies the presence feature of an edge (i, j); returns false when the
/// pair has no feature available (edge outside the candidate universe). A
/// missing edge contributes nothing to the sum.
using EdgeFeatureFn =
    std::function<bool(data::UserId, data::UserId, std::vector<double>&)>;

struct SocialFeatureConfig {
  int k = 3;
  std::size_t feature_dim = 64;  // must equal the presence feature dim
  graph::KHopOptions khop;       // khop.k is overwritten with k
};

/// Computes s_(a,b) on graph `g`. The returned vector has
/// (k - 1) * feature_dim entries: slot 0 sums edge features over length-2
/// paths, slot 1 over length-3 paths, and so on.
std::vector<double> social_proximity_feature(const graph::Graph& g,
                                             data::UserId a, data::UserId b,
                                             const SocialFeatureConfig& config,
                                             const EdgeFeatureFn& edge_feature);

/// Scratch-reusing variant for hot loops: `out` is resized and zeroed,
/// `edge_scratch` is handed to `edge_feature` so the per-edge vector is
/// allocated once per worker instead of once per pair.
void social_proximity_feature(const graph::Graph& g, data::UserId a,
                              data::UserId b,
                              const SocialFeatureConfig& config,
                              const EdgeFeatureFn& edge_feature,
                              std::vector<double>& out,
                              std::vector<double>& edge_scratch);

/// Heuristic alternative for the ablation: [common neighbors, Jaccard,
/// Adamic-Adar, Katz, path counts per length 2..k], zero-padded/truncated
/// to the same width as the paper's feature for drop-in comparison.
std::vector<double> heuristic_social_feature(const graph::Graph& g,
                                             data::UserId a, data::UserId b,
                                             const SocialFeatureConfig& config);

/// Scratch-reusing variant of heuristic_social_feature.
void heuristic_social_feature(const graph::Graph& g, data::UserId a,
                              data::UserId b,
                              const SocialFeatureConfig& config,
                              std::vector<double>& out);

}  // namespace fs::core
