// The end-to-end FriendSeeker attack (Fig 2): phase 1 builds the initial
// social graph from presence-proximity features; phase 2 iteratively refines
// it with social-proximity features until fewer than 1 % of edges change.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "block/candidate_gen.h"
#include "block/feature_cache.h"
#include "core/presence.h"
#include "core/social.h"
#include "data/dataset.h"
#include "geo/quadtree.h"
#include "graph/graph.h"
#include "ml/logistic.h"
#include "ml/svm.h"
#include "shard/sharded_candidates.h"
#include "util/error.h"
#include "util/runtime.h"

namespace fs::core {

struct FriendSeekerConfig {
  // ---- Spatial-temporal division ----
  std::size_t sigma = 200;   // max POIs per quadtree grid
  double tau_days = 7.0;     // time-slot length
  bool uniform_grid = false; // ablation: uniform grid instead of quadtree
  std::size_t uniform_rows = 4;
  std::size_t uniform_cols = 4;

  // ---- Phase 1 ----
  PresenceModelConfig presence;

  // ---- Phase 2 ----
  int k = 3;  // k-hop reachable subgraph depth
  /// The paper uses an RBF-SVM as C' but stresses the approach is
  /// classifier-agnostic; kLogistic swaps in logistic regression (see the
  /// ablation bench).
  enum class Phase2Classifier { kSvm, kLogistic };
  Phase2Classifier phase2_classifier = Phase2Classifier::kSvm;
  ml::SvmConfig svm;
  ml::LogisticConfig logistic;
  /// SVM training rows are subsampled to this cap (kernel memory/time).
  std::size_t max_svm_train_rows = 1500;
  int max_iterations = 6;
  /// The paper stops below 1 %; the SVM is retrained every iteration here,
  /// which keeps a small churn floor (a few percent of borderline pairs
  /// flip each round), so the scaled default is 4.5 %.
  double convergence_threshold = 0.055;
  /// Flip hysteresis: an existing edge is removed (or a missing edge
  /// added) only when the SVM decision clears the tuned cut by this many
  /// standard deviations of the decision distribution. Damps borderline
  /// pairs oscillating between iterations; 0 disables.
  double flip_margin = 0.3;

  // ---- Sharded execution ----
  /// 0 = the monolithic path (exactly the pre-sharding pipeline). N >= 1
  /// partitions the spatial division into N contiguous quadtree-subtree
  /// grid ranges (balanced by check-in weight) and runs the CellIndex
  /// build and phase-1 scoring shard by shard with a deterministic
  /// shard-ordered merge. Guarantee (enforced by the shard differential
  /// tests): the final-graph digest is byte-identical to the monolithic
  /// run at any shard count, including 1 — which is also why `shards` is
  /// deliberately absent from the checkpoint fingerprint: checkpoints are
  /// interchangeable across shard counts.
  std::size_t shards = 0;

  // ---- Candidate blocking & feature caching ----
  /// Spatial-temporal blocking over the candidate universe: pairs that never
  /// co-occur (shared grid cell within slot_tolerance slots) and sit outside
  /// hop_expansion strong-co-occurrence hops are pruned from scoring and
  /// predicted non-friend. Train pairs are always kept (the attacker owns
  /// their labels). kAuto (default) turns blocking on only above
  /// auto_min_pairs, so the balanced eval protocol stays dense.
  block::BlockingConfig blocking;
  /// Optional externally owned feature cache. When set, JOC rows and
  /// presence features are read from / written into it, surviving across
  /// runs that share a cache signature (same binned dataset, presence
  /// config, seed, and training set). Null = a run-local cache (phase-2
  /// iterations still hit it; nothing outlives the run).
  block::FeatureCache* feature_cache = nullptr;

  // ---- Ablations ----
  bool use_social_feature = true;  // false: heuristic structural features
  bool iterate = true;             // false: stop after phase 1

  // ---- Fault tolerance ----
  /// When non-empty, the working state is checkpointed into this directory
  /// after every phase-2 iteration (file: checkpoint.fsck).
  std::string checkpoint_dir;
  /// Resume from the last valid checkpoint in checkpoint_dir. A corrupt or
  /// mismatched checkpoint is reported into the result's diagnostics and
  /// the run restarts cleanly from phase 1.
  bool resume = false;

  // ---- Execution governance ----
  /// Optional runtime governance (deadline, cancellation token, memory
  /// budget). Threaded through every heavy loop: the JOC build, autoencoder
  /// epochs, SMO passes, and the phase-2 refinement loop. Null = unlimited.
  runtime::ExecutionContext* context = nullptr;
  /// Per-phase wall-clock budgets in seconds, applied as PhaseScope
  /// tightening on top of the context deadline (0 = no per-phase budget).
  /// Expiry truncates the phase at the next safe boundary and records the
  /// loss in the result's DegradationReport instead of failing the run.
  double phase1_budget_sec = 0.0;
  double phase2_budget_sec = 0.0;

  std::uint64_t seed = 99;
};

/// Per-iteration trace for Fig 10 and convergence analysis. Iteration 0 is
/// the phase-1 (presence-only) graph.
struct IterationRecord {
  int iteration = 0;
  double edge_change_ratio = 0.0;  // vs the previous iteration's graph
  std::size_t graph_edges = 0;
  std::vector<int> test_predictions;
};

struct FriendSeekerResult {
  std::vector<int> test_predictions;     // aligned with test_pairs
  std::vector<double> test_scores;       // decision scores (phase 2) or
                                         // KNN probabilities (phase 1 only)
  std::vector<IterationRecord> iterations;
  graph::Graph final_graph;
  int iterations_run = 0;
  bool converged = false;
  /// True when phase 2 diverged (NaN/Inf training or scores) before
  /// completing a single iteration and the result is the phase-1 graph.
  bool fell_back_to_phase1 = false;
  /// Last completed iteration restored from a checkpoint (0 = fresh run).
  int resumed_from_iteration = 0;
  /// Everything the run degraded on: quarantined records, divergence
  /// retries, rejected checkpoints, fallbacks.
  util::Diagnostics diagnostics;
  /// Phases truncated by governance (deadline, memory budget, cancellation,
  /// iteration cap); empty on an ungoverned or fully completed run.
  runtime::DegradationReport degradation;
  /// Peak of the context's charged-memory estimate during this run, in
  /// bytes (0 when no context was supplied).
  std::size_t peak_memory_estimate = 0;
  /// True when candidate blocking actually pruned the universe (kOn, or
  /// kAuto above the threshold).
  bool blocking_active = false;
  /// Universe/scored/pruned tier counts for this run (universe_pairs ==
  /// scored_pairs when blocking was off).
  block::BlockingStats blocking;
  /// Feature-cache counters at the end of the run. With an external cache
  /// these accumulate across runs.
  block::FeatureCache::Stats cache;
  /// JOC/presence cache hit rate over phase-2 iterations >= 2 (the steady
  /// state the cache exists for); 0 when fewer than two iterations ran.
  double phase2_cache_hit_rate = 0.0;
  /// Per-shard execution accounting when sharded execution was requested
  /// (config.shards >= 1); empty on the monolithic path. Every universe
  /// pair is owned by exactly one shard, so scored + pruned sums across
  /// shards equal the blocking totals (the schema-v4 bench invariant).
  std::vector<shard::ShardRunStats> shards;
};

/// One trained attack instance. `run` trains on the labeled pairs and
/// returns predictions for the unlabeled test pairs; the working social
/// graph spans all candidate pairs (train + test), mirroring an attacker
/// who predicts over the whole target population.
class FriendSeeker {
 public:
  explicit FriendSeeker(const FriendSeekerConfig& config);

  FriendSeekerResult run(const data::Dataset& dataset,
                         const std::vector<data::UserPair>& train_pairs,
                         const std::vector<int>& train_labels,
                         const std::vector<data::UserPair>& test_pairs);

  const FriendSeekerConfig& config() const { return config_; }

 private:
  FriendSeekerConfig config_;
};

}  // namespace fs::core
