#include "core/social.h"

#include <algorithm>
#include <stdexcept>

#include "graph/heuristics.h"

namespace fs::core {

std::vector<double> social_proximity_feature(
    const graph::Graph& g, data::UserId a, data::UserId b,
    const SocialFeatureConfig& config, const EdgeFeatureFn& edge_feature) {
  if (config.k < 2)
    throw std::invalid_argument("social_proximity_feature: k must be >= 2");
  graph::KHopOptions khop = config.khop;
  khop.k = config.k;
  const graph::KHopSubgraph sub = graph::extract_khop_subgraph(g, a, b, khop);

  const std::size_t d = config.feature_dim;
  std::vector<double> feature(static_cast<std::size_t>(config.k - 1) * d,
                              0.0);
  std::vector<double> edge_vec;
  for (std::size_t bucket = 0; bucket < sub.paths_by_length.size();
       ++bucket) {
    double* slot = feature.data() + bucket * d;
    for (const graph::Path& path : sub.paths_by_length[bucket]) {
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        if (!edge_feature(path[i], path[i + 1], edge_vec)) continue;
        if (edge_vec.size() != d)
          throw std::logic_error(
              "social_proximity_feature: edge feature width mismatch");
        for (std::size_t c = 0; c < d; ++c) slot[c] += edge_vec[c];
      }
    }
  }
  return feature;
}

std::vector<double> heuristic_social_feature(
    const graph::Graph& g, data::UserId a, data::UserId b,
    const SocialFeatureConfig& config) {
  if (config.k < 2)
    throw std::invalid_argument("heuristic_social_feature: k must be >= 2");
  std::vector<double> feature;
  feature.push_back(graph::common_neighbors_score(g, a, b));
  feature.push_back(graph::jaccard_score(g, a, b));
  feature.push_back(graph::adamic_adar_score(g, a, b));
  feature.push_back(graph::katz_score(g, a, b, 0.05, config.k));
  graph::KHopOptions khop = config.khop;
  khop.k = config.k;
  for (std::size_t n : graph::khop_path_counts(g, a, b, khop))
    feature.push_back(static_cast<double>(n));
  // Same width as the paper's feature so classifiers are interchangeable.
  feature.resize(static_cast<std::size_t>(config.k - 1) * config.feature_dim,
                 0.0);
  return feature;
}

}  // namespace fs::core
