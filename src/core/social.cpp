#include "core/social.h"

#include <algorithm>
#include <stdexcept>

#include "graph/heuristics.h"

namespace fs::core {

std::vector<double> social_proximity_feature(
    const graph::Graph& g, data::UserId a, data::UserId b,
    const SocialFeatureConfig& config, const EdgeFeatureFn& edge_feature) {
  std::vector<double> feature, edge_scratch;
  social_proximity_feature(g, a, b, config, edge_feature, feature,
                           edge_scratch);
  return feature;
}

void social_proximity_feature(const graph::Graph& g, data::UserId a,
                              data::UserId b,
                              const SocialFeatureConfig& config,
                              const EdgeFeatureFn& edge_feature,
                              std::vector<double>& out,
                              std::vector<double>& edge_scratch) {
  if (config.k < 2)
    throw std::invalid_argument("social_proximity_feature: k must be >= 2");
  graph::KHopOptions khop = config.khop;
  khop.k = config.k;
  const graph::KHopSubgraph sub = graph::extract_khop_subgraph(g, a, b, khop);

  const std::size_t d = config.feature_dim;
  out.assign(static_cast<std::size_t>(config.k - 1) * d, 0.0);
  for (std::size_t bucket = 0; bucket < sub.paths_by_length.size();
       ++bucket) {
    double* slot = out.data() + bucket * d;
    for (const graph::Path& path : sub.paths_by_length[bucket]) {
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        if (!edge_feature(path[i], path[i + 1], edge_scratch)) continue;
        if (edge_scratch.size() != d)
          throw std::logic_error(
              "social_proximity_feature: edge feature width mismatch");
        for (std::size_t c = 0; c < d; ++c) slot[c] += edge_scratch[c];
      }
    }
  }
}

std::vector<double> heuristic_social_feature(
    const graph::Graph& g, data::UserId a, data::UserId b,
    const SocialFeatureConfig& config) {
  std::vector<double> feature;
  heuristic_social_feature(g, a, b, config, feature);
  return feature;
}

void heuristic_social_feature(const graph::Graph& g, data::UserId a,
                              data::UserId b,
                              const SocialFeatureConfig& config,
                              std::vector<double>& out) {
  if (config.k < 2)
    throw std::invalid_argument("heuristic_social_feature: k must be >= 2");
  out.clear();
  out.reserve(static_cast<std::size_t>(config.k - 1) * config.feature_dim);
  out.push_back(graph::common_neighbors_score(g, a, b));
  out.push_back(graph::jaccard_score(g, a, b));
  out.push_back(graph::adamic_adar_score(g, a, b));
  out.push_back(graph::katz_score(g, a, b, 0.05, config.k));
  graph::KHopOptions khop = config.khop;
  khop.k = config.k;
  for (std::size_t n : graph::khop_path_counts(g, a, b, khop))
    out.push_back(static_cast<double>(n));
  // Same width as the paper's feature so classifiers are interchangeable.
  out.resize(static_cast<std::size_t>(config.k - 1) * config.feature_dim,
             0.0);
}

}  // namespace fs::core
