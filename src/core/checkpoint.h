// Checksummed checkpoint/resume for the phase-2 refinement loop.
//
// After each phase-2 iteration the pipeline can persist its working state
// (trained phase-1 model, current pair predictions/scores, iteration
// counter) so a long attack run survives crashes: resume re-derives the
// deterministic parts (spatial division, JOCs) and continues from the last
// completed iteration.
//
// File format (see DESIGN.md "Error handling & fault injection"):
//
//   "FSCP"            4-byte magic
//   u64               format version
//   --- CRC32 region ---
//   u64               config/dataset fingerprint
//   i64               completed iteration
//   i32_vector        predictions over the candidate-pair universe
//   f64_vector        decision scores over the universe
//   PresenceModel     trained phase-1 model (its own tagged records)
//   --- end region ---
//   u64               CRC32 of the region
//
// Any mismatch — magic, version, fingerprint, truncation, checksum —
// throws fs::CorruptCheckpoint; the caller restarts cleanly instead of
// resuming from garbage.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/presence.h"

namespace fs::core {

inline constexpr std::uint64_t kCheckpointVersion = 1;

struct PipelineCheckpoint {
  /// Hash of the run configuration + dataset shape; a resume against a
  /// different run is rejected as corrupt rather than silently mixed in.
  std::uint64_t fingerprint = 0;
  int iteration = 0;  // last completed phase-2 iteration
  std::vector<int> predictions;
  std::vector<double> scores;
  std::optional<PresenceModel> presence;
};

/// Writes atomically (temp file + rename). Throws fs::IoError on failure.
void save_pipeline_checkpoint(const std::string& path,
                              const PipelineCheckpoint& checkpoint);

/// Throws fs::CorruptCheckpoint on any structural problem, fs::IoError if
/// the file cannot be opened.
PipelineCheckpoint load_pipeline_checkpoint(const std::string& path);

}  // namespace fs::core
