#include "core/joc.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/par.h"

namespace fs::core {

OccupancyIndex::OccupancyIndex(const data::Dataset& dataset,
                               const geo::SpatialDivision& division,
                               const geo::TimeSlotting& slots)
    : grid_count_(division.cell_count()),
      slot_count_(slots.slot_count()),
      per_user_(dataset.user_count()) {
  for (data::UserId u = 0; u < dataset.user_count(); ++u) {
    auto& entries = per_user_[u];
    entries.reserve(dataset.trajectory(u).size());
    for (const data::CheckIn& c : dataset.trajectory(u)) {
      const std::size_t grid = division.cell_of(c.location);
      const std::size_t slot = slots.slot_of(c.time);
      entries.push_back(Entry{
          static_cast<std::uint32_t>(grid * slot_count_ + slot), c.poi, 1});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& x, const Entry& y) {
                if (x.cellslot != y.cellslot) return x.cellslot < y.cellslot;
                return x.poi < y.poi;
              });
    // Collapse duplicates into counts.
    std::size_t write = 0;
    for (std::size_t read = 0; read < entries.size(); ++read) {
      if (write > 0 && entries[write - 1].cellslot == entries[read].cellslot &&
          entries[write - 1].poi == entries[read].poi) {
        ++entries[write - 1].count;
      } else {
        entries[write++] = entries[read];
      }
    }
    entries.resize(write);
  }
}

const std::vector<OccupancyIndex::Entry>& OccupancyIndex::user_entries(
    data::UserId user) const {
  return per_user_.at(user);
}

void build_joc(const OccupancyIndex& index, data::UserId a, data::UserId b,
               double* out, const JocOptions& options) {
  const std::size_t cells = index.grid_count() * index.slot_count();
  std::memset(out, 0, cells * 3 * sizeof(double));
  // Layout: [n_a(cell 0..C-1) | n_b(...) | n_ab(...)], cell-major per
  // channel; channel separation helps the dense encoder find per-channel
  // structure.
  double* na = out;
  double* nb = out + cells;
  double* nab = out + 2 * cells;

  const auto& ea = index.user_entries(a);
  const auto& eb = index.user_entries(b);
  for (const auto& e : ea) na[e.cellslot] += e.count;
  for (const auto& e : eb) nb[e.cellslot] += e.count;

  // n_ab: count POIs present in BOTH users' entry lists for the same cell.
  std::size_t ia = 0, ib = 0;
  while (ia < ea.size() && ib < eb.size()) {
    const auto ka = std::make_pair(ea[ia].cellslot, ea[ia].poi);
    const auto kb = std::make_pair(eb[ib].cellslot, eb[ib].poi);
    if (ka < kb) {
      ++ia;
    } else if (kb < ka) {
      ++ib;
    } else {
      nab[ea[ia].cellslot] += 1.0;
      ++ia;
      ++ib;
    }
  }

  if (options.log_scale) {
    for (std::size_t i = 0; i < cells * 3; ++i)
      out[i] = std::log1p(out[i]);
  }
}

nn::Matrix build_joc_matrix(const OccupancyIndex& index,
                            const std::vector<data::UserPair>& pairs,
                            const JocOptions& options) {
  obs::Span span("core.joc.build");
  span.arg("rows", static_cast<double>(pairs.size()));
  nn::Matrix m(pairs.size(), index.joc_dim());
  // Each row is an independent cuboid; rows fan out across the pool with a
  // cancellation probe per chunk (a partial JOC matrix is unusable, so the
  // probe is the hard checkpoint() flavour, as before).
  par::ParallelOptions popts;
  popts.context = options.context;
  popts.what = "core.joc.build";
  popts.grain = par::grain_for(index.joc_dim() * 4);
  par::parallel_for(pairs.size(), popts, [&](std::size_t r) {
    build_joc(index, pairs[r].first, pairs[r].second, m.row(r), options);
  });
  // Batched at loop exit so the per-row path stays free of atomics.
  obs::metrics()
      .counter("core.joc.rows_total", {}, "JOC feature rows built")
      .add(pairs.size());
  obs::metrics()
      .counter("core.joc.cells_total", {},
               "JOC matrix cells filled (rows x joc_dim)")
      .add(pairs.size() * index.joc_dim());
  return m;
}

}  // namespace fs::core
