// Joint Occurrence Cuboid construction (Definitions 8-9, Fig 3).
//
// Both users' trajectories are cast into the spatial-temporal division; for
// every (grid, slot) cell the cuboid stores three indicators: the users'
// check-in counts n_a and n_b, and the number of POIs visited by BOTH users
// in that cell, n_ab. The flattened cuboid (I*J*3 values) is the input to
// the supervised autoencoder.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "geo/spatial_division.h"
#include "geo/time_slots.h"
#include "nn/matrix.h"
#include "util/runtime.h"

namespace fs::core {

/// Per-user occupancy index: check-ins aggregated by (cell, slot, POI),
/// sorted for pairwise merging. Built once per division/tau setting and
/// reused across all pairs — JOC construction is the hot path.
class OccupancyIndex {
 public:
  OccupancyIndex(const data::Dataset& dataset,
                 const geo::SpatialDivision& division,
                 const geo::TimeSlotting& slots);

  struct Entry {
    std::uint32_t cellslot;  // grid * slot_count + slot
    data::PoiId poi;
    std::uint32_t count;
  };

  const std::vector<Entry>& user_entries(data::UserId user) const;

  std::size_t grid_count() const { return grid_count_; }
  std::size_t slot_count() const { return slot_count_; }

  /// Flattened JOC dimensionality: I * J * 3.
  std::size_t joc_dim() const { return grid_count_ * slot_count_ * 3; }

 private:
  std::size_t grid_count_;
  std::size_t slot_count_;
  std::vector<std::vector<Entry>> per_user_;
};

struct JocOptions {
  /// log1p-compress the three indicators: check-in counts are heavy-tailed
  /// and raw counts destabilize autoencoder training. Monotone per cell, so
  /// it preserves which cells carry signal.
  bool log_scale = true;
  /// Optional governance: build_joc_matrix runs a cooperative cancellation
  /// point every few hundred rows (a partial JOC matrix is unusable, so
  /// cancellation and deadline expiry abort with a typed error).
  runtime::ExecutionContext* context = nullptr;
};

/// Writes the flattened JOC of (a, b) into `out` (size joc_dim()).
void build_joc(const OccupancyIndex& index, data::UserId a, data::UserId b,
               double* out, const JocOptions& options = {});

/// Builds the JOC matrix for a list of pairs (one row per pair).
nn::Matrix build_joc_matrix(const OccupancyIndex& index,
                            const std::vector<data::UserPair>& pairs,
                            const JocOptions& options = {});

}  // namespace fs::core
