// C-SVC with an RBF kernel trained by SMO — the paper's phase-2 classifier
// C' ("We use ... SVM as the classifier C'. We use RBF as the kernel
// function", Sec IV-B).
//
// The solver is Platt's SMO in its simplified two-heuristic form with a
// precomputed kernel matrix; training sets in this repo stay in the low
// thousands, where this is fast and exact enough.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/matrix.h"
#include "util/binary_io.h"
#include "util/runtime.h"

namespace fs::ml {

struct SvmConfig {
  double c = 1.0;            // box constraint
  double gamma = 0.0;        // RBF width; 0 = auto "scale": 1/(dim*var)
  double tolerance = 1e-3;   // KKT tolerance
  int max_passes = 5;        // consecutive passes without alpha updates
  int max_iterations = 200;  // hard cap on full sweeps
  std::uint64_t seed = 11;
  /// Hard cap on training rows (kernel matrix memory guard). fit() throws
  /// if exceeded — callers subsample explicitly, never silently.
  std::size_t max_train_rows = 4000;
  /// Optional governance: the kernel matrix is charged against the memory
  /// budget, cancellation is checked per SMO sweep, and an expired deadline
  /// stops sweeping early (the current alphas are a valid, if less
  /// converged, model). Not serialized.
  fs::runtime::ExecutionContext* context = nullptr;
};

class SvmClassifier {
 public:
  explicit SvmClassifier(const SvmConfig& config = {});

  /// Trains on (already scaled) features with labels in {0, 1}.
  void fit(const nn::Matrix& features, const std::vector<int>& labels);

  /// Signed decision value: positive means class 1.
  double decision(const double* query) const;
  std::vector<double> decision(const nn::Matrix& queries) const;

  std::vector<int> predict(const nn::Matrix& queries) const;

  /// Probability-like score via a logistic squashing of the decision value.
  /// After calibrate(), proper Platt scaling P(y=1|f) = 1/(1+exp(A f + B))
  /// is applied instead.
  std::vector<double> predict_proba(const nn::Matrix& queries) const;

  /// Fits Platt scaling on a labeled calibration set (Platt 1999, with the
  /// numerically robust Newton iteration of Lin, Lin & Weng 2007).
  void calibrate(const nn::Matrix& features, const std::vector<int>& labels);
  bool calibrated() const { return calibrated_; }
  double platt_a() const { return platt_a_; }
  double platt_b() const { return platt_b_; }

  std::size_t support_vector_count() const { return support_.rows(); }

  void save(util::BinaryWriter& writer) const;
  static SvmClassifier load(util::BinaryReader& reader);

  double gamma() const { return gamma_; }
  bool trained() const { return trained_; }

 private:
  /// RBF between a support vector (by index) and a query with precomputed
  /// squared norms: ‖x−y‖² = ‖x‖² + ‖y‖² − 2·x·y, clamped at 0 (the
  /// expansion can go epsilon-negative where the direct difference
  /// cannot).
  double kernel_to_support(std::size_t sv, const double* query,
                           double query_norm) const;
  /// Rebuilds support_norms_ from support_ (after fit and load).
  void cache_support_norms();

  SvmConfig config_;
  double gamma_ = 1.0;
  double bias_ = 0.0;
  nn::Matrix support_;              // support vectors (rows)
  std::vector<double> support_norms_;  // ‖support row‖² (derived, not saved)
  std::vector<double> alpha_y_;     // alpha_i * y_i per support vector
  bool trained_ = false;
  bool calibrated_ = false;
  double platt_a_ = -1.0;
  double platt_b_ = 0.0;
};

}  // namespace fs::ml
