#include "ml/logistic.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "util/error.h"
#include "util/failpoint.h"

namespace fs::ml {

LogisticClassifier::LogisticClassifier(const LogisticConfig& config)
    : config_(config) {
  if (config.learning_rate <= 0.0)
    throw std::invalid_argument("LogisticClassifier: learning_rate <= 0");
  if (config.epochs <= 0)
    throw std::invalid_argument("LogisticClassifier: epochs <= 0");
}

void LogisticClassifier::fit(const nn::Matrix& features,
                             const std::vector<int>& labels) {
  const std::size_t n = features.rows();
  const std::size_t dim = features.cols();
  if (n != labels.size())
    throw std::invalid_argument("LogisticClassifier::fit: size mismatch");
  if (n == 0)
    throw std::invalid_argument("LogisticClassifier::fit: empty set");

  // Same contract as the SVM: refuse to train on non-finite features.
  if (!std::isfinite(util::failpoint::corrupt("ml.logistic.nan", 0.0)))
    throw NumericError("LogisticClassifier::fit: injected non-finite feature");
  for (std::size_t i = 0; i < features.size(); ++i)
    if (!std::isfinite(features.data()[i]))
      throw NumericError(
          "LogisticClassifier::fit: non-finite feature at flat index " +
          std::to_string(i));

  weights_.assign(dim, 0.0);
  bias_ = 0.0;

  std::vector<double> grad(dim);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_bias = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double* row = features.row(i);
      double z = bias_;
      for (std::size_t c = 0; c < dim; ++c) z += weights_[c] * row[c];
      const double p = 1.0 / (1.0 + std::exp(-z));
      const double err = p - static_cast<double>(labels[i] != 0);
      for (std::size_t c = 0; c < dim; ++c) grad[c] += err * row[c];
      grad_bias += err;
    }
    const double scale = config_.learning_rate / static_cast<double>(n);
    for (std::size_t c = 0; c < dim; ++c)
      weights_[c] -= scale * (grad[c] +
                              config_.l2 * static_cast<double>(n) *
                                  weights_[c]);
    bias_ -= scale * grad_bias;
  }
  trained_ = true;
}

double LogisticClassifier::decision(const double* query) const {
  if (!trained_)
    throw std::logic_error("LogisticClassifier: predict before fit");
  double z = bias_;
  for (std::size_t c = 0; c < weights_.size(); ++c)
    z += weights_[c] * query[c];
  return z;
}

std::vector<double> LogisticClassifier::decision(
    const nn::Matrix& queries) const {
  if (queries.cols() != weights_.size())
    throw std::invalid_argument("LogisticClassifier: query width mismatch");
  std::vector<double> out(queries.rows());
  for (std::size_t r = 0; r < queries.rows(); ++r)
    out[r] = decision(queries.row(r));
  return out;
}

std::vector<int> LogisticClassifier::predict(const nn::Matrix& queries) const {
  const auto d = decision(queries);
  std::vector<int> out(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) out[i] = d[i] > 0.0;
  return out;
}

std::vector<double> LogisticClassifier::predict_proba(
    const nn::Matrix& queries) const {
  const auto d = decision(queries);
  std::vector<double> out(d.size());
  for (std::size_t i = 0; i < d.size(); ++i)
    out[i] = 1.0 / (1.0 + std::exp(-d[i]));
  return out;
}

}  // namespace fs::ml
