// K-nearest-neighbors classifier — the paper's phase-1 classifier C over
// presence-proximity features ("we use a simple KNN ... as the classifier
// C", Sec IV-B).
#pragma once

#include <cstddef>
#include <vector>

#include "nn/matrix.h"
#include "util/binary_io.h"
#include "util/runtime.h"

namespace fs::ml {

class KnnClassifier {
 public:
  explicit KnnClassifier(std::size_t k = 5);

  /// Stores the (already scaled) training features and binary labels.
  void fit(nn::Matrix features, std::vector<int> labels);

  /// Fraction of positive labels among the k nearest training rows
  /// (Euclidean distance). Ties in distance resolve by training order.
  double predict_proba(const double* query) const;

  /// Batch queries run one neighbor search per row across the fs::par
  /// pool; `context` (optional) is probed for cancellation/deadline at
  /// chunk granularity.
  std::vector<double> predict_proba(
      const nn::Matrix& queries,
      runtime::ExecutionContext* context = nullptr) const;
  std::vector<int> predict(const nn::Matrix& queries,
                           runtime::ExecutionContext* context = nullptr) const;

  std::size_t k() const { return k_; }
  std::size_t train_size() const { return labels_.size(); }

  void save(util::BinaryWriter& writer) const;
  static KnnClassifier load(util::BinaryReader& reader);

 private:
  std::size_t k_;
  nn::Matrix features_;
  std::vector<int> labels_;
};

}  // namespace fs::ml
