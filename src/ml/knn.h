// K-nearest-neighbors classifier — the paper's phase-1 classifier C over
// presence-proximity features ("we use a simple KNN ... as the classifier
// C", Sec IV-B).
//
// Two distance paths share one decision rule:
//
//   full precision (default)  — one exact f64 scan per query.
//   quantized (`set_quantize`) — training rows are compressed to int8
//     codes with per-dimension scale/offset; fs::kern computes an
//     asymmetric squared-distance LOWER BOUND per row, the k tightest
//     bounds seed an exact heap, and every remaining row whose bound
//     clears the running k-th distance (with a small relative slack) is
//     pruned without touching its f64 row. Survivors are re-ranked with
//     the same exact f64 expression the default path uses, so whenever
//     the bound is admissible — it underestimates by construction, the
//     slack absorbs f32 rounding — the neighbor set, tie-breaks, and
//     returned probability bits are identical to full precision.
//
// The quantized index is a runtime acceleration structure: it is rebuilt
// by fit()/set_quantize() and never serialized (KNN0 format unchanged).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/matrix.h"
#include "util/aligned.h"
#include "util/binary_io.h"
#include "util/runtime.h"

namespace fs::ml {

/// Aggregate work counters from quantized batch queries: how many rows
/// the lower bound pruned versus how many needed the exact f64 distance.
struct KnnQuantStats {
  std::uint64_t rows_scanned = 0;  ///< candidate rows considered (n * queries)
  std::uint64_t exact_evals = 0;   ///< rows that survived to exact rerank
};

class KnnClassifier {
 public:
  explicit KnnClassifier(std::size_t k = 5);

  /// Stores the (already scaled) training features and binary labels.
  void fit(nn::Matrix features, std::vector<int> labels);

  /// Switches between the exact scan and the int8 lower-bound path
  /// (rebuilding or dropping the code index). Safe before or after fit.
  void set_quantize(bool enabled);
  bool quantize() const { return quantize_; }

  /// Fraction of positive labels among the k nearest training rows
  /// (Euclidean distance). Ties in distance resolve by training order.
  double predict_proba(const double* query) const;

  /// Batch queries run one neighbor search per row across the fs::par
  /// pool; `context` (optional) is probed for cancellation/deadline at
  /// chunk granularity.
  std::vector<double> predict_proba(
      const nn::Matrix& queries,
      runtime::ExecutionContext* context = nullptr) const;
  std::vector<int> predict(const nn::Matrix& queries,
                           runtime::ExecutionContext* context = nullptr) const;

  std::size_t k() const { return k_; }
  std::size_t train_size() const { return labels_.size(); }

  /// Counters accumulated across quantized batch calls since fit().
  const KnnQuantStats& quant_stats() const { return quant_stats_; }

  void save(util::BinaryWriter& writer) const;
  static KnnClassifier load(util::BinaryReader& reader);

 private:
  void build_quant_index();
  double quantized_proba(const double* query,
                         std::uint64_t* exact_evals) const;

  std::size_t k_;
  nn::Matrix features_;
  std::vector<int> labels_;

  // int8 scalar-quantization index (runtime-only; see file comment).
  bool quantize_ = false;
  std::vector<std::uint8_t, util::AlignedAllocator<std::uint8_t>> codes_;
  std::vector<float> scale_;
  std::vector<float> offset_;
  std::vector<float> half_scale_;
  mutable KnnQuantStats quant_stats_;
};

}  // namespace fs::ml
