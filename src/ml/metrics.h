// Binary-classification metrics. The paper evaluates everything with
// F1-score (plus precision/recall in the sensitivity figures).
#pragma once

#include <cstddef>
#include <vector>

namespace fs::ml {

struct Confusion {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t tn = 0;
  std::size_t fn = 0;

  std::size_t total() const { return tp + fp + tn + fn; }
};

Confusion confusion(const std::vector<int>& truth,
                    const std::vector<int>& predicted);

struct Prf {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Precision/recall/F1 of the positive class; all zero when undefined
/// (no predicted positives / no actual positives).
Prf prf(const Confusion& c);
Prf prf(const std::vector<int>& truth, const std::vector<int>& predicted);

/// Plain accuracy.
double accuracy(const Confusion& c);

/// Thresholds probabilities at 0.5 into hard labels.
std::vector<int> threshold(const std::vector<double>& probabilities,
                           double cutoff = 0.5);

/// The score cut that maximizes F1 on a labeled set (predict positive at or
/// above the cut). Used by every attack to pick its operating point on the
/// training split.
struct TunedThreshold {
  double threshold = 0.0;
  double train_f1 = 0.0;
};

TunedThreshold tune_f1_threshold(const std::vector<double>& scores,
                                 const std::vector<int>& labels);

/// Area under the ROC curve via the Mann-Whitney rank statistic, with
/// average ranks on score ties. Returns 0.5 when either class is empty
/// (the chance-level convention — an undefined ranking is not evidence).
double auc(const std::vector<int>& truth, const std::vector<double>& scores);

/// Precision among the k highest-scored items (ties broken by lower index,
/// so the value is deterministic for a fixed score vector). Returns 0 for
/// k == 0 or an empty input; k is clamped to the population size.
double precision_at_k(const std::vector<int>& truth,
                      const std::vector<double>& scores, std::size_t k);

}  // namespace fs::ml
