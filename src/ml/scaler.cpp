#include "ml/scaler.h"

#include <cmath>
#include <stdexcept>

namespace fs::ml {

void StandardScaler::fit(const nn::Matrix& features) {
  if (features.rows() == 0)
    throw std::invalid_argument("StandardScaler::fit: empty feature matrix");
  const std::size_t cols = features.cols();
  mean_.assign(cols, 0.0);
  stddev_.assign(cols, 0.0);
  const auto n = static_cast<double>(features.rows());
  for (std::size_t r = 0; r < features.rows(); ++r)
    for (std::size_t c = 0; c < cols; ++c) mean_[c] += features(r, c);
  for (double& m : mean_) m /= n;
  for (std::size_t r = 0; r < features.rows(); ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      const double d = features(r, c) - mean_[c];
      stddev_[c] += d * d;
    }
  for (double& s : stddev_) {
    s = std::sqrt(s / n);
    if (s < 1e-12) s = 1.0;  // constant column
  }
}

nn::Matrix StandardScaler::transform(const nn::Matrix& features) const {
  if (!fitted())
    throw std::logic_error("StandardScaler::transform: not fitted");
  if (features.cols() != mean_.size())
    throw std::invalid_argument("StandardScaler::transform: width mismatch");
  nn::Matrix out = features;
  for (std::size_t r = 0; r < out.rows(); ++r)
    for (std::size_t c = 0; c < out.cols(); ++c)
      out(r, c) = (out(r, c) - mean_[c]) / stddev_[c];
  return out;
}

void StandardScaler::save(util::BinaryWriter& writer) const {
  writer.tag("SCLR");
  writer.f64_vector(mean_);
  writer.f64_vector(stddev_);
}

StandardScaler StandardScaler::load(util::BinaryReader& reader) {
  reader.expect_tag("SCLR");
  StandardScaler scaler;
  scaler.mean_ = reader.f64_vector();
  scaler.stddev_ = reader.f64_vector();
  if (scaler.mean_.size() != scaler.stddev_.size())
    throw std::runtime_error("StandardScaler::load: corrupted record");
  return scaler;
}

}  // namespace fs::ml
