#include "ml/split.h"

#include <algorithm>
#include <stdexcept>

namespace fs::ml {

SplitIndices stratified_split(const std::vector<int>& labels,
                              double train_fraction, util::Rng& rng) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0)
    throw std::invalid_argument(
        "stratified_split: train_fraction must be in (0, 1)");
  std::vector<std::size_t> positives, negatives;
  for (std::size_t i = 0; i < labels.size(); ++i)
    (labels[i] != 0 ? positives : negatives).push_back(i);
  rng.shuffle(positives);
  rng.shuffle(negatives);

  SplitIndices out;
  auto divide = [&](std::vector<std::size_t>& pool) {
    // Clamp the cut so any pool of >= 2 keeps at least one member on each
    // side — a class silently absent from train or test breaks downstream
    // stratification (tiny odd pools used to lose a whole class).
    auto cut = static_cast<std::size_t>(
        train_fraction * static_cast<double>(pool.size()));
    if (pool.size() >= 2)
      cut = std::clamp<std::size_t>(cut, 1, pool.size() - 1);
    else
      cut = std::min<std::size_t>(cut, pool.size());
    out.train.insert(out.train.end(), pool.begin(), pool.begin() + cut);
    out.test.insert(out.test.end(), pool.begin() + cut, pool.end());
  };
  divide(positives);
  divide(negatives);
  rng.shuffle(out.train);
  rng.shuffle(out.test);
  return out;
}

}  // namespace fs::ml
