#include "ml/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace fs::ml {

Confusion confusion(const std::vector<int>& truth,
                    const std::vector<int>& predicted) {
  if (truth.size() != predicted.size())
    throw std::invalid_argument("confusion: size mismatch");
  Confusion c;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const bool t = truth[i] != 0;
    const bool p = predicted[i] != 0;
    if (t && p) ++c.tp;
    else if (!t && p) ++c.fp;
    else if (t && !p) ++c.fn;
    else ++c.tn;
  }
  return c;
}

Prf prf(const Confusion& c) {
  Prf out;
  if (c.tp + c.fp > 0)
    out.precision = static_cast<double>(c.tp) /
                    static_cast<double>(c.tp + c.fp);
  if (c.tp + c.fn > 0)
    out.recall = static_cast<double>(c.tp) / static_cast<double>(c.tp + c.fn);
  if (out.precision + out.recall > 0.0)
    out.f1 = 2.0 * out.precision * out.recall /
             (out.precision + out.recall);
  return out;
}

Prf prf(const std::vector<int>& truth, const std::vector<int>& predicted) {
  return prf(confusion(truth, predicted));
}

double accuracy(const Confusion& c) {
  const std::size_t total = c.total();
  if (total == 0) return 0.0;
  return static_cast<double>(c.tp + c.tn) / static_cast<double>(total);
}

std::vector<int> threshold(const std::vector<double>& probabilities,
                           double cutoff) {
  std::vector<int> out(probabilities.size());
  for (std::size_t i = 0; i < probabilities.size(); ++i)
    out[i] = probabilities[i] >= cutoff ? 1 : 0;
  return out;
}

TunedThreshold tune_f1_threshold(const std::vector<double>& scores,
                              const std::vector<int>& labels) {
  if (scores.size() != labels.size())
    throw std::invalid_argument("tune_threshold: size mismatch");
  if (scores.empty())
    throw std::invalid_argument("tune_threshold: empty scores");

  // Sweep every distinct score as a candidate cut; O(n log n + n * k) with
  // k distinct values — small for our baselines.
  std::vector<std::pair<double, int>> sorted(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i)
    sorted[i] = {scores[i], labels[i]};
  std::sort(sorted.begin(), sorted.end());

  const std::size_t total_pos =
      static_cast<std::size_t>(std::count_if(labels.begin(),
                                             labels.end(),
                                             [](int y) { return y != 0; }));

  TunedThreshold best;
  best.threshold = sorted.front().first;  // predict-all-positive fallback

  // Walking the sorted scores left to right: everything at or above the
  // cut is predicted positive.
  std::size_t pos_below = 0;  // positives strictly below the cut
  std::size_t below = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i == 0 || sorted[i].first != sorted[i - 1].first) {
      const std::size_t predicted_pos = sorted.size() - below;
      const std::size_t tp = total_pos - pos_below;
      if (predicted_pos > 0 && total_pos > 0) {
        const double precision = static_cast<double>(tp) /
                                 static_cast<double>(predicted_pos);
        const double recall =
            static_cast<double>(tp) / static_cast<double>(total_pos);
        const double f1 = precision + recall > 0.0
                              ? 2.0 * precision * recall /
                                    (precision + recall)
                              : 0.0;
        if (f1 > best.train_f1) {
          best.train_f1 = f1;
          best.threshold = sorted[i].first;
        }
      }
    }
    ++below;
    if (sorted[i].second != 0) ++pos_below;
  }
  return best;
}


double auc(const std::vector<int>& truth, const std::vector<double>& scores) {
  if (truth.size() != scores.size())
    throw std::invalid_argument("auc: size mismatch");
  const std::size_t n = truth.size();
  std::size_t positives = 0;
  for (int y : truth) positives += y != 0;
  const std::size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });

  // Sum of positive ranks with average ranks across tied scores.
  double positive_rank_sum = 0.0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    std::size_t tied_positives = 0;
    while (j < n && scores[order[j]] == scores[order[i]]) {
      tied_positives += truth[order[j]] != 0;
      ++j;
    }
    // 1-based ranks i+1 .. j share the average rank (i + j + 1) / 2.
    positive_rank_sum += static_cast<double>(tied_positives) *
                         (static_cast<double>(i + j + 1) / 2.0);
    i = j;
  }
  const double p = static_cast<double>(positives);
  return (positive_rank_sum - p * (p + 1.0) / 2.0) /
         (p * static_cast<double>(negatives));
}

double precision_at_k(const std::vector<int>& truth,
                      const std::vector<double>& scores, std::size_t k) {
  if (truth.size() != scores.size())
    throw std::invalid_argument("precision_at_k: size mismatch");
  k = std::min(k, truth.size());
  if (k == 0) return 0.0;
  std::vector<std::size_t> order(truth.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  std::size_t hits = 0;
  for (std::size_t i = 0; i < k; ++i) hits += truth[order[i]] != 0;
  return static_cast<double>(hits) / static_cast<double>(k);
}

}  // namespace fs::ml
