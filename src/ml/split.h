// Train/test splitting helpers (the paper uses 70 % / 30 %).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace fs::ml {

struct SplitIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Stratified split: preserves the label ratio in both parts.
/// `train_fraction` in (0, 1).
SplitIndices stratified_split(const std::vector<int>& labels,
                              double train_fraction, util::Rng& rng);

/// Selects from `values` the entries at `indices`.
template <typename T>
std::vector<T> take(const std::vector<T>& values,
                    const std::vector<std::size_t>& indices) {
  std::vector<T> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) out.push_back(values.at(i));
  return out;
}

}  // namespace fs::ml
