#include "ml/knn.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"
#include "par/par.h"

namespace fs::ml {

KnnClassifier::KnnClassifier(std::size_t k) : k_(k) {
  if (k == 0) throw std::invalid_argument("KnnClassifier: k must be > 0");
}

void KnnClassifier::fit(nn::Matrix features, std::vector<int> labels) {
  if (features.rows() != labels.size())
    throw std::invalid_argument("KnnClassifier::fit: size mismatch");
  if (features.rows() == 0)
    throw std::invalid_argument("KnnClassifier::fit: empty training set");
  features_ = std::move(features);
  labels_ = std::move(labels);
}

double KnnClassifier::predict_proba(const double* query) const {
  if (labels_.empty())
    throw std::logic_error("KnnClassifier: predict before fit");
  const std::size_t n = features_.rows();
  const std::size_t dim = features_.cols();
  const std::size_t k = std::min(k_, n);

  // Max-heap over the best-k (distance, index) pairs, kept in a flat array.
  std::vector<std::pair<double, std::size_t>> best;
  best.reserve(k + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = features_.row(i);
    double dist = 0.0;
    for (std::size_t c = 0; c < dim; ++c) {
      const double d = row[c] - query[c];
      dist += d * d;
    }
    // Early exit: skip if worse than current k-th best.
    if (best.size() == k && dist >= best.front().first) continue;
    best.emplace_back(dist, i);
    std::push_heap(best.begin(), best.end());
    if (best.size() > k) {
      std::pop_heap(best.begin(), best.end());
      best.pop_back();
    }
  }

  std::size_t positives = 0;
  for (const auto& [dist, idx] : best) positives += labels_[idx] != 0;
  return static_cast<double>(positives) / static_cast<double>(best.size());
}

std::vector<double> KnnClassifier::predict_proba(
    const nn::Matrix& queries, runtime::ExecutionContext* context) const {
  if (queries.cols() != features_.cols())
    throw std::invalid_argument("KnnClassifier: query width mismatch");
  std::vector<double> out(queries.rows());
  // One linear scan per query, queries fanned out across the pool; each
  // query's heap is chunk-local, so slots never contend.
  par::ParallelOptions popts;
  popts.context = context;
  popts.what = "ml.knn.batch";
  popts.grain = par::grain_for(features_.rows() * features_.cols());
  // KNN seeds G0: without it there is nothing to degrade to, so an expired
  // deadline must not abort the batch — the pipeline truncates at the next
  // phase boundary instead. Cancellation (SIGINT) still aborts per chunk.
  popts.hard_deadline = false;
  par::parallel_for(queries.rows(), popts, [&](std::size_t r) {
    out[r] = predict_proba(queries.row(r));
  });
  // One batched add per matrix call, not one per query row.
  obs::metrics()
      .counter("ml.knn.queries_total", {}, "KNN probability queries answered")
      .add(queries.rows());
  return out;
}

std::vector<int> KnnClassifier::predict(const nn::Matrix& queries,
                                        runtime::ExecutionContext* context)
    const {
  const std::vector<double> probs = predict_proba(queries, context);
  std::vector<int> out(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) out[i] = probs[i] >= 0.5;
  return out;
}

void KnnClassifier::save(util::BinaryWriter& writer) const {
  writer.tag("KNN0");
  writer.u64(k_);
  writer.u64(features_.rows());
  writer.u64(features_.cols());
  writer.f64_vector(std::vector<double>(
      features_.data(), features_.data() + features_.size()));
  writer.i32_vector(labels_);
}

KnnClassifier KnnClassifier::load(util::BinaryReader& reader) {
  reader.expect_tag("KNN0");
  KnnClassifier knn(reader.u64());
  const std::size_t rows = reader.u64();
  const std::size_t cols = reader.u64();
  const std::vector<double> flat = reader.f64_vector();
  std::vector<int> labels = reader.i32_vector();
  if (flat.size() != rows * cols || labels.size() != rows)
    throw std::runtime_error("KnnClassifier::load: corrupted record");
  nn::Matrix features(rows, cols);
  std::copy(flat.begin(), flat.end(), features.data());
  knn.fit(std::move(features), std::move(labels));
  return knn;
}

}  // namespace fs::ml
