#include "ml/knn.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "kern/kern.h"
#include "obs/metrics.h"
#include "par/par.h"

namespace fs::ml {

namespace {

/// Relative slack on the prune test: the int8 bound underestimates by
/// construction, but it is accumulated in f32 from an f32-cast query, so
/// a row is only discarded when its bound clears the k-th exact distance
/// by more than this margin. Matches the admissibility contract verified
/// in kern_test (bound <= exact * (1 + slack)).
constexpr double kLbSlack = 1e-3;

}  // namespace

KnnClassifier::KnnClassifier(std::size_t k) : k_(k) {
  if (k == 0) throw std::invalid_argument("KnnClassifier: k must be > 0");
}

void KnnClassifier::fit(nn::Matrix features, std::vector<int> labels) {
  if (features.rows() != labels.size())
    throw std::invalid_argument("KnnClassifier::fit: size mismatch");
  if (features.rows() == 0)
    throw std::invalid_argument("KnnClassifier::fit: empty training set");
  features_ = std::move(features);
  labels_ = std::move(labels);
  quant_stats_ = {};
  if (quantize_) build_quant_index();
}

void KnnClassifier::set_quantize(bool enabled) {
  quantize_ = enabled;
  if (enabled) {
    if (!labels_.empty() && codes_.empty()) build_quant_index();
  } else {
    codes_.clear();
    scale_.clear();
    offset_.clear();
    half_scale_.clear();
  }
}

void KnnClassifier::build_quant_index() {
  const std::size_t n = features_.rows();
  const std::size_t dim = features_.cols();
  scale_.assign(dim, 1.0f);
  offset_.assign(dim, 0.0f);
  half_scale_.assign(dim, 0.0f);
  for (std::size_t c = 0; c < dim; ++c) {
    double lo = features_(0, c);
    double hi = lo;
    for (std::size_t i = 1; i < n; ++i) {
      lo = std::min(lo, features_(i, c));
      hi = std::max(hi, features_(i, c));
    }
    offset_[c] = static_cast<float>(lo);
    if (hi > lo) {
      scale_[c] = static_cast<float>((hi - lo) / 255.0);
      half_scale_[c] = 0.5f * scale_[c];
    }
    // Degenerate dimension (all rows equal): codes stay 0, the decoded
    // value is exactly offset_, and half_scale_ = 0 keeps the bound tight.
  }
  codes_.assign(n * dim, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = features_.row(i);
    std::uint8_t* code = codes_.data() + i * dim;
    for (std::size_t c = 0; c < dim; ++c) {
      // Quantize against the f32-rounded scale/offset the kernel will
      // decode with, so |row - decoded| <= scale/2 up to f32 ulps.
      const double s = static_cast<double>(scale_[c]);
      const double q = std::round((row[c] - static_cast<double>(offset_[c])) / s);
      code[c] = static_cast<std::uint8_t>(std::clamp(q, 0.0, 255.0));
    }
  }
}

double KnnClassifier::predict_proba(const double* query) const {
  if (labels_.empty())
    throw std::logic_error("KnnClassifier: predict before fit");
  if (quantize_) return quantized_proba(query, nullptr);
  const std::size_t n = features_.rows();
  const std::size_t dim = features_.cols();
  const std::size_t k = std::min(k_, n);

  // Max-heap over the best-k (distance, index) pairs, kept in a flat array.
  std::vector<std::pair<double, std::size_t>> best;
  best.reserve(k + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = features_.row(i);
    double dist = 0.0;
    for (std::size_t c = 0; c < dim; ++c) {
      const double d = row[c] - query[c];
      dist += d * d;
    }
    // Early exit: skip if worse than current k-th best.
    if (best.size() == k && dist >= best.front().first) continue;
    best.emplace_back(dist, i);
    std::push_heap(best.begin(), best.end());
    if (best.size() > k) {
      std::pop_heap(best.begin(), best.end());
      best.pop_back();
    }
  }

  std::size_t positives = 0;
  for (const auto& [dist, idx] : best) positives += labels_[idx] != 0;
  return static_cast<double>(positives) / static_cast<double>(best.size());
}

double KnnClassifier::quantized_proba(const double* query,
                                      std::uint64_t* exact_evals) const {
  const std::size_t n = features_.rows();
  const std::size_t dim = features_.cols();
  const std::size_t k = std::min(k_, n);
  std::uint64_t evals = 0;

  const auto exact = [&](std::size_t i) {
    // Same expression, same order as the full-precision scan — survivors
    // get bit-identical distances.
    const double* row = features_.row(i);
    double dist = 0.0;
    for (std::size_t c = 0; c < dim; ++c) {
      const double d = row[c] - query[c];
      dist += d * d;
    }
    return dist;
  };

  // Per-thread scratch: one query runs per fs::par chunk, so reusing the
  // buffers across the batch is race-free and allocation-free.
  thread_local std::vector<float> qf;
  thread_local std::vector<float> lb;
  thread_local std::vector<std::size_t> seeds;
  qf.resize(dim);
  for (std::size_t c = 0; c < dim; ++c) qf[c] = static_cast<float>(query[c]);
  lb.resize(n);
  kern::knn_lower_bounds(codes_.data(), n, dim, qf.data(), scale_.data(),
                         offset_.data(), half_scale_.data(), lb.data());

  // Seed the heap with the k tightest lower bounds evaluated exactly, so
  // the prune threshold starts close to its final value.
  seeds.resize(n);
  std::iota(seeds.begin(), seeds.end(), std::size_t{0});
  std::nth_element(seeds.begin(), seeds.begin() + (k - 1), seeds.end(),
                   [&](std::size_t a, std::size_t b) {
                     return lb[a] != lb[b] ? lb[a] < lb[b] : a < b;
                   });
  seeds.resize(k);
  std::sort(seeds.begin(), seeds.end());

  // Max-heap over (distance, index) pairs: the lexicographic order makes
  // the kept set canonical, reproducing the training-order tie rule of
  // the full-precision scan.
  std::vector<std::pair<double, std::size_t>> best;
  best.reserve(k);
  for (const std::size_t i : seeds) {
    best.emplace_back(exact(i), i);
    ++evals;
    std::push_heap(best.begin(), best.end());
  }

  double threshold = best.front().first * (1.0 + kLbSlack);
  for (std::size_t i = 0; i < n; ++i) {
    if (static_cast<double>(lb[i]) > threshold) continue;  // pruned
    if (std::binary_search(seeds.begin(), seeds.end(), i)) continue;
    const std::pair<double, std::size_t> cand(exact(i), i);
    ++evals;
    if (cand < best.front()) {
      std::pop_heap(best.begin(), best.end());
      best.back() = cand;
      std::push_heap(best.begin(), best.end());
      threshold = best.front().first * (1.0 + kLbSlack);
    }
  }

  if (exact_evals != nullptr) *exact_evals = evals;
  std::size_t positives = 0;
  for (const auto& [dist, idx] : best) positives += labels_[idx] != 0;
  return static_cast<double>(positives) / static_cast<double>(best.size());
}

std::vector<double> KnnClassifier::predict_proba(
    const nn::Matrix& queries, runtime::ExecutionContext* context) const {
  if (labels_.empty())
    throw std::logic_error("KnnClassifier: predict before fit");
  if (queries.cols() != features_.cols())
    throw std::invalid_argument("KnnClassifier: query width mismatch");
  std::vector<double> out(queries.rows());
  // Per-row exact-eval counts land in private slots and are summed after
  // the join — deterministic totals, no atomics on the hot path.
  std::vector<std::uint64_t> evals;
  if (quantize_) evals.assign(queries.rows(), 0);
  // One linear scan per query, queries fanned out across the pool; each
  // query's heap is chunk-local, so slots never contend.
  par::ParallelOptions popts;
  popts.context = context;
  popts.what = "ml.knn.batch";
  popts.grain = par::grain_for(features_.rows() * features_.cols());
  // KNN seeds G0: without it there is nothing to degrade to, so an expired
  // deadline must not abort the batch — the pipeline truncates at the next
  // phase boundary instead. Cancellation (SIGINT) still aborts per chunk.
  popts.hard_deadline = false;
  par::parallel_for(queries.rows(), popts, [&](std::size_t r) {
    if (quantize_)
      out[r] = quantized_proba(queries.row(r), &evals[r]);
    else
      out[r] = predict_proba(queries.row(r));
  });
  // One batched add per matrix call, not one per query row.
  obs::metrics()
      .counter("ml.knn.queries_total", {}, "KNN probability queries answered")
      .add(queries.rows());
  if (quantize_) {
    const std::uint64_t total =
        std::accumulate(evals.begin(), evals.end(), std::uint64_t{0});
    const std::uint64_t scanned =
        static_cast<std::uint64_t>(queries.rows()) * features_.rows();
    quant_stats_.rows_scanned += scanned;
    quant_stats_.exact_evals += total;
    obs::metrics()
        .counter("ml.knn.quant.rows_scanned_total", {},
                 "candidate rows considered by the quantized KNN path")
        .add(scanned);
    obs::metrics()
        .counter("ml.knn.quant.exact_evals_total", {},
                 "rows surviving the int8 lower bound to exact rerank")
        .add(total);
  }
  return out;
}

std::vector<int> KnnClassifier::predict(const nn::Matrix& queries,
                                        runtime::ExecutionContext* context)
    const {
  const std::vector<double> probs = predict_proba(queries, context);
  std::vector<int> out(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) out[i] = probs[i] >= 0.5;
  return out;
}

void KnnClassifier::save(util::BinaryWriter& writer) const {
  writer.tag("KNN0");
  writer.u64(k_);
  writer.u64(features_.rows());
  writer.u64(features_.cols());
  writer.f64_vector(std::vector<double>(
      features_.data(), features_.data() + features_.size()));
  writer.i32_vector(labels_);
}

KnnClassifier KnnClassifier::load(util::BinaryReader& reader) {
  reader.expect_tag("KNN0");
  KnnClassifier knn(reader.u64());
  const std::size_t rows = reader.u64();
  const std::size_t cols = reader.u64();
  const std::vector<double> flat = reader.f64_vector();
  std::vector<int> labels = reader.i32_vector();
  if (flat.size() != rows * cols || labels.size() != rows)
    throw std::runtime_error("KnnClassifier::load: corrupted record");
  nn::Matrix features(rows, cols);
  std::copy(flat.begin(), flat.end(), features.data());
  knn.fit(std::move(features), std::move(labels));
  return knn;
}

}  // namespace fs::ml
