#include "ml/svm.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/par.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace fs::ml {

namespace {

double dot(const double* x, const double* y, std::size_t dim) {
  double acc = 0.0;
  for (std::size_t i = 0; i < dim; ++i) acc += x[i] * y[i];
  return acc;
}

/// Per-row squared norms — the cached half of the RBF fast path.
std::vector<double> row_squared_norms(const nn::Matrix& m) {
  std::vector<double> norms(m.rows());
  par::ParallelOptions popts;
  popts.what = "ml.svm.norms";
  popts.grain = par::grain_for(m.cols());
  par::parallel_for(m.rows(), popts, [&](std::size_t i) {
    norms[i] = dot(m.row(i), m.row(i), m.cols());
  });
  return norms;
}

}  // namespace

SvmClassifier::SvmClassifier(const SvmConfig& config) : config_(config) {
  if (config.c <= 0.0)
    throw std::invalid_argument("SvmClassifier: C must be > 0");
}

double SvmClassifier::kernel_to_support(std::size_t sv, const double* query,
                                        double query_norm) const {
  const double dist = support_norms_[sv] + query_norm -
                      2.0 * dot(support_.row(sv), query, support_.cols());
  return std::exp(-gamma_ * (dist > 0.0 ? dist : 0.0));
}

void SvmClassifier::cache_support_norms() {
  support_norms_ = row_squared_norms(support_);
}

void SvmClassifier::fit(const nn::Matrix& features,
                        const std::vector<int>& labels) {
  const std::size_t n = features.rows();
  if (n != labels.size())
    throw std::invalid_argument("SvmClassifier::fit: size mismatch");
  if (n == 0) throw std::invalid_argument("SvmClassifier::fit: empty set");
  if (n > config_.max_train_rows)
    throw std::invalid_argument(
        "SvmClassifier::fit: training set exceeds max_train_rows; "
        "subsample before fitting");
  obs::Span fit_span("ml.svm.fit");
  fit_span.arg("n", static_cast<double>(n));
  const std::size_t dim = features.cols();

  // A single NaN poisons the whole kernel matrix, so the SMO loop would
  // "converge" on garbage; fail loudly instead and let the caller back off.
  if (!std::isfinite(util::failpoint::corrupt("ml.svm.nan", 0.0)))
    throw NumericError("SvmClassifier::fit: injected non-finite feature");
  for (std::size_t i = 0; i < features.size(); ++i)
    if (!std::isfinite(features.data()[i]))
      throw NumericError(
          "SvmClassifier::fit: non-finite feature at flat index " +
          std::to_string(i));

  // Labels to {-1, +1}.
  std::vector<double> y(n);
  bool has_pos = false, has_neg = false;
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = labels[i] != 0 ? 1.0 : -1.0;
    (labels[i] != 0 ? has_pos : has_neg) = true;
  }
  if (!has_pos || !has_neg)
    throw std::invalid_argument("SvmClassifier::fit: need both classes");

  // Gamma "scale": 1 / (dim * mean feature variance). Per-column variances
  // land in disjoint slots; the cross-column sum stays sequential in column
  // order so the float association matches any thread count.
  if (config_.gamma > 0.0) {
    gamma_ = config_.gamma;
  } else {
    std::vector<double> col_var(dim);
    par::ParallelOptions vopts;
    vopts.context = config_.context;
    vopts.what = "ml.svm.gamma";
    vopts.grain = par::grain_for(2 * n);
    par::parallel_for(dim, vopts, [&](std::size_t c) {
      double mean = 0.0, sq = 0.0;
      for (std::size_t r = 0; r < n; ++r) mean += features(r, c);
      mean /= static_cast<double>(n);
      for (std::size_t r = 0; r < n; ++r) {
        const double d = features(r, c) - mean;
        sq += d * d;
      }
      col_var[c] = sq / static_cast<double>(n);
    });
    double mean_var = 0.0;
    for (std::size_t c = 0; c < dim; ++c) mean_var += col_var[c];
    mean_var /= static_cast<double>(dim);
    gamma_ = mean_var > 1e-12 ? 1.0 / (static_cast<double>(dim) * mean_var)
                              : 1.0 / static_cast<double>(dim);
  }

  // Precomputed kernel matrix (symmetric; memory guarded by max_train_rows
  // and charged against the run's memory budget when governed). Cached row
  // norms turn each RBF entry into one dot product; rows fan out over the
  // pool filling the upper triangle, then a mirror pass copies it down.
  const runtime::MemoryCharge kernel_charge(
      config_.context, n * n * sizeof(double), "ml.svm.kernel");
  const std::vector<double> norms = row_squared_norms(features);
  nn::Matrix K(n, n);
  par::ParallelOptions kopts;
  kopts.context = config_.context;
  kopts.what = "ml.svm.kernel";
  kopts.grain = par::grain_for(n * dim / 2 + 1);
  par::parallel_for(n, kopts, [&](std::size_t i) {
    K(i, i) = 1.0;
    const double* xi = features.row(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dist =
          norms[i] + norms[j] - 2.0 * dot(xi, features.row(j), dim);
      K(i, j) = std::exp(-gamma_ * (dist > 0.0 ? dist : 0.0));
    }
  });
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) K(j, i) = K(i, j);

  std::vector<double> alpha(n, 0.0);
  double b = 0.0;
  util::Rng rng(config_.seed);

  auto decision_i = [&](std::size_t i) {
    double f = b;
    const double* krow = K.row(i);
    for (std::size_t j = 0; j < n; ++j)
      if (alpha[j] != 0.0) f += alpha[j] * y[j] * krow[j];
    return f;
  };

  const double C = config_.c;
  const double tol = config_.tolerance;
  int passes = 0;
  int iterations = 0;
  std::size_t total_alpha_updates = 0;
  std::size_t total_sweeps = 0;
  while (passes < config_.max_passes &&
         iterations++ < config_.max_iterations) {
    if (config_.context != nullptr) {
      config_.context->throw_if_cancelled("ml.svm.fit");
      // Past the deadline the current alphas are kept: SMO's intermediate
      // state is a feasible (just less converged) dual solution.
      if (config_.context->deadline_expired()) break;
    }
    obs::Span pass_span("ml.svm.pass");
    int changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double e_i = decision_i(i) - y[i];
      const bool violates = (y[i] * e_i < -tol && alpha[i] < C) ||
                            (y[i] * e_i > tol && alpha[i] > 0.0);
      if (!violates) continue;

      std::size_t j = rng.index(n - 1);
      if (j >= i) ++j;  // j != i, uniform over the rest
      const double e_j = decision_i(j) - y[j];

      const double alpha_i_old = alpha[i];
      const double alpha_j_old = alpha[j];

      double lo, hi;
      if (y[i] != y[j]) {
        lo = std::max(0.0, alpha[j] - alpha[i]);
        hi = std::min(C, C + alpha[j] - alpha[i]);
      } else {
        lo = std::max(0.0, alpha[i] + alpha[j] - C);
        hi = std::min(C, alpha[i] + alpha[j]);
      }
      if (lo >= hi) continue;

      const double eta = 2.0 * K(i, j) - K(i, i) - K(j, j);
      if (eta >= 0.0) continue;

      double alpha_j_new = alpha_j_old - y[j] * (e_i - e_j) / eta;
      alpha_j_new = std::clamp(alpha_j_new, lo, hi);
      if (std::abs(alpha_j_new - alpha_j_old) < 1e-5) continue;

      const double alpha_i_new =
          alpha_i_old + y[i] * y[j] * (alpha_j_old - alpha_j_new);
      alpha[i] = alpha_i_new;
      alpha[j] = alpha_j_new;

      const double b1 = b - e_i - y[i] * (alpha_i_new - alpha_i_old) * K(i, i) -
                        y[j] * (alpha_j_new - alpha_j_old) * K(i, j);
      const double b2 = b - e_j - y[i] * (alpha_i_new - alpha_i_old) * K(i, j) -
                        y[j] * (alpha_j_new - alpha_j_old) * K(j, j);
      if (alpha_i_new > 0.0 && alpha_i_new < C) b = b1;
      else if (alpha_j_new > 0.0 && alpha_j_new < C) b = b2;
      else b = (b1 + b2) / 2.0;

      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
    pass_span.arg("changed", static_cast<double>(changed));
    total_alpha_updates += static_cast<std::size_t>(changed);
    ++total_sweeps;
  }
  // Batched at fit exit: the sweep loop stays free of registry lookups.
  obs::metrics()
      .counter("ml.svm.passes_total", {}, "SMO sweeps over the training set")
      .add(total_sweeps);
  obs::metrics()
      .counter("ml.svm.alpha_updates_total", {},
               "SMO alpha-pair updates applied")
      .add(total_alpha_updates);

  // Keep only support vectors.
  std::vector<std::size_t> sv;
  for (std::size_t i = 0; i < n; ++i)
    if (alpha[i] > 1e-8) sv.push_back(i);
  support_ = features.gather_rows(sv);
  alpha_y_.resize(sv.size());
  for (std::size_t s = 0; s < sv.size(); ++s)
    alpha_y_[s] = alpha[sv[s]] * y[sv[s]];
  bias_ = b;
  cache_support_norms();
  trained_ = true;
}

double SvmClassifier::decision(const double* query) const {
  if (!trained_) throw std::logic_error("SvmClassifier: predict before fit");
  double f = bias_;
  const std::size_t dim = support_.cols();
  const double query_norm = dot(query, query, dim);
  for (std::size_t s = 0; s < support_.rows(); ++s)
    f += alpha_y_[s] * kernel_to_support(s, query, query_norm);
  return f;
}

std::vector<double> SvmClassifier::decision(const nn::Matrix& queries) const {
  if (queries.cols() != support_.cols())
    throw std::invalid_argument("SvmClassifier: query width mismatch");
  std::vector<double> out(queries.rows());
  // Full-universe evaluation is the phase-2 hot path: queries fan out over
  // the pool, each row scanning every support vector independently.
  par::ParallelOptions popts;
  popts.context = config_.context;
  popts.what = "ml.svm.decision";
  popts.grain = par::grain_for(support_.rows() * support_.cols() + 1);
  par::parallel_for(queries.rows(), popts, [&](std::size_t r) {
    out[r] = decision(queries.row(r));
  });
  obs::metrics()
      .counter("ml.svm.decisions_total", {}, "SVM decision-function queries")
      .add(queries.rows());
  return out;
}

std::vector<int> SvmClassifier::predict(const nn::Matrix& queries) const {
  const std::vector<double> d = decision(queries);
  std::vector<int> out(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) out[i] = d[i] > 0.0;
  return out;
}

std::vector<double> SvmClassifier::predict_proba(
    const nn::Matrix& queries) const {
  const std::vector<double> d = decision(queries);
  std::vector<double> out(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double z =
        calibrated_ ? -(platt_a_ * d[i] + platt_b_) : d[i];
    out[i] = 1.0 / (1.0 + std::exp(-z));
  }
  return out;
}

void SvmClassifier::calibrate(const nn::Matrix& features,
                              const std::vector<int>& labels) {
  const std::vector<double> f = decision(features);
  if (f.size() != labels.size())
    throw std::invalid_argument("SvmClassifier::calibrate: size mismatch");
  const std::size_t n = f.size();

  // Target probabilities with Platt's smoothing priors.
  std::size_t n_pos = 0;
  for (int y : labels) n_pos += (y != 0);
  const std::size_t n_neg = n - n_pos;
  if (n_pos == 0 || n_neg == 0)
    throw std::invalid_argument(
        "SvmClassifier::calibrate: need both classes");
  const double hi = (static_cast<double>(n_pos) + 1.0) /
                    (static_cast<double>(n_pos) + 2.0);
  const double lo = 1.0 / (static_cast<double>(n_neg) + 2.0);
  std::vector<double> target(n);
  for (std::size_t i = 0; i < n; ++i) target[i] = labels[i] ? hi : lo;

  // Newton iterations on the two-parameter cross-entropy (Lin et al. '07).
  double a = 0.0;
  double b = std::log((static_cast<double>(n_neg) + 1.0) /
                      (static_cast<double>(n_pos) + 1.0));
  const double sigma = 1e-12;  // Hessian ridge
  for (int iter = 0; iter < 100; ++iter) {
    double g_a = 0.0, g_b = 0.0, h_aa = sigma, h_ab = 0.0, h_bb = sigma;
    for (std::size_t i = 0; i < n; ++i) {
      const double z = a * f[i] + b;
      double p, q;  // p = P(y=1), q = 1 - p, computed stably
      if (z >= 0) {
        const double e = std::exp(-z);
        p = e / (1.0 + e);
        q = 1.0 / (1.0 + e);
      } else {
        const double e = std::exp(z);
        p = 1.0 / (1.0 + e);
        q = e / (1.0 + e);
      }
      const double d1 = target[i] - p;
      g_a += f[i] * d1;
      g_b += d1;
      const double d2 = p * q;
      h_aa += f[i] * f[i] * d2;
      h_ab += f[i] * d2;
      h_bb += d2;
    }
    if (std::abs(g_a) < 1e-8 && std::abs(g_b) < 1e-8) break;
    // g = gradient of the NEGATIVE log-likelihood wrt (a, b); h is its
    // (ridged) Hessian. Newton step: (a, b) -= H^{-1} g.
    const double det = h_aa * h_bb - h_ab * h_ab;
    const double da = (h_bb * g_a - h_ab * g_b) / det;
    const double db = (h_aa * g_b - h_ab * g_a) / det;
    a -= da;
    b -= db;
    if (std::abs(da) < 1e-10 && std::abs(db) < 1e-10) break;
  }
  platt_a_ = a;
  platt_b_ = b;
  calibrated_ = true;
}

void SvmClassifier::save(util::BinaryWriter& writer) const {
  writer.tag("SVM0");
  writer.f64(gamma_);
  writer.f64(bias_);
  writer.u64(support_.rows());
  writer.u64(support_.cols());
  writer.f64_vector(std::vector<double>(
      support_.data(), support_.data() + support_.size()));
  writer.f64_vector(alpha_y_);
  writer.u64(trained_ ? 1 : 0);
  writer.u64(calibrated_ ? 1 : 0);
  writer.f64(platt_a_);
  writer.f64(platt_b_);
}

SvmClassifier SvmClassifier::load(util::BinaryReader& reader) {
  reader.expect_tag("SVM0");
  SvmClassifier svm;
  svm.gamma_ = reader.f64();
  svm.bias_ = reader.f64();
  const std::size_t rows = reader.u64();
  const std::size_t cols = reader.u64();
  const std::vector<double> flat = reader.f64_vector();
  svm.alpha_y_ = reader.f64_vector();
  if (flat.size() != rows * cols || svm.alpha_y_.size() != rows)
    throw std::runtime_error("SvmClassifier::load: corrupted record");
  svm.support_ = nn::Matrix(rows, cols);
  std::copy(flat.begin(), flat.end(), svm.support_.data());
  svm.trained_ = reader.u64() != 0;
  svm.calibrated_ = reader.u64() != 0;
  svm.platt_a_ = reader.f64();
  svm.platt_b_ = reader.f64();
  svm.cache_support_norms();  // derived, never serialized
  return svm;
}

}  // namespace fs::ml
