// L2-regularized logistic regression trained by gradient descent.
//
// Serves as a drop-in alternative for the paper's phase-2 classifier C'
// (the paper states its approach "is independent from the type of ...
// classifiers used"); the ablation bench compares it with the RBF-SVM.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/matrix.h"

namespace fs::ml {

struct LogisticConfig {
  double learning_rate = 0.1;
  double l2 = 1e-4;
  int epochs = 200;
  std::uint64_t seed = 31;
};

class LogisticClassifier {
 public:
  explicit LogisticClassifier(const LogisticConfig& config = {});

  const LogisticConfig& config() const { return config_; }

  /// Trains on (already scaled) features with labels in {0, 1}.
  void fit(const nn::Matrix& features, const std::vector<int>& labels);

  /// Linear decision value w.x + b (positive -> class 1).
  double decision(const double* query) const;
  std::vector<double> decision(const nn::Matrix& queries) const;

  std::vector<int> predict(const nn::Matrix& queries) const;
  std::vector<double> predict_proba(const nn::Matrix& queries) const;

  bool trained() const { return trained_; }
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  LogisticConfig config_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  bool trained_ = false;
};

}  // namespace fs::ml
