// Column standardization (zero mean, unit variance) fitted on training
// features and applied to both splits — KNN and the RBF kernel are
// scale-sensitive.
#pragma once

#include "nn/matrix.h"
#include "util/binary_io.h"

namespace fs::ml {

class StandardScaler {
 public:
  /// Learns per-column mean and standard deviation. Constant columns get
  /// unit scale (they transform to all-zero).
  void fit(const nn::Matrix& features);

  nn::Matrix transform(const nn::Matrix& features) const;

  nn::Matrix fit_transform(const nn::Matrix& features) {
    fit(features);
    return transform(features);
  }

  bool fitted() const { return !mean_.empty(); }

  void save(util::BinaryWriter& writer) const;
  static StandardScaler load(util::BinaryReader& reader);

  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return stddev_; }

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace fs::ml
