// Sharded candidate generation and pair ownership.
//
// The cell tier of candidate generation partitions exactly by anchor grid
// (append_cell_tier_pairs' contract), so the sharded generator runs it one
// shard at a time in plan order and unions the results; the hop tier is a
// closure over *users* (the strong-co-occurrence graph ignores geometry),
// so it runs once, globally, after the merge — that is the whole boundary
// story: a pair of users who never co-occur in any cell can still enter
// the universe through hops, and no per-shard pass could see it. The final
// sort + de-duplication makes the output independent of which shard
// emitted a pair first, hence byte-identical to the monolithic generator.
//
// Ownership assigns every universe pair to exactly one shard (for
// accounting and the shard-grouped phase-1 schedule): the shard of the
// first grid in the lexicographically smaller user's cell profile, shard 0
// for users who never checked in anywhere. Every pair has exactly one
// owner, so per-shard (scored + pruned) counts sum to the universe — the
// schema-v4 perf_bench invariant.
#pragma once

#include <cstddef>
#include <vector>

#include "block/candidate_gen.h"
#include "block/cell_index.h"
#include "shard/shard_plan.h"

namespace fs::shard {

/// Per-shard execution accounting surfaced in FriendSeekerResult and
/// perf_bench's schema-v4 shard section.
struct ShardRunStats {
  std::uint32_t grid_lo = 0;
  std::uint32_t grid_hi = 0;
  std::uint64_t rows = 0;            // check-ins inside the grid range
  std::uint64_t universe_pairs = 0;  // universe pairs this shard owns
  std::uint64_t scored_pairs = 0;    // owned pairs kept for scoring
  std::uint64_t pruned_pairs = 0;    // owned pairs blocked away
  std::uint64_t cell_candidates = 0; // cell-tier pairs this shard emitted
  double wall_ms = 0.0;              // phase-1 scoring wall for the group
};

/// Sharded twin of generate_candidate_pairs: per-shard cell tiers merged in
/// plan order, one global hop tier, sort + dedupe. `stats` (when non-null,
/// sized shard_count) receives each shard's emitted cell-tier pair count.
std::vector<data::UserPair> generate_candidate_pairs_sharded(
    const block::CellIndex& index, const block::BlockingConfig& config,
    const ShardPlan& plan, std::vector<ShardRunStats>* stats = nullptr);

/// The shard owning `pair` (see file comment for the convention).
std::size_t owner_shard(const block::CellIndex& index, const ShardPlan& plan,
                        const data::UserPair& pair);

}  // namespace fs::shard
