#include "shard/sharded_candidates.h"

#include <algorithm>

#include "obs/trace.h"

namespace fs::shard {

std::vector<data::UserPair> generate_candidate_pairs_sharded(
    const block::CellIndex& index, const block::BlockingConfig& config,
    const ShardPlan& plan, std::vector<ShardRunStats>* stats) {
  obs::Span span("shard.candidates.generate");
  span.arg("shards", static_cast<double>(plan.shard_count()));
  std::vector<data::UserPair> out;
  for (std::size_t s = 0; s < plan.shard_count(); ++s) {
    const ShardRange& range = plan.shard(s);
    const std::size_t before = out.size();
    block::append_cell_tier_pairs(index, range.grid_lo, range.grid_hi,
                                  config.slot_tolerance, out);
    if (stats != nullptr && s < stats->size())
      (*stats)[s].cell_candidates = out.size() - before;
  }
  block::append_hop_tier_pairs(index, config.hop_expansion, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  span.arg("candidates", static_cast<double>(out.size()));
  return out;
}

std::size_t owner_shard(const block::CellIndex& index, const ShardPlan& plan,
                        const data::UserPair& pair) {
  const auto profile = index.cell_profile(pair.first);
  if (profile.empty()) return 0;
  const auto grid = static_cast<std::uint32_t>(
      profile.front() / index.slot_count());
  return plan.shard_of_grid(grid);
}

}  // namespace fs::shard
