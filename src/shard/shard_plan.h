// Shard planning over the quadtree spatial division.
//
// Quadtree leaves are DFS-numbered, so any contiguous grid range is a union
// of whole subtrees; a plan is a partition of [0, grid_count) into
// shard_count contiguous ranges, balanced by per-grid row weight (check-in
// counts). Because a (cell, slot)-sorted store lays a grid range out as one
// contiguous row stripe, a shard is simultaneously a subtree of the
// division, a stripe of the store file, and a slice of the occupied-cell
// list — the alignment everything in fs::shard leans on.
//
// Determinism contract: the plan is a pure function of (weights,
// shard_count). The sharded pipeline's guarantee — final-graph digest
// byte-identical to the unsharded run at any shard count — does not depend
// on the plan being balanced, only on it being a partition; balance is a
// pure wall-clock concern.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace fs::shard {

/// Half-open grid range [grid_lo, grid_hi) owned by one shard. Empty ranges
/// (grid_lo == grid_hi) are legal: more shards than grids degenerates
/// gracefully.
struct ShardRange {
  std::uint32_t grid_lo = 0;
  std::uint32_t grid_hi = 0;

  std::size_t grid_count() const { return grid_hi - grid_lo; }
  friend bool operator==(const ShardRange&, const ShardRange&) = default;
};

class ShardPlan {
 public:
  /// Greedy balanced partition: shard s ends at the first grid where the
  /// cumulative weight reaches (s+1)/shard_count of the total, so every
  /// prefix cut is within one grid's weight of ideal. `grid_weights[g]` is
  /// typically the check-in count of grid g; all-zero weights fall back to
  /// an even split by grid count.
  static ShardPlan build(std::span<const std::uint64_t> grid_weights,
                         std::size_t shard_count);

  std::size_t shard_count() const { return shards_.size(); }
  const ShardRange& shard(std::size_t s) const { return shards_.at(s); }
  const std::vector<ShardRange>& shards() const { return shards_; }

  /// Index of the shard owning `grid` (binary search over range bounds).
  std::size_t shard_of_grid(std::uint32_t grid) const;

 private:
  std::vector<ShardRange> shards_;
};

}  // namespace fs::shard
