#include "shard/shard_plan.h"

#include <algorithm>
#include <stdexcept>

namespace fs::shard {

ShardPlan ShardPlan::build(std::span<const std::uint64_t> grid_weights,
                           std::size_t shard_count) {
  if (shard_count == 0)
    throw std::invalid_argument("ShardPlan: shard_count must be >= 1");
  const auto grid_count = static_cast<std::uint32_t>(grid_weights.size());
  std::uint64_t total = 0;
  for (const std::uint64_t w : grid_weights) total += w;

  ShardPlan plan;
  plan.shards_.reserve(shard_count);
  std::uint32_t next_lo = 0;
  std::uint64_t cum = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    ShardRange range{next_lo, next_lo};
    // Target for the end of shard s, in cumulative weight (or grid count
    // when the weights carry no signal). Exact integer form of
    // ceil(total * (s+1) / shard_count) keeps the split deterministic.
    if (total > 0) {
      const std::uint64_t target =
          (total * static_cast<std::uint64_t>(s + 1) + shard_count - 1) /
          shard_count;
      while (range.grid_hi < grid_count && cum < target) {
        cum += grid_weights[range.grid_hi];
        ++range.grid_hi;
      }
    } else {
      range.grid_hi = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(grid_count) * (s + 1) / shard_count);
    }
    // The last shard sweeps up any remainder so the ranges always cover.
    if (s + 1 == shard_count) range.grid_hi = grid_count;
    next_lo = range.grid_hi;
    plan.shards_.push_back(range);
  }
  return plan;
}

std::size_t ShardPlan::shard_of_grid(std::uint32_t grid) const {
  // First shard whose grid_hi exceeds `grid`; empty shards (hi == lo) are
  // naturally skipped because their hi equals the next shard's lo.
  const auto it = std::upper_bound(
      shards_.begin(), shards_.end(), grid,
      [](std::uint32_t g, const ShardRange& r) { return g < r.grid_hi; });
  if (it == shards_.end())
    throw std::out_of_range("ShardPlan::shard_of_grid: grid beyond plan");
  return static_cast<std::size_t>(it - shards_.begin());
}

}  // namespace fs::shard
