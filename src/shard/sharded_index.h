// Sharded CellIndex construction with a byte-identity guarantee.
//
// The monolithic CellIndex bins every trajectory into (cellslot, poi)
// visits and finalizes profiles + inverted index from them. The sharded
// build does the same work one grid range at a time: each shard bins only
// the check-ins whose cell falls inside its range (fragments), and the
// fragments are concatenated *in shard order*. Because shard ranges ascend
// by grid and a user's fragment is sorted within its shard, the
// concatenation is exactly the sorted, de-duplicated visit list the
// monolithic constructor produces — fragments from different shards can
// never collide on a cellslot. `CellIndex::from_parts` then finalizes the
// identical structure, so signature(), and with it every downstream cache
// key and digest, matches the unsharded build bit for bit. This is the
// halo-free half of the shard correctness argument (DESIGN.md): cell
// co-occurrence is intra-grid by construction, so grid-granular shards
// need no spatial halo — users active in several shards ("halo users")
// are merged here instead.
#pragma once

#include <cstdint>
#include <vector>

#include "block/cell_index.h"
#include "data/dataset.h"
#include "geo/spatial_division.h"
#include "geo/time_slots.h"
#include "shard/shard_plan.h"
#include "util/runtime.h"

namespace fs::shard {

/// Per-check-in (cell, slot) assignment, parallel to dataset.checkins().
/// Computed once (fs::par over users) and reused by the planner (weights)
/// and the sharded index build, so geometry is evaluated exactly once per
/// check-in — same count as the monolithic path.
struct BinnedCheckins {
  std::vector<std::uint32_t> cell;
  std::vector<std::uint32_t> slot;
};

BinnedCheckins bin_checkins(const data::Dataset& dataset,
                            const geo::SpatialDivision& division,
                            const geo::TimeSlotting& slots,
                            runtime::ExecutionContext* context = nullptr);

/// Check-ins per grid — the shard planner's balance weights.
std::vector<std::uint64_t> grid_row_weights(const BinnedCheckins& binned,
                                            std::size_t grid_count);

/// Rows (check-ins) each shard of `plan` owns; observability for the
/// per-shard metrics and the perf_bench v4 shard section.
std::vector<std::uint64_t> shard_row_counts(const BinnedCheckins& binned,
                                            const ShardPlan& plan);

/// Builds the CellIndex shard by shard (see file comment for why the
/// result is byte-identical to `CellIndex(dataset, division, slots)`).
block::CellIndex build_sharded_index(const data::Dataset& dataset,
                                     const BinnedCheckins& binned,
                                     const geo::TimeSlotting& slots,
                                     std::size_t grid_count,
                                     const ShardPlan& plan,
                                     runtime::ExecutionContext* context = nullptr);

}  // namespace fs::shard
