#include "shard/sharded_index.h"

#include <algorithm>

#include "obs/trace.h"
#include "par/par.h"

namespace fs::shard {

BinnedCheckins bin_checkins(const data::Dataset& dataset,
                            const geo::SpatialDivision& division,
                            const geo::TimeSlotting& slots,
                            runtime::ExecutionContext* context) {
  obs::Span span("shard.bin_checkins");
  BinnedCheckins out;
  out.cell.resize(dataset.checkin_count());
  out.slot.resize(dataset.checkin_count());
  const data::CheckIn* base = dataset.checkins().data();
  par::ParallelOptions popts;
  popts.context = context;
  popts.what = "shard.bin_checkins";
  popts.grain = 16;
  // Per-user fan-out (not per-check-in): trajectories are contiguous in the
  // check-in array, so each task writes a disjoint contiguous stripe.
  par::parallel_for(dataset.user_count(), popts, [&](std::size_t u) {
    const auto user = static_cast<data::UserId>(u);
    for (const data::CheckIn& c : dataset.trajectory(user)) {
      const auto i = static_cast<std::size_t>(&c - base);
      out.cell[i] = static_cast<std::uint32_t>(division.cell_of(c.location));
      out.slot[i] = static_cast<std::uint32_t>(slots.slot_of(c.time));
    }
  });
  return out;
}

std::vector<std::uint64_t> grid_row_weights(const BinnedCheckins& binned,
                                            std::size_t grid_count) {
  std::vector<std::uint64_t> weights(grid_count, 0);
  for (const std::uint32_t cell : binned.cell) ++weights[cell];
  return weights;
}

std::vector<std::uint64_t> shard_row_counts(const BinnedCheckins& binned,
                                            const ShardPlan& plan) {
  std::vector<std::uint64_t> rows(plan.shard_count(), 0);
  for (const std::uint32_t cell : binned.cell)
    ++rows[plan.shard_of_grid(cell)];
  return rows;
}

block::CellIndex build_sharded_index(const data::Dataset& dataset,
                                     const BinnedCheckins& binned,
                                     const geo::TimeSlotting& slots,
                                     std::size_t grid_count,
                                     const ShardPlan& plan,
                                     runtime::ExecutionContext* context) {
  obs::Span span("shard.index.build");
  span.arg("shards", static_cast<double>(plan.shard_count()));
  const std::size_t slot_count = slots.slot_count();
  const data::CheckIn* base = dataset.checkins().data();
  std::vector<std::vector<block::CellIndex::PoiVisit>> visits(
      dataset.user_count());

  // Shards run in plan order; inside a shard, users fan out over fs::par
  // (disjoint slots — every task appends only to its own user's list).
  // Appending in shard order keeps each user's list globally sorted: shard
  // ranges ascend by grid, so a later shard's cellslots all exceed an
  // earlier shard's.
  for (std::size_t s = 0; s < plan.shard_count(); ++s) {
    const ShardRange& range = plan.shard(s);
    if (range.grid_count() == 0) continue;
    if (context != nullptr) context->checkpoint("shard.index.build");
    par::ParallelOptions popts;
    popts.context = context;
    popts.what = "shard.index.fragments";
    popts.grain = 16;
    par::parallel_for(dataset.user_count(), popts, [&](std::size_t u) {
      const auto user = static_cast<data::UserId>(u);
      std::vector<block::CellIndex::PoiVisit> fragment;
      for (const data::CheckIn& c : dataset.trajectory(user)) {
        const auto i = static_cast<std::size_t>(&c - base);
        const std::uint32_t cell = binned.cell[i];
        if (cell < range.grid_lo || cell >= range.grid_hi) continue;
        fragment.push_back(block::CellIndex::PoiVisit{
            static_cast<std::uint32_t>(cell * slot_count + binned.slot[i]),
            c.poi});
      }
      std::sort(fragment.begin(), fragment.end());
      fragment.erase(std::unique(fragment.begin(), fragment.end()),
                     fragment.end());
      visits[u].insert(visits[u].end(), fragment.begin(), fragment.end());
    });
  }

  return block::CellIndex::from_parts(grid_count, slot_count,
                                      std::move(visits));
}

}  // namespace fs::shard
