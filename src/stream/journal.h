// Crash-safe durability for the stream: a CRC32-framed event journal plus
// periodic snapshots.
//
// The journal is the stream's write-ahead log — but unlike a classic WAL it
// records *every consumed source line with its disposition*: accepted
// events (full parsed payload + verbatim line), quarantined lines (reason +
// line), and shed lines. That makes recovery total: the accepted sequence
// rebuilds the engine byte-identically, the quarantine census survives the
// crash, and the consumed-line count tells the source exactly how many
// lines to skip on resume — so at-most-once consumption holds across kills.
//
// Frame layout (host-endian, like every durable artifact in this repo):
//
//   [u32 frame-magic][u32 payload-bytes][u32 crc32(payload)][payload]
//
// A torn tail (crash or injected stream.journal.torn_write mid-frame) is
// detected by the magic/length/CRC checks; recovery keeps the longest valid
// prefix and reports the cut so the caller can truncate before appending.
//
// Snapshots compact the prefix: a snapshot atomically persists the accepted
// events, quarantine counters, and consumed-line watermark up to a point,
// after which the journal may be reset (the daemon does, post-rename).
// Every frame carries its consumed-line ordinal, so a crash between
// snapshot rename and journal reset cannot double-apply: recovery skips
// frames below the snapshot's watermark.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "stream/event.h"

namespace fs::stream {

enum class FrameType : std::uint32_t {
  kAccepted = 1,
  kQuarantined = 2,
  kShed = 3,
};

/// One recovered journal frame. `source_index` is the consumed-line ordinal
/// (0-based) of the line this frame disposed of.
struct JournalRecord {
  FrameType type = FrameType::kAccepted;
  std::uint64_t source_index = 0;
  RawEvent event;                               // kAccepted
  RejectReason reason = RejectReason::kShortLine;  // kQuarantined
  std::string line;                             // kQuarantined / kShed
};

/// Append-only journal writer. Opens (creating the header when the file is
/// new or empty) and appends one frame per consumed line. The
/// stream.journal.torn_write failpoint (truncate action) cuts a frame short
/// and throws IoError, simulating a crash mid-write.
///
/// Writes go straight to a file descriptor through the EINTR-safe helpers
/// in util/binary_io — no stdio buffering — so after append_* returns the
/// frame bytes are in the kernel, and sync() (fsync) is the only remaining
/// durability barrier. The daemon calls sync() before acknowledging a
/// commit to a network client.
class JournalWriter {
 public:
  explicit JournalWriter(const std::string& path);
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  void append_accepted(std::uint64_t source_index, const RawEvent& event);
  void append_quarantined(std::uint64_t source_index, RejectReason reason,
                          std::string_view line);
  void append_shed(std::uint64_t source_index, std::string_view line);
  void flush();
  /// fsync(2) barrier: everything appended so far survives power loss.
  void sync();

  std::uint64_t bytes() const { return bytes_; }
  const std::string& path() const { return path_; }

 private:
  void append_frame(const std::string& payload);

  std::string path_;
  int fd_ = -1;
  std::uint64_t bytes_ = 0;
};

struct RecoveredJournal {
  std::vector<JournalRecord> records;
  std::uint64_t valid_bytes = 0;  // longest valid prefix (incl. header)
  bool truncated_tail = false;    // bytes past valid_bytes were cut/ignored
  bool missing = false;           // no journal file at all
};

/// Scans the journal, returning every frame of the longest valid prefix.
/// Never mutates the file; pass valid_bytes to truncate_journal before
/// re-opening a JournalWriter on a torn file.
RecoveredJournal recover_journal(const std::string& path);

/// Truncates the journal file to `valid_bytes` (crash-recovery cleanup).
void truncate_journal(const std::string& path, std::uint64_t valid_bytes);

/// Resets the journal to an empty (header-only) file — post-snapshot
/// compaction.
void reset_journal(const std::string& path);

// ---- snapshots ---------------------------------------------------------

struct Snapshot {
  std::uint64_t config_fingerprint = 0;  // engine config identity
  std::uint64_t consumed_lines = 0;      // source lines consumed (skip count)
  std::uint64_t shed_total = 0;
  std::array<std::uint64_t, kRejectReasonCount> quarantine_counts{};
  std::vector<RawEvent> events;          // accepted prefix, in order
};

/// Atomically writes the snapshot (tmp + rename; the tmp is removed on any
/// failure). The payload is CRC32-checksummed end to end.
void save_snapshot(const std::string& path, const Snapshot& snapshot);

/// Loads and validates a snapshot. Returns std::nullopt when the file is
/// missing, corrupt, or carries a different config fingerprint — recovery
/// then falls back to a full journal replay.
std::optional<Snapshot> load_snapshot(const std::string& path,
                                      std::uint64_t expected_fingerprint);

}  // namespace fs::stream
