#include "stream/daemon.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/failpoint.h"

namespace fs::stream {
namespace {

namespace fp = util::failpoint;

}  // namespace

ServeDaemon::ServeDaemon(ServeConfig config, std::unique_ptr<EventSource> source)
    : config_(std::move(config)),
      source_(std::move(source)),
      engine_(config_.engine),
      ring_(config_.ring_capacity),
      quarantine_(32, config_.diagnostics) {
  if (config_.events_per_tick == 0) config_.events_per_tick = 1;
}

ServeDaemon::~ServeDaemon() = default;

std::string ServeDaemon::journal_path() const {
  return config_.journal_dir.empty() ? std::string()
                                     : config_.journal_dir + "/journal.fsj";
}

std::string ServeDaemon::snapshot_path() const {
  return config_.journal_dir.empty() ? std::string()
                                     : config_.journal_dir + "/snapshot.fss";
}

RecoveryInfo ServeDaemon::recover() {
  RecoveryInfo info;
  if (recovered_) {
    info.consumed_lines = next_ordinal_;
    return info;
  }
  recovered_ = true;
  if (config_.journal_dir.empty()) return info;

  std::uint64_t consumed = 0;
  if (auto snapshot =
          load_snapshot(snapshot_path(), engine_.config_fingerprint())) {
    info.snapshot_used = true;
    consumed = snapshot->consumed_lines;
    report_.shed = snapshot->shed_total;
    quarantine_.restore(snapshot->quarantine_counts);
    for (const auto& event : snapshot->events) engine_.ingest(event);
  }

  auto recovered = recover_journal(journal_path());
  if (!recovered.missing && recovered.truncated_tail) {
    truncate_journal(journal_path(), recovered.valid_bytes);
    info.journal_truncated = true;
  }
  for (const auto& record : recovered.records) {
    if (record.source_index < consumed) continue;  // covered by the snapshot
    switch (record.type) {
      case FrameType::kAccepted:
        engine_.ingest(record.event);
        break;
      case FrameType::kQuarantined:
        quarantine_.add(record.source_index, record.reason, record.line);
        break;
      case FrameType::kShed:
        ++report_.shed;
        break;
    }
    consumed = std::max(consumed, record.source_index + 1);
    ++info.journal_frames_replayed;
  }

  next_ordinal_ = consumed;
  info.consumed_lines = consumed;
  source_->skip_lines(consumed);
  journal_ = std::make_unique<JournalWriter>(journal_path());
  if (config_.diagnostics != nullptr &&
      (info.snapshot_used || info.journal_frames_replayed > 0))
    config_.diagnostics->report(
        util::Severity::kInfo, ErrorCode::kIo, "stream",
        "recovered " + std::to_string(consumed) + " consumed lines (snapshot " +
            (info.snapshot_used ? "used" : "absent") + ", " +
            std::to_string(info.journal_frames_replayed) +
            " journal frames" + (info.journal_truncated ? ", torn tail cut" : "") +
            ")");
  return info;
}

void ServeDaemon::write_snapshot() {
  if (config_.journal_dir.empty()) return;
  Snapshot snapshot;
  snapshot.config_fingerprint = engine_.config_fingerprint();
  // Ring-resident lines are volatile (polled, not yet journaled); the
  // watermark covers only the journaled prefix. Under kBlock ordinals are
  // contiguous so this is exact; under kShed, shed frames above the
  // watermark are simply replayed from the journal on recovery.
  snapshot.consumed_lines = next_ordinal_ - ring_.size();
  snapshot.shed_total = report_.shed;
  snapshot.quarantine_counts = quarantine_.counts();
  snapshot.events = engine_.events();
  save_snapshot(snapshot_path(), snapshot);
  // The journal's content is now covered by the snapshot; compact it. A
  // crash between rename and reset is safe: frames below the snapshot
  // watermark are skipped on replay.
  reset_journal(journal_path());
  ++report_.snapshots_written;
}

void ServeDaemon::consume_line(StampedLine item) {
  if (item.poison) {
    // Transport-level poison (CRC/framing failure): the bytes were never a
    // check-in line. Journal + quarantine the disposition without parsing.
    if (journal_ != nullptr)
      journal_->append_quarantined(item.ordinal, *item.poison, item.line);
    quarantine_.add(item.ordinal, *item.poison, item.line);
    return;
  }
  RawEvent event;
  auto reason = parse_event_line(item.line, event);
  if (!reason) reason = engine_.preflight(event);
  if (reason) {
    if (journal_ != nullptr)
      journal_->append_quarantined(item.ordinal, *reason, item.line);
    quarantine_.add(item.ordinal, *reason, item.line);
    return;
  }
  // WAL ordering: the accepted frame commits the event, then it is applied.
  // A kill in between replays the frame into the same state.
  if (journal_ != nullptr) journal_->append_accepted(item.ordinal, event);
  engine_.ingest(event);
}

ServeReport ServeDaemon::run_for(std::uint64_t extra_ticks) {
  recover();
  const std::uint64_t tick_limit =
      extra_ticks == 0 ? 0 : report_.ticks + extra_ticks;
  auto& ticks_total = obs::metrics().counter(
      "stream.ticks_total", {}, "serve daemon ticks executed");
  auto& consumed_total = obs::metrics().counter(
      "stream.consumed_total", {}, "source lines consumed (all dispositions)");
  auto& ring_gauge = obs::metrics().gauge(
      "stream.ring_size", {}, "lines staged in the backpressure ring");
  auto& dirty_gauge = obs::metrics().gauge(
      "stream.dirty_pairs", {}, "pairs awaiting re-decision");
  auto& staleness_gauge = obs::metrics().gauge(
      "stream.staleness_ticks", {},
      "age in ticks of the oldest dirty pair (SLO input)");

  std::vector<SourceItem> polled;
  while (true) {
    if (config_.max_ticks != 0 && report_.ticks >= config_.max_ticks) break;
    if (tick_limit != 0 && report_.ticks >= tick_limit) break;
    if (config_.context != nullptr && config_.context->cancelled()) {
      report_.cancelled = true;
      if (config_.drain_on_cancel) finish();
      break;
    }

    // 1. poll
    polled.clear();
    if (!source_->exhausted()) {
      std::size_t budget = config_.events_per_tick;
      if (config_.backpressure == Backpressure::kBlock) {
        budget = std::min(budget, ring_.free_space());
        if (budget == 0) ++report_.blocked_polls;
      }
      if (budget > 0) source_->poll(budget, polled);
      for (auto& item : polled) {
        const std::uint64_t ordinal = next_ordinal_++;
        if (ring_.full()) {
          // kShed only (kBlock never polls past free space): the overflow
          // is consumed as shed, with its accounting frame.
          if (journal_ != nullptr) journal_->append_shed(ordinal, item.line);
          ++report_.shed;
        } else {
          ring_.push(StampedLine{ordinal, std::move(item.line), item.poison});
        }
      }
    }

    // 2. consume
    std::size_t consumed = 0;
    while (consumed < config_.events_per_tick && !ring_.empty()) {
      consume_line(ring_.pop());
      ++consumed;
    }

    // 3. decide
    const auto deadline =
        config_.tick_budget_ms > 0
            ? runtime::Deadline::after_seconds(config_.tick_budget_ms / 1000.0)
            : runtime::Deadline::unlimited();
    const auto tick_report = engine_.tick(deadline);
    if (tick_report.deadline_hit) ++report_.deadline_hits;

    // 4. SLO
    const auto staleness = engine_.current_tick() - engine_.oldest_dirty_tick();
    report_.max_staleness_ticks =
        std::max(report_.max_staleness_ticks, staleness);
    if (staleness > config_.staleness_budget_ticks) {
      if (report_.staleness_violations == 0 && config_.diagnostics != nullptr)
        config_.diagnostics->report(
            util::Severity::kWarning, ErrorCode::kBudget, "stream",
            "staleness SLO violated: oldest dirty pair is " +
                std::to_string(staleness) + " ticks old (budget " +
                std::to_string(config_.staleness_budget_ticks) + ")");
      ++report_.staleness_violations;
    }

    ++report_.ticks;
    ticks_total.add(1);
    consumed_total.add(consumed);
    ring_gauge.set(static_cast<double>(ring_.size()));
    dirty_gauge.set(static_cast<double>(engine_.dirty_pair_count()));
    staleness_gauge.set(static_cast<double>(staleness));

    // 5. durability + injected kill point (the journal is flushed after
    // every append, so a kill here loses at most ring-resident lines).
    if (fp::fail("stream.tick.abort"))
      throw fp::InjectedKill("stream.tick.abort at tick " +
                             std::to_string(report_.ticks));
    if (config_.snapshot_every != 0 &&
        report_.ticks % config_.snapshot_every == 0)
      write_snapshot();

    if (config_.after_tick) config_.after_tick(*this);

    if (config_.stop_when_exhausted && source_->exhausted() && ring_.empty() &&
        polled.empty()) {
      engine_.drain();
      report_.exhausted = true;
      write_snapshot();
      break;
    }
    if (config_.idle_sleep_ms > 0 && polled.empty() && consumed == 0 &&
        engine_.dirty_pair_count() == 0)
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          config_.idle_sleep_ms));
  }

  report_.consumed_lines = next_ordinal_;
  report_.accepted = engine_.accepted_count();
  report_.quarantined = quarantine_.total();
  report_.live_edges = engine_.live_edge_count();
  report_.final_digest = engine_.state_digest();
  report_.quarantine_summary = quarantine_.summary();
  return report_;
}

void ServeDaemon::finish() {
  recover();
  while (!ring_.empty()) consume_line(ring_.pop());
  engine_.drain();
  sync_journal();
  write_snapshot();
  report_.consumed_lines = next_ordinal_;
  report_.accepted = engine_.accepted_count();
  report_.quarantined = quarantine_.total();
  report_.live_edges = engine_.live_edge_count();
  report_.final_digest = engine_.state_digest();
  report_.quarantine_summary = quarantine_.summary();
}

void ServeDaemon::sync_journal() {
  if (journal_ != nullptr) journal_->sync();
}

std::string ServeDaemon::streamz_json() const {
  obs::json::Object doc;
  doc["ticks"] = report_.ticks;
  doc["consumed_lines"] = next_ordinal_;
  doc["journaled_watermark"] = journaled_watermark();
  doc["accepted"] = engine_.accepted_count();
  doc["live_edges"] = engine_.live_edge_count();
  doc["dirty_pairs"] = engine_.dirty_pair_count();
  doc["staleness_ticks"] = engine_.current_tick() - engine_.oldest_dirty_tick();
  doc["staleness_violations"] = report_.staleness_violations;
  doc["deadline_hits"] = report_.deadline_hits;
  doc["shed"] = report_.shed;
  doc["snapshots_written"] = report_.snapshots_written;
  obs::json::Object ring;
  ring["capacity"] = ring_.capacity();
  ring["size"] = ring_.size();
  ring["backpressure"] = backpressure_name(config_.backpressure);
  doc["ring"] = std::move(ring);
  obs::json::Object quarantine;
  quarantine["total"] = quarantine_.total();
  obs::json::Object by_reason;
  for (std::size_t i = 0; i < kRejectReasonCount; ++i) {
    const auto count = quarantine_.counts()[i];
    if (count != 0)
      by_reason[reject_reason_name(static_cast<RejectReason>(i))] = count;
  }
  quarantine["by_reason"] = std::move(by_reason);
  doc["quarantine"] = std::move(quarantine);
  return obs::json::Value(std::move(doc)).dump();
}

}  // namespace fs::stream
