// Bounded staging ring between the event source and the validator.
//
// The ring is the backpressure boundary: a source is only polled into the
// free space the ring has (kBlock) or overflow is shed with accounting
// (kShed), so a slow tick propagates pressure upstream instead of growing
// an unbounded queue. Policy lives in the daemon; the ring itself is a
// plain single-threaded circular buffer — the daemon loop is the only
// producer and consumer.
//
// Lines carry their consumed-line ordinal through the ring: ordinals are
// assigned at poll time, and under kShed the journaled ordinals are not
// contiguous (sheds jump ahead of ring-resident lines), so each line must
// remember its own.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "stream/event.h"

namespace fs::stream {

/// How the daemon reacts when the ring has no free space for polled input.
enum class Backpressure {
  kBlock,  // stop polling the source until the ring drains (lossless)
  kShed,   // drop the overflow, journaling every shed line
};

const char* backpressure_name(Backpressure policy);

/// A wire line stamped with its consumed-line ordinal. `poison` marks a
/// transport-level reject (CRC/framing failure from a socket source) that
/// must be quarantined without ever being parsed as a check-in.
struct StampedLine {
  std::uint64_t ordinal = 0;
  std::string line;
  std::optional<RejectReason> poison;
};

/// Fixed-capacity circular buffer of stamped lines.
class EventRing {
 public:
  explicit EventRing(std::size_t capacity)
      : slots_(capacity == 0 ? 1 : capacity) {}

  std::size_t capacity() const { return slots_.size(); }
  std::size_t size() const { return size_; }
  std::size_t free_space() const { return capacity() - size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity(); }

  /// False (and no mutation) when full.
  bool push(StampedLine item) {
    if (full()) return false;
    slots_[(head_ + size_) % capacity()] = std::move(item);
    ++size_;
    return true;
  }

  /// Pops the oldest line; ring must be non-empty.
  StampedLine pop() {
    StampedLine item = std::move(slots_[head_]);
    head_ = (head_ + 1) % capacity();
    --size_;
    return item;
  }

 private:
  std::vector<StampedLine> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

inline const char* backpressure_name(Backpressure policy) {
  return policy == Backpressure::kBlock ? "block" : "shed";
}

}  // namespace fs::stream
