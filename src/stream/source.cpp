#include "stream/source.h"

#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace fs::stream {
namespace {

namespace fp = util::failpoint;

/// Opens `path` for reading, backing off through the RetryPolicy on real or
/// injected (stream.source.open_fail) failures. Throws IoError only once
/// the attempt budget is exhausted.
std::ifstream open_with_retry(const std::string& path,
                              const SourceOptions& options,
                              std::uint64_t& open_failures) {
  runtime::Retrier retrier(options.open_retry);
  while (true) {
    if (!fp::fail("stream.source.open_fail")) {
      std::ifstream in(path, std::ios::binary);
      if (in) return in;
    }
    ++open_failures;
    if (!retrier.retry())
      throw IoError("cannot open stream source after " +
                    std::to_string(retrier.failures()) +
                    " attempts: " + path);
  }
}

bool is_blank(const std::string& line) {
  return util::trim(line).empty();
}

}  // namespace

FileTailSource::FileTailSource(std::string path, SourceOptions options)
    : path_(std::move(path)), options_(options) {}

std::size_t FileTailSource::poll(std::size_t max_lines,
                                 std::vector<std::string>& out) {
  auto in = open_with_retry(path_, options_, open_failures_);
  in.seekg(static_cast<std::streamoff>(offset_));
  if (in) {
    std::ostringstream chunk;
    chunk << in.rdbuf();
    std::string content = std::move(chunk).str();
    offset_ += content.size();
    pending_ += content;
  }
  // Cut complete lines off the pending buffer; a trailing fragment without
  // its newline stays pending (torn-line handling).
  std::size_t start = 0;
  while (true) {
    const auto nl = pending_.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = pending_.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    start = nl + 1;
    if (is_blank(line)) continue;
    if (skip_remaining_ > 0) {
      --skip_remaining_;
      continue;
    }
    ready_.push_back(std::move(line));
  }
  pending_.erase(0, start);

  std::size_t emitted = 0;
  while (emitted < max_lines && !ready_.empty()) {
    out.push_back(std::move(ready_.front()));
    ready_.pop_front();
    ++emitted;
  }
  return emitted;
}

ReplaySource::ReplaySource(std::string path, SourceOptions options)
    : path_(std::move(path)), options_(options) {}

void ReplaySource::ensure_loaded() {
  if (loaded_) return;
  auto in = open_with_retry(path_, options_, open_failures_);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (is_blank(line)) continue;
    lines_.push_back(line);
  }
  loaded_ = true;
}

std::size_t ReplaySource::poll(std::size_t max_lines,
                               std::vector<std::string>& out) {
  ensure_loaded();
  while (skip_remaining_ > 0 && next_ < lines_.size()) {
    --skip_remaining_;
    ++next_;
  }
  std::size_t emitted = 0;
  while (emitted < max_lines && next_ < lines_.size()) {
    out.push_back(lines_[next_]);
    ++next_;
    ++emitted;
  }
  return emitted;
}

}  // namespace fs::stream
