#include "stream/source.h"

#include <fcntl.h>
#include <unistd.h>

#include <fstream>

#include "util/binary_io.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace fs::stream {
namespace {

namespace fp = util::failpoint;

/// Opens `path` read-only, backing off through the RetryPolicy on real or
/// injected (stream.source.open_fail) failures. Throws IoError only once
/// the attempt budget is exhausted. Returns an owning fd.
int open_fd_with_retry(const std::string& path, const SourceOptions& options,
                       std::uint64_t& open_failures) {
  runtime::Retrier retrier(options.open_retry);
  while (true) {
    if (!fp::fail("stream.source.open_fail")) {
      const int fd = ::open(path.c_str(), O_RDONLY);
      if (fd >= 0) return fd;
    }
    ++open_failures;
    if (!retrier.retry())
      throw IoError("cannot open stream source after " +
                    std::to_string(retrier.failures()) +
                    " attempts: " + path);
  }
}

bool is_blank(const std::string& line) {
  return util::trim(line).empty();
}

}  // namespace

FileTailSource::FileTailSource(std::string path, SourceOptions options)
    : path_(std::move(path)), options_(options) {}

std::size_t FileTailSource::poll(std::size_t max_items,
                                 std::vector<SourceItem>& out) {
  const int fd = open_fd_with_retry(path_, options_, open_failures_);
  if (::lseek(fd, static_cast<off_t>(offset_), SEEK_SET) >= 0) {
    char buf[1 << 16];
    while (true) {
      const ssize_t n = util::read_eintr(fd, buf, sizeof buf);
      if (n <= 0) break;  // EOF or hard error; the next poll retries
      pending_.append(buf, static_cast<std::size_t>(n));
      offset_ += static_cast<std::uint64_t>(n);
    }
  }
  ::close(fd);
  // Cut complete lines off the pending buffer; a trailing fragment without
  // its newline stays pending (torn-line handling).
  std::size_t start = 0;
  while (true) {
    const auto nl = pending_.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = pending_.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    start = nl + 1;
    if (is_blank(line)) continue;
    if (skip_remaining_ > 0) {
      --skip_remaining_;
      continue;
    }
    ready_.push_back(std::move(line));
  }
  pending_.erase(0, start);

  std::size_t emitted = 0;
  while (emitted < max_items && !ready_.empty()) {
    out.push_back(SourceItem{std::move(ready_.front()), std::nullopt});
    ready_.pop_front();
    ++emitted;
  }
  return emitted;
}

ReplaySource::ReplaySource(std::string path, SourceOptions options)
    : path_(std::move(path)), options_(options) {}

void ReplaySource::ensure_loaded() {
  if (loaded_) return;
  const int fd = open_fd_with_retry(path_, options_, open_failures_);
  std::string content;
  char buf[1 << 16];
  while (true) {
    const ssize_t n = util::read_eintr(fd, buf, sizeof buf);
    if (n <= 0) break;
    content.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  std::size_t start = 0;
  while (start < content.size()) {
    auto nl = content.find('\n', start);
    if (nl == std::string::npos) nl = content.size();
    std::string line = content.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    start = nl + 1;
    if (is_blank(line)) continue;
    lines_.push_back(std::move(line));
  }
  loaded_ = true;
}

std::size_t ReplaySource::poll(std::size_t max_items,
                               std::vector<SourceItem>& out) {
  ensure_loaded();
  while (skip_remaining_ > 0 && next_ < lines_.size()) {
    --skip_remaining_;
    ++next_;
  }
  std::size_t emitted = 0;
  while (emitted < max_items && next_ < lines_.size()) {
    out.push_back(SourceItem{lines_[next_], std::nullopt});
    ++next_;
    ++emitted;
  }
  return emitted;
}

}  // namespace fs::stream
