#include "stream/engine.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <deque>

namespace fs::stream {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& h, std::uint64_t value) {
  fnv_bytes(h, &value, sizeof(value));
}

void fnv_i64(std::uint64_t& h, std::int64_t value) {
  fnv_bytes(h, &value, sizeof(value));
}

void fnv_f64(std::uint64_t& h, double value) {
  const auto bits = std::bit_cast<std::uint64_t>(value);
  fnv_bytes(h, &bits, sizeof(bits));
}

void fnv_str(std::uint64_t& h, const std::string& value) {
  std::uint64_t len = value.size();
  fnv_bytes(h, &len, sizeof(len));
  fnv_bytes(h, value.data(), value.size());
}

template <typename T>
bool sorted_insert(std::vector<T>& v, const T& value) {
  const auto it = std::lower_bound(v.begin(), v.end(), value);
  if (it != v.end() && *it == value) return false;
  v.insert(it, value);
  return true;
}

}  // namespace

std::size_t StreamEngine::CellPoiHash::operator()(
    const CellPoiKey& key) const {
  // splitmix64 over the packed key; xor-folding the fields would collide
  // (cell, poi) with (cell ^ d, poi ^ d) and invent strong edges.
  std::uint64_t x = key.cell * 0x9e3779b97f4a7c15ULL + key.poi;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x);
}

StreamEngine::StreamEngine(const EngineConfig& config) : config_(config) {
  tau_sec_ = static_cast<geo::Timestamp>(
      std::max(1.0, config_.tau_days * static_cast<double>(geo::kSecondsPerDay)));
}

StreamEngine::~StreamEngine() = default;

std::uint32_t StreamEngine::slot_of(geo::Timestamp t) const {
  if (t <= window_begin_) return 0;
  const auto slot = (t - window_begin_) / tau_sec_;
  return slot > 0xfffffffell ? 0xfffffffeu : static_cast<std::uint32_t>(slot);
}

std::optional<RejectReason> StreamEngine::preflight(
    const RawEvent& event) const {
  if (event.has_explicit_id &&
      seen_event_ids_.count(event.event_id) != 0)
    return RejectReason::kDuplicateEventId;
  if (config_.lateness_budget_sec > 0 && has_watermark_ &&
      event.time < watermark_ - config_.lateness_budget_sec)
    return RejectReason::kStaleTimestamp;
  return std::nullopt;
}

std::optional<RejectReason> StreamEngine::ingest(const RawEvent& event) {
  if (const auto reason = preflight(event)) return reason;

  // Accepted: from here on every mutation happens, or none (no throws).
  if (!has_watermark_) {
    has_watermark_ = true;
    watermark_ = event.time;
    window_begin_ = event.time;
  } else if (event.time > watermark_) {
    watermark_ = event.time;
  }
  if (event.has_explicit_id) seen_event_ids_.insert(event.event_id);

  events_.push_back(event);
  events_.back().seq = events_.size() - 1;

  auto user_it = user_index_.find(event.user);
  if (user_it == user_index_.end()) {
    const auto dense = static_cast<std::uint32_t>(user_ids_.size());
    user_it = user_index_.emplace(event.user, dense).first;
    user_ids_.push_back(event.user);
    profile_.emplace_back();
    visits_.emplace_back();
    strong_adj_.emplace_back();
  }
  auto poi_it = poi_index_.find(event.poi);
  if (poi_it == poi_index_.end()) {
    const auto dense = static_cast<std::uint32_t>(poi_ids_.size());
    poi_it = poi_index_.emplace(event.poi, dense).first;
    poi_ids_.push_back(event.poi);
    poi_coords_.push_back(event.location);
  }
  maybe_rebuild_division();
  index_event(user_it->second, event.location, event.time, poi_it->second,
              /*mark=*/true);
  return std::nullopt;
}

void StreamEngine::maybe_rebuild_division() {
  if (division_ != nullptr && poi_coords_.size() <= 2 * division_poi_count_)
    return;
  division_ = std::make_unique<geo::QuadtreeDivision>(poi_coords_,
                                                      config_.sigma);
  division_poi_count_ = poi_coords_.size();
  ++division_rebuilds_;
  reindex_all();
}

void StreamEngine::reindex_all() {
  for (auto& p : profile_) p.clear();
  for (auto& v : visits_) v.clear();
  for (auto& a : strong_adj_) a.clear();
  cell_users_.clear();
  cellpoi_users_.clear();
  for (const auto& e : events_)
    index_event(user_index_.at(e.user), e.location, e.time,
                poi_index_.at(e.poi), /*mark=*/false);

  // Division renumbering moved every profile: conservatively dirty every
  // pair that currently co-occurs (within the slot tolerance) plus every
  // live edge — any pair outside that set has score 0 and no edge, so its
  // decision cannot change.
  std::vector<CellKey> keys;
  keys.reserve(cell_users_.size());
  for (const auto& [key, users] : cell_users_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  const auto tol = static_cast<std::uint32_t>(
      config_.slot_tolerance < 0 ? 0 : config_.slot_tolerance);
  for (const auto key : keys) {
    const auto& base = cell_users_.at(key);
    const std::uint64_t grid = key >> 32;
    const auto slot = static_cast<std::uint32_t>(key & 0xffffffffu);
    for (std::uint32_t d = 0; d <= tol; ++d) {
      const CellKey other_key = (grid << 32) | (slot + d);
      const auto other_it = cell_users_.find(other_key);
      if (other_it == cell_users_.end()) continue;
      const auto& other = other_it->second;
      for (const auto a : base)
        for (const auto b : other)
          if (a != b) mark_dirty(a, b);
    }
  }
  for (const auto& edge : live_edges_) mark_dirty(edge.first, edge.second);
}

void StreamEngine::index_event(std::uint32_t user, const geo::LatLng& location,
                               geo::Timestamp time, std::uint32_t poi,
                               bool mark) {
  const std::uint64_t grid = division_->cell_of(location);
  const std::uint32_t slot = slot_of(time);
  const CellKey cell = (grid << 32) | slot;
  bool changed = false;

  if (sorted_insert(profile_[user], cell)) {
    changed = true;
    if (mark) {
      const auto tol = config_.slot_tolerance < 0 ? 0 : config_.slot_tolerance;
      for (int d = -tol; d <= tol; ++d) {
        if (d < 0 && slot < static_cast<std::uint32_t>(-d)) continue;
        const CellKey neighbor = (grid << 32) | (slot + d);
        const auto it = cell_users_.find(neighbor);
        if (it == cell_users_.end()) continue;
        for (const auto v : it->second)
          if (v != user) mark_dirty(user, v);
      }
    }
    sorted_insert(cell_users_[cell], user);
  }

  if (sorted_insert(visits_[user], std::make_pair(cell, poi))) {
    changed = true;
    auto& occupants = cellpoi_users_[CellPoiKey{cell, poi}];
    for (const auto v : occupants) {
      if (v == user) continue;
      sorted_insert(strong_adj_[user], v);
      sorted_insert(strong_adj_[v], user);
      if (mark) mark_dirty(user, v);
    }
    sorted_insert(occupants, user);
  }

  if (changed && mark) {
    touched_users_.insert(user_ids_[user]);
    dirty_hop_frontier(user);
  }
}

void StreamEngine::mark_dirty(std::uint32_t a, std::uint32_t b) {
  dirty_.emplace(std::minmax(a, b), tick_counter_);
}

void StreamEngine::dirty_hop_frontier(std::uint32_t user) {
  if (config_.hop_expansion <= 0) return;
  std::unordered_set<std::uint32_t> visited{user};
  std::deque<std::pair<std::uint32_t, int>> frontier{{user, 0}};
  while (!frontier.empty()) {
    const auto [node, depth] = frontier.front();
    frontier.pop_front();
    if (depth >= config_.hop_expansion) continue;
    for (const auto next : strong_adj_[node]) {
      if (!visited.insert(next).second) continue;
      mark_dirty(user, next);
      frontier.emplace_back(next, depth + 1);
    }
  }
}

void StreamEngine::decide(const Pair& pair, TickReport& report) {
  const auto& va = visits_[pair.first];
  const auto& vb = visits_[pair.second];
  std::size_t n_strong = 0;
  for (std::size_t i = 0, j = 0; i < va.size() && j < vb.size();) {
    if (va[i] < vb[j]) {
      ++i;
    } else if (vb[j] < va[i]) {
      ++j;
    } else {
      ++n_strong;
      ++i;
      ++j;
    }
  }

  const auto& pa = profile_[pair.first];
  const auto& pb = profile_[pair.second];
  const auto tol = static_cast<std::uint64_t>(
      config_.slot_tolerance < 0 ? 0 : config_.slot_tolerance);
  std::size_t n_cell = 0;
  std::size_t i = 0, j = 0;
  while (i < pa.size() && j < pb.size()) {
    const std::uint64_t ga = pa[i] >> 32;
    const std::uint64_t gb = pb[j] >> 32;
    if (ga < gb) {
      ++i;
    } else if (gb < ga) {
      ++j;
    } else {
      // Common grid: slots on each side are a sorted contiguous run.
      std::size_t ia = i, jb = j;
      while (ia < pa.size() && (pa[ia] >> 32) == ga) ++ia;
      while (jb < pb.size() && (pb[jb] >> 32) == ga) ++jb;
      bool matched = false;
      for (std::size_t x = i, y = j; x < ia && y < jb && !matched;) {
        const auto sa = pa[x] & 0xffffffffu;
        const auto sb = pb[y] & 0xffffffffu;
        const auto gap = sa > sb ? sa - sb : sb - sa;
        if (gap <= tol)
          matched = true;
        else if (sa < sb)
          ++x;
        else
          ++y;
      }
      if (matched) ++n_cell;
      i = ia;
      j = jb;
    }
  }

  const double score = config_.strong_weight * static_cast<double>(n_strong) +
                       config_.cell_weight * static_cast<double>(n_cell);
  const bool edge = score >= config_.decide_threshold;
  const bool had = live_edges_.count(pair) != 0;
  if (edge && !had) {
    live_edges_.insert(pair);
    ++report.edges_added;
  } else if (!edge && had) {
    live_edges_.erase(pair);
    ++report.edges_removed;
  }
}

TickReport StreamEngine::tick(const runtime::Deadline& deadline) {
  ++tick_counter_;
  TickReport report;
  const std::size_t stride =
      config_.deadline_check_stride == 0 ? 64 : config_.deadline_check_stride;
  while (!dirty_.empty()) {
    if (report.processed % stride == 0 && deadline.expired()) {
      report.deadline_hit = true;
      break;
    }
    const auto pair = dirty_.begin()->first;
    dirty_.erase(dirty_.begin());
    decide(pair, report);
    ++report.processed;
  }
  report.remaining = dirty_.size();
  return report;
}

std::size_t StreamEngine::drain() {
  std::size_t total = 0;
  while (!dirty_.empty())
    total += tick(runtime::Deadline::unlimited()).processed;
  return total;
}

std::vector<std::pair<long long, long long>> StreamEngine::live_edges_raw()
    const {
  std::vector<std::pair<long long, long long>> edges;
  edges.reserve(live_edges_.size());
  for (const auto& [a, b] : live_edges_) {
    auto raw = std::minmax(user_ids_[a], user_ids_[b]);
    edges.emplace_back(raw.first, raw.second);
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

std::uint64_t StreamEngine::oldest_dirty_tick() const {
  if (dirty_.empty()) return tick_counter_;
  std::uint64_t oldest = tick_counter_;
  for (const auto& [pair, tick] : dirty_) oldest = std::min(oldest, tick);
  return oldest;
}

std::uint64_t StreamEngine::state_digest() const {
  std::uint64_t h = kFnvOffset;
  fnv_u64(h, events_.size());
  for (const auto& e : events_) {
    fnv_i64(h, e.user);
    fnv_i64(h, e.time);
    fnv_f64(h, e.location.lat);
    fnv_f64(h, e.location.lng);
    fnv_i64(h, e.poi);
    fnv_u64(h, e.has_explicit_id ? e.event_id : 0);
    fnv_str(h, e.line);
  }
  fnv_u64(h, user_ids_.size());
  for (const auto id : user_ids_) fnv_i64(h, id);
  fnv_u64(h, poi_ids_.size());
  for (const auto id : poi_ids_) fnv_i64(h, id);
  fnv_u64(h, live_edges_.size());
  for (const auto& [a, b] : live_edges_) {
    fnv_i64(h, user_ids_[a]);
    fnv_i64(h, user_ids_[b]);
  }
  fnv_u64(h, dirty_.size());
  for (const auto& [pair, tick] : dirty_) {
    fnv_i64(h, user_ids_[pair.first]);
    fnv_i64(h, user_ids_[pair.second]);
  }
  return h;
}

std::uint64_t StreamEngine::config_fingerprint() const {
  std::uint64_t h = kFnvOffset;
  fnv_u64(h, config_.sigma);
  fnv_f64(h, config_.tau_days);
  fnv_i64(h, config_.slot_tolerance);
  fnv_i64(h, config_.hop_expansion);
  fnv_f64(h, config_.strong_weight);
  fnv_f64(h, config_.cell_weight);
  fnv_f64(h, config_.decide_threshold);
  fnv_i64(h, config_.lateness_budget_sec);
  return h;
}

std::vector<long long> StreamEngine::take_touched_users() {
  std::vector<long long> users(touched_users_.begin(), touched_users_.end());
  touched_users_.clear();
  return users;
}

data::Dataset StreamEngine::to_dataset(
    const std::vector<std::pair<long long, long long>>& raw_edges,
    const data::LoadOptions& options, data::LoadReport* report,
    std::vector<long long>* user_ids_out) const {
  std::vector<data::RawRecord> records;
  records.reserve(events_.size());
  for (const auto& e : events_) {
    data::RawRecord record;
    record.user = e.user;
    record.time = e.time;
    record.location = e.location;
    record.poi = e.poi;
    records.push_back(record);
  }
  return data::assemble_from_records(records, raw_edges, options, report,
                                     user_ids_out);
}

}  // namespace fs::stream
