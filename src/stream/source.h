// Pluggable event sources feeding the stream daemon.
//
// A source hands the daemon raw wire items; the daemon owns validation,
// journaling, and application. An item is usually a complete check-in line,
// but transport-level sources (the fs::net socket source) can also emit
// *poisoned* items — frames whose bytes failed CRC or framing checks before
// a line ever existed. Poisoned items still consume an ordinal and are
// journaled as quarantined, so corrupt network input is lost-but-accounted,
// never silently dropped.
//
// Implementations here:
//
//   * FileTailSource — follows a growing file by byte offset (fd-based,
//     EINTR-safe reads), emitting only *complete* lines: a torn tail (a
//     line whose newline has not landed yet) stays buffered until the
//     writer finishes it, so a half-written record is never parsed,
//     quarantined, or journaled.
//   * ReplaySource — replays a SNAP check-in file in file order (NOT
//     time-sorted: the batch loader interns POIs in record order, and
//     convergence-to-batch requires the stream to see the same order). The
//     event rate comes from the daemon's per-tick poll budget.
//
// (fs::net adds SocketSource, which drains the network server's decoded
// frame queue through this same interface.)
//
// All sources filter blank lines before they count: consumed-line ordinals
// (the resume watermark) enumerate non-blank items only, so skip_lines(n)
// after recovery lands on exactly the first unconsumed record. Opens go
// through the stream.source.open_fail failpoint under a RetryPolicy, so
// transient open failures back off and retry instead of killing the daemon.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "stream/event.h"
#include "util/runtime.h"

namespace fs::stream {

/// One unit of source output: a wire line, or a poisoned placeholder for
/// transport-level garbage (CRC failure, malformed frame). For poisoned
/// items `line` holds a sanitized description of the rejected bytes — it is
/// journaled and quarantined verbatim, but never parsed as a check-in.
struct SourceItem {
  std::string line;
  std::optional<RejectReason> poison;
};

class EventSource {
 public:
  virtual ~EventSource() = default;

  /// Appends up to `max_items` items to `out`; returns how many were
  /// appended. May legitimately return 0 (nothing new yet).
  virtual std::size_t poll(std::size_t max_items,
                           std::vector<SourceItem>& out) = 0;

  /// True when the source can never produce another item (replay reached
  /// end of file). A tail or socket is never exhausted by itself.
  virtual bool exhausted() const = 0;

  /// Skips the next `n` items (resume: n = consumed-line count recovered
  /// from snapshot + journal).
  virtual void skip_lines(std::uint64_t n) = 0;
};

struct SourceOptions {
  runtime::RetryPolicy open_retry;
};

/// Follows a file by byte offset, complete lines only.
class FileTailSource : public EventSource {
 public:
  explicit FileTailSource(std::string path, SourceOptions options = {});

  std::size_t poll(std::size_t max_items,
                   std::vector<SourceItem>& out) override;
  bool exhausted() const override { return false; }
  void skip_lines(std::uint64_t n) override { skip_remaining_ += n; }

  std::uint64_t byte_offset() const { return offset_; }
  std::uint64_t open_failures() const { return open_failures_; }

 private:
  std::string path_;
  SourceOptions options_;
  std::uint64_t offset_ = 0;    // bytes consumed from the file
  std::string pending_;         // bytes after the last newline seen
  std::deque<std::string> ready_;  // complete non-blank lines not yet polled
  std::uint64_t skip_remaining_ = 0;
  std::uint64_t open_failures_ = 0;
};

/// Replays a SNAP check-in file in file order.
class ReplaySource : public EventSource {
 public:
  explicit ReplaySource(std::string path, SourceOptions options = {});

  std::size_t poll(std::size_t max_items,
                   std::vector<SourceItem>& out) override;
  bool exhausted() const override { return loaded_ && next_ >= lines_.size(); }
  void skip_lines(std::uint64_t n) override { skip_remaining_ += n; }

  std::uint64_t open_failures() const { return open_failures_; }

 private:
  void ensure_loaded();

  std::string path_;
  SourceOptions options_;
  bool loaded_ = false;
  std::vector<std::string> lines_;
  std::size_t next_ = 0;
  std::uint64_t skip_remaining_ = 0;
  std::uint64_t open_failures_ = 0;
};

}  // namespace fs::stream
