// Poison quarantine: the terminal station for events the stream refuses.
//
// Every rejected event is counted by structured reason, a bounded sample of
// verbatim lines is retained for operator triage, and each reject is
// mirrored into the metrics registry (stream.quarantined_total{reason=...})
// and, optionally, a Diagnostics sink. Quarantine is observability, not a
// retry queue: a quarantined event never touches the index, and the
// journal's quarantine frames make the census survive a crash.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "stream/event.h"
#include "util/error.h"

namespace fs::stream {

class PoisonQuarantine {
 public:
  struct Record {
    std::uint64_t source_index = 0;  // consumed-line ordinal when rejected
    RejectReason reason = RejectReason::kShortLine;
    std::string line;
  };

  explicit PoisonQuarantine(std::size_t max_samples = 32,
                            util::Diagnostics* diagnostics = nullptr)
      : max_samples_(max_samples), diagnostics_(diagnostics) {}

  /// Counts the reject, keeps a sample (up to max_samples), bumps the
  /// per-reason metric, and reports a warning diagnostic when a sink is
  /// attached.
  void add(std::uint64_t source_index, RejectReason reason,
           std::string_view line);

  std::uint64_t total() const { return total_; }
  std::uint64_t count(RejectReason reason) const {
    return counts_[static_cast<std::size_t>(reason)];
  }
  const std::vector<Record>& samples() const { return samples_; }
  const std::array<std::uint64_t, kRejectReasonCount>& counts() const {
    return counts_;
  }

  /// Restores a census recovered from a snapshot (replaces counts; sample
  /// lines are not persisted and restart empty).
  void restore(const std::array<std::uint64_t, kRejectReasonCount>& counts) {
    counts_ = counts;
    total_ = 0;
    for (const auto count : counts_) total_ += count;
  }

  /// One line per nonzero reason, e.g. "quarantined 3 (bad_timestamp 2, ...)".
  std::string summary() const;

 private:
  std::size_t max_samples_;
  util::Diagnostics* diagnostics_;
  std::uint64_t total_ = 0;
  std::array<std::uint64_t, kRejectReasonCount> counts_{};
  std::vector<Record> samples_;
};

}  // namespace fs::stream
