// Incremental spatial-temporal index + live co-occurrence graph for
// streaming ingestion.
//
// The batch pipeline builds its CellIndex, strong-co-occurrence graph, and
// candidate universe from a finished dataset. The stream engine maintains
// the same primitives event-by-event:
//
//   * users and POIs are interned in arrival order; the quadtree spatial
//     division is rebuilt (deterministically, at POI-count doubling
//     thresholds) as the POI universe grows, followed by a full reindex;
//   * each accepted event updates the user's (grid, slot) profile and
//     (grid, slot, POI) visit set, and every pair whose decision inputs
//     could have changed — cell co-occupants within the slot tolerance,
//     strong co-visitors, plus a hop-expansion frontier over the strong
//     graph — is marked dirty;
//   * tick() re-decides only the dirty frontier, in deterministic pair
//     order, under a wall-clock deadline; drain() ticks to a clean state.
//
// Convergence-to-batch rests on a purity argument: decide(u,v) is a pure
// function of the pair's *current* index state, and every input change
// dirties the pair, so any tick schedule (including one interrupted by a
// kill and resumed from the journal) reaches the same fixed point once the
// frontier drains. state_digest() captures exactly that replay-identical
// state — it deliberately excludes tick counters and dirtied-at ticks,
// which depend on scheduling.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "data/loader.h"
#include "geo/quadtree.h"
#include "geo/time_slots.h"
#include "stream/event.h"
#include "util/runtime.h"

namespace fs::stream {

struct EngineConfig {
  std::size_t sigma = 16;      // quadtree leaf capacity (paper's sigma)
  double tau_days = 1.0;       // temporal slot length
  int slot_tolerance = 1;      // adjacent-slot reach for cell co-occurrence
  int hop_expansion = 1;       // strong-graph hops added to the dirty frontier
  double strong_weight = 1.0;  // score weight of a strong co-occurrence
  double cell_weight = 0.5;    // score weight of a shared (grid, ~slot)
  double decide_threshold = 1.0;  // edge iff score >= threshold
  /// Reject events older than watermark - budget (0 disables the check —
  /// the default, because the batch loader accepts any order and
  /// convergence-to-batch requires matching it).
  geo::Timestamp lateness_budget_sec = 0;
  std::size_t deadline_check_stride = 64;
};

struct TickReport {
  std::size_t processed = 0;      // dirty pairs re-decided this tick
  std::size_t remaining = 0;      // dirty pairs left after the tick
  std::size_t edges_added = 0;
  std::size_t edges_removed = 0;
  bool deadline_hit = false;
};

class StreamEngine {
 public:
  explicit StreamEngine(const EngineConfig& config);
  ~StreamEngine();

  /// Validates the event against ingestion state (duplicate explicit id,
  /// staleness) and, on acceptance, applies it to the index and dirties the
  /// affected pair frontier. A rejected event mutates nothing. The stored
  /// event's seq is reassigned to the acceptance ordinal.
  std::optional<RejectReason> ingest(const RawEvent& event);

  /// The ingestion-state checks ingest() would apply (duplicate explicit
  /// id, staleness) without mutating anything — the daemon journals an
  /// accepted frame *before* applying it (WAL ordering), so it needs the
  /// verdict first.
  std::optional<RejectReason> preflight(const RawEvent& event) const;

  /// Re-decides dirty pairs in ascending pair order until the frontier is
  /// clean or the deadline expires (checked every deadline_check_stride
  /// pairs — graceful degradation, never an exception).
  TickReport tick(const runtime::Deadline& deadline);

  /// Ticks with no deadline until the frontier is clean; returns the number
  /// of pairs processed.
  std::size_t drain();

  // -- observers ---------------------------------------------------------
  std::size_t accepted_count() const { return events_.size(); }
  const std::vector<RawEvent>& events() const { return events_; }
  std::size_t user_count() const { return user_ids_.size(); }
  std::size_t poi_count() const { return poi_ids_.size(); }
  std::size_t live_edge_count() const { return live_edges_.size(); }
  /// Live edges as raw-user-id pairs (a < b), sorted.
  std::vector<std::pair<long long, long long>> live_edges_raw() const;
  std::size_t dirty_pair_count() const { return dirty_.size(); }
  std::uint64_t current_tick() const { return tick_counter_; }
  /// Tick at which the oldest still-dirty pair was dirtied (current_tick()
  /// when the frontier is clean). current_tick() - oldest_dirty_tick() is
  /// the staleness the SLO monitors.
  std::uint64_t oldest_dirty_tick() const;
  std::size_t division_rebuilds() const { return division_rebuilds_; }

  /// FNV-1a digest over the replay-identical state: accepted events (all
  /// fields incl. wire bytes), interned id orders, live edges, and the
  /// dirty-pair key set. Excludes tick counters / dirtied-at ticks.
  std::uint64_t state_digest() const;

  /// Identity of the config fields that shape engine state; snapshots carry
  /// it so recovery refuses a snapshot from a differently-configured run.
  std::uint64_t config_fingerprint() const;

  /// Raw ids of users whose index state changed since the last call
  /// (feature-cache invalidation hook); clears the set.
  std::vector<long long> take_touched_users();

  /// Assembles the accepted events into a batch-equivalent Dataset via
  /// data::assemble_from_records — the same selection semantics
  /// (min_checkins floor, max_users cap, ascending-raw-id densification,
  /// record-order POI interning) as load_checkins_snap.
  data::Dataset to_dataset(
      const std::vector<std::pair<long long, long long>>& raw_edges,
      const data::LoadOptions& options = {},
      data::LoadReport* report = nullptr,
      std::vector<long long>* user_ids_out = nullptr) const;

  const EngineConfig& config() const { return config_; }

 private:
  using CellKey = std::uint64_t;  // (grid << 32) | slot
  using Pair = std::pair<std::uint32_t, std::uint32_t>;

  struct CellPoiKey {
    CellKey cell = 0;
    std::uint32_t poi = 0;
    bool operator==(const CellPoiKey& other) const {
      return cell == other.cell && poi == other.poi;
    }
  };
  struct CellPoiHash {
    std::size_t operator()(const CellPoiKey& key) const;
  };

  std::uint32_t slot_of(geo::Timestamp t) const;
  void maybe_rebuild_division();
  void reindex_all();
  /// Applies event fields to profile/visits/inverted/strong structures.
  /// With `mark` set, dirties the affected pair frontier and the user.
  void index_event(std::uint32_t user, const geo::LatLng& location,
                   geo::Timestamp time, std::uint32_t poi, bool mark);
  void mark_dirty(std::uint32_t a, std::uint32_t b);
  void dirty_hop_frontier(std::uint32_t user);
  /// Pure decision from current index state; updates live_edges_.
  void decide(const Pair& pair, TickReport& report);

  EngineConfig config_;
  geo::Timestamp tau_sec_ = geo::kSecondsPerDay;

  std::vector<RawEvent> events_;
  std::unordered_set<std::uint64_t> seen_event_ids_;
  bool has_watermark_ = false;
  geo::Timestamp watermark_ = 0;
  geo::Timestamp window_begin_ = 0;

  std::unordered_map<long long, std::uint32_t> user_index_;
  std::vector<long long> user_ids_;
  std::unordered_map<long long, std::uint32_t> poi_index_;
  std::vector<long long> poi_ids_;
  std::vector<geo::LatLng> poi_coords_;  // first-seen coordinate per POI

  std::unique_ptr<geo::QuadtreeDivision> division_;
  std::size_t division_poi_count_ = 0;
  std::size_t division_rebuilds_ = 0;

  // Per-user index state. All vectors are kept sorted + unique so decide()
  // runs linear merges and iteration order is deterministic.
  std::vector<std::vector<CellKey>> profile_;
  std::vector<std::vector<std::pair<CellKey, std::uint32_t>>> visits_;
  std::vector<std::vector<std::uint32_t>> strong_adj_;
  std::unordered_map<CellKey, std::vector<std::uint32_t>> cell_users_;
  std::unordered_map<CellPoiKey, std::vector<std::uint32_t>, CellPoiHash>
      cellpoi_users_;

  std::set<Pair> live_edges_;
  std::map<Pair, std::uint64_t> dirty_;  // pair -> tick first dirtied
  std::uint64_t tick_counter_ = 0;

  std::set<long long> touched_users_;
};

}  // namespace fs::stream
