// The `friendseeker serve` daemon loop: source → ring → validate →
// journal → engine, with crash recovery, backpressure, SLOs, and
// fault-injection kill points.
//
// Tick anatomy (one iteration of run()):
//
//   1. poll    — pull lines from the source into the ring. kBlock polls
//                only into free space (lossless); kShed journals and drops
//                the overflow.
//   2. consume — pop up to events_per_tick lines: parse + preflight, then
//                journal the disposition frame BEFORE applying (WAL
//                ordering: the frame is the commit point), then apply to
//                the engine or the quarantine.
//   3. decide  — engine.tick() re-decides the dirty pair frontier under
//                the per-tick deadline (graceful degradation: leftover
//                pairs stay dirty and age).
//   4. SLO     — staleness (ticks since the oldest dirty pair was
//                dirtied) is checked against the budget; violations are
//                counted and reported, never fatal.
//   5. durability — periodic snapshot (atomic tmp+rename) followed by
//                journal compaction; the stream.tick.abort failpoint
//                fires here to simulate a kill between commit points.
//
// Crash recovery (recover(), implicit in run()): load the newest valid
// snapshot (fingerprint-checked), truncate any torn journal tail, replay
// journal frames past the snapshot watermark, and position the source past
// every consumed line. Under kBlock this reconstructs consumption exactly;
// under kShed, lines resident in the (volatile) ring at the kill are lost,
// which is the documented cost of the shedding policy.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "stream/engine.h"
#include "stream/journal.h"
#include "stream/quarantine.h"
#include "stream/ring.h"
#include "stream/source.h"
#include "util/error.h"
#include "util/runtime.h"

namespace fs::stream {

struct ServeConfig {
  EngineConfig engine;
  std::size_t ring_capacity = 256;
  Backpressure backpressure = Backpressure::kBlock;
  /// Per-tick budgets: lines polled from the source, and lines consumed
  /// (validated + journaled + applied) from the ring.
  std::size_t events_per_tick = 64;
  /// Wall-clock budget for the decide phase of one tick; <= 0 = unlimited.
  double tick_budget_ms = 50.0;
  /// Staleness SLO: the oldest dirty pair may lag at most this many ticks
  /// behind before the tick counts as a violation.
  std::uint64_t staleness_budget_ticks = 4;
  /// Directory holding journal + snapshot. Empty disables durability
  /// (no journal, no snapshots, no recovery) — tests and dry runs only.
  std::string journal_dir;
  /// Snapshot every N ticks (0 = only at shutdown).
  std::uint64_t snapshot_every = 0;
  /// Stop after N ticks (0 = run until exhausted/cancelled).
  std::uint64_t max_ticks = 0;
  /// When the source is exhausted and the ring is empty: drain the engine,
  /// write a final snapshot, and stop. Off = keep ticking (a tail).
  bool stop_when_exhausted = true;
  /// Sleep this long after a tick that polled and consumed nothing (idle
  /// tail following); 0 = busy loop (replay, tests).
  double idle_sleep_ms = 0.0;
  /// On cooperative cancellation: instead of stopping with lines still in
  /// the ring, drain the ring + engine, fsync the journal, and write a
  /// final snapshot before returning (graceful SIGTERM semantics for a
  /// network daemon; items still queued upstream of the source are the
  /// client's to resend).
  bool drain_on_cancel = false;
  /// Called at the end of every tick, after durability. The fs::net server
  /// hooks this to service durable-commit acknowledgements (it asks the
  /// daemon to sync_journal() and publishes journaled_watermark()).
  std::function<void(class ServeDaemon&)> after_tick;
  SourceOptions source_options;
  runtime::ExecutionContext* context = nullptr;
  util::Diagnostics* diagnostics = nullptr;
};

struct RecoveryInfo {
  bool snapshot_used = false;
  bool journal_truncated = false;   // torn tail cut before appending
  std::uint64_t journal_frames_replayed = 0;
  std::uint64_t consumed_lines = 0;  // resume watermark handed to the source
};

struct ServeReport {
  std::uint64_t ticks = 0;
  std::uint64_t consumed_lines = 0;  // total, including recovered prefix
  std::uint64_t accepted = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t shed = 0;
  std::uint64_t blocked_polls = 0;   // ticks the ring was too full to poll
  std::uint64_t snapshots_written = 0;
  std::uint64_t deadline_hits = 0;   // ticks whose decide phase was cut
  std::uint64_t staleness_violations = 0;
  std::uint64_t max_staleness_ticks = 0;
  bool exhausted = false;   // stopped because the source ran dry
  bool cancelled = false;   // stopped on cooperative cancellation
  std::uint64_t live_edges = 0;
  std::uint64_t final_digest = 0;  // engine.state_digest() at stop
  std::string quarantine_summary;
};

class ServeDaemon {
 public:
  ServeDaemon(ServeConfig config, std::unique_ptr<EventSource> source);
  ~ServeDaemon();

  /// Recovers durable state (snapshot + journal) and positions the source.
  /// Idempotent; run() calls it if the caller has not.
  RecoveryInfo recover();

  /// Runs the tick loop until max_ticks, exhaustion, or cancellation.
  /// Injected kills (stream.tick.abort) and torn journal writes escape as
  /// InjectedKill / IoError — deliberately uncaught, like a real crash.
  ServeReport run() { return run_for(0); }

  /// Like run(), but additionally stops after `extra_ticks` further ticks
  /// (0 = no extra bound). Callers interleave serve chunks with finalize
  /// passes this way; the daemon stays resumable in between.
  ServeReport run_for(std::uint64_t extra_ticks);

  /// Drains the ring and the engine's dirty frontier, writes a final
  /// snapshot, and refreshes the report — an explicit graceful stop for
  /// callers that interleave run_for() chunks (the net soak does).
  void finish();

  StreamEngine& engine() { return engine_; }
  const PoisonQuarantine& quarantine() const { return quarantine_; }
  const ServeReport& report() const { return report_; }

  /// fsync barrier on the journal (no-op without a journal_dir). The
  /// durable-commit path for network acks.
  void sync_journal();
  /// Ordinals strictly below this have their disposition frame in the
  /// journal (or a snapshot); ring-resident lines are above it.
  std::uint64_t journaled_watermark() const {
    return next_ordinal_ - ring_.size();
  }
  std::size_t ring_size() const { return ring_.size(); }

  /// Live engine/ring/quarantine stats as a compact JSON object (the
  /// /streamz endpoint body).
  std::string streamz_json() const;

  std::string journal_path() const;
  std::string snapshot_path() const;

 private:
  void write_snapshot();
  void consume_line(StampedLine item);

  ServeConfig config_;
  std::unique_ptr<EventSource> source_;
  StreamEngine engine_;
  EventRing ring_;
  PoisonQuarantine quarantine_;
  std::unique_ptr<JournalWriter> journal_;
  ServeReport report_;
  std::uint64_t next_ordinal_ = 0;  // next consumed-line ordinal to assign
  bool recovered_ = false;
};

}  // namespace fs::stream
