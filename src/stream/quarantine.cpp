#include "stream/quarantine.h"

#include <sstream>

#include "obs/metrics.h"

namespace fs::stream {

void PoisonQuarantine::add(std::uint64_t source_index, RejectReason reason,
                           std::string_view line) {
  ++total_;
  ++counts_[static_cast<std::size_t>(reason)];
  if (samples_.size() < max_samples_)
    samples_.push_back(Record{source_index, reason, std::string(line)});
  if (obs::metrics_enabled())
    obs::metrics()
        .counter("stream.quarantined_total",
                 {{"reason", reject_reason_name(reason)}},
                 "stream events routed to the poison quarantine, by reason")
        .add(1);
  if (diagnostics_ != nullptr)
    diagnostics_->report(util::Severity::kWarning, reject_error_code(reason),
                         "stream",
                         std::string("quarantined (") +
                             reject_reason_name(reason) + ") line " +
                             std::to_string(source_index) + ": '" +
                             std::string(line) + "'");
}

std::string PoisonQuarantine::summary() const {
  std::ostringstream oss;
  oss << "quarantined " << total_;
  if (total_ > 0) {
    oss << " (";
    bool first = true;
    for (std::size_t i = 0; i < kRejectReasonCount; ++i) {
      if (counts_[i] == 0) continue;
      if (!first) oss << ", ";
      first = false;
      oss << reject_reason_name(static_cast<RejectReason>(i)) << " "
          << counts_[i];
    }
    oss << ")";
  }
  return oss.str();
}

}  // namespace fs::stream
