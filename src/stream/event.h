// Wire-level event model for streaming check-in ingestion.
//
// A stream event is one SNAP-format check-in line, optionally extended with
// a sixth column carrying an explicit event id (sources that can redeliver
// — message queues, at-least-once relays — stamp one so the engine can
// deduplicate; plain file tails usually do not):
//
//   <user-ID> \t <ISO-8601 time> \t <lat> \t <lng> \t <location-ID> [\t <event-id>]
//
// Validation applies the batch loader's exact per-record semantics (the
// same ISO-8601 calendar validation and coordinate ranges), so an event the
// stream accepts is an event the batch pipeline would have loaded. Events
// that fail land in the poison quarantine with a structured RejectReason
// instead of poisoning the index.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "data/loader.h"
#include "geo/latlng.h"
#include "geo/time_slots.h"
#include "util/error.h"

namespace fs::stream {

/// One validated (or about-to-be-validated) stream event. `line` keeps the
/// wire bytes verbatim: the journal persists them, and dataset assembly
/// re-parses nothing.
struct RawEvent {
  std::uint64_t seq = 0;       // acceptance order, assigned by the daemon
  std::uint64_t event_id = 0;  // explicit wire id (valid when has_explicit_id)
  bool has_explicit_id = false;
  long long user = 0;
  geo::Timestamp time = 0;
  geo::LatLng location;
  long long poi = 0;
  std::string line;
};

/// Why an event was quarantined instead of applied. The first four mirror
/// the batch loader's quarantine taxonomy; the next two are stream-only
/// (they need ingestion state a batch load does not have); the last two are
/// transport-level (the fs::net wire decoder rejected the frame before a
/// line ever existed — the payload bytes are quarantined so the loss is
/// accounted, never silent).
enum class RejectReason {
  kShortLine,        // fewer than 5 fields
  kBadTimestamp,     // unparseable or impossible calendar date
  kBadNumber,        // unparseable user/poi id or coordinate
  kOutOfRangeCoord,  // |lat| > 90 or |lng| > 180
  kDuplicateEventId, // explicit event id already accepted
  kStaleTimestamp,   // older than the watermark minus the lateness budget
  kFrameCorrupt,     // wire frame failed its CRC32 check
  kFrameMalformed,   // wire frame with bad magic/type or implausible length
};

inline constexpr std::size_t kRejectReasonCount = 8;

const char* reject_reason_name(RejectReason reason);

/// The fs::Error code a quarantined event maps to: every reject is a
/// kParse-class input defect (the record is unusable as data), which keeps
/// quarantine diagnostics on the same taxonomy the batch loader reports.
ErrorCode reject_error_code(RejectReason reason);

/// Parses and validates one wire line into `out` (seq is left untouched).
/// Returns std::nullopt on success, the reject reason otherwise. Blank
/// lines are the caller's to skip — they are not events.
std::optional<RejectReason> parse_event_line(std::string_view line,
                                             RawEvent& out);

}  // namespace fs::stream
