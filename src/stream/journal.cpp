#include "stream/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/binary_io.h"
#include "util/error.h"
#include "util/failpoint.h"

namespace fs::stream {
namespace {

namespace fp = util::failpoint;

constexpr std::uint32_t kFrameMagic = 0x464A4C31;  // "1LJF" on disk
constexpr char kJournalHeader[8] = {'F', 'S', 'J', 'R', 'N', 'L', '1', '\0'};
constexpr std::size_t kFrameHeaderBytes = 3 * sizeof(std::uint32_t);

std::string encode_payload(const JournalRecord& record) {
  std::ostringstream buffer(std::ios::binary);
  util::BinaryWriter w(buffer);
  w.u64(static_cast<std::uint64_t>(record.type));
  w.u64(record.source_index);
  switch (record.type) {
    case FrameType::kAccepted: {
      const RawEvent& e = record.event;
      w.u64(e.seq);
      w.u64(e.event_id);
      w.u64(e.has_explicit_id ? 1 : 0);
      w.i64(e.user);
      w.i64(e.time);
      w.f64(e.location.lat);
      w.f64(e.location.lng);
      w.i64(e.poi);
      w.str(e.line);
      break;
    }
    case FrameType::kQuarantined:
      w.u64(static_cast<std::uint64_t>(record.reason));
      w.str(record.line);
      break;
    case FrameType::kShed:
      w.str(record.line);
      break;
  }
  return std::move(buffer).str();
}

/// Decodes one payload; throws on any malformed field (the caller treats
/// that like a CRC failure: the prefix before this frame is the valid one).
JournalRecord decode_payload(const std::string& payload) {
  std::istringstream buffer(payload, std::ios::binary);
  util::BinaryReader r(buffer);
  JournalRecord record;
  const auto type = r.u64();
  if (type < 1 || type > 3)
    throw CorruptCheckpoint("journal frame with unknown type " +
                            std::to_string(type));
  record.type = static_cast<FrameType>(type);
  record.source_index = r.u64();
  switch (record.type) {
    case FrameType::kAccepted: {
      RawEvent& e = record.event;
      e.seq = r.u64();
      e.event_id = r.u64();
      e.has_explicit_id = r.u64() != 0;
      e.user = r.i64();
      e.time = r.i64();
      e.location.lat = r.f64();
      e.location.lng = r.f64();
      e.poi = r.i64();
      e.line = r.str();
      break;
    }
    case FrameType::kQuarantined: {
      const auto reason = r.u64();
      if (reason >= kRejectReasonCount)
        throw CorruptCheckpoint("journal quarantine frame with unknown reason");
      record.reason = static_cast<RejectReason>(reason);
      record.line = r.str();
      break;
    }
    case FrameType::kShed:
      record.line = r.str();
      break;
  }
  return record;
}

}  // namespace

JournalWriter::JournalWriter(const std::string& path) : path_(path) {
  std::error_code ec;
  const auto existing = std::filesystem::file_size(path_, ec);
  const bool fresh = ec || existing < sizeof(kJournalHeader);
  const int flags = O_WRONLY | O_CREAT | (fresh ? O_TRUNC : O_APPEND);
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) throw IoError("cannot open journal for writing: " + path_);
  if (fresh) {
    // New (or hopelessly short) file: start from a clean header.
    if (!util::write_all_eintr(fd_, kJournalHeader, sizeof(kJournalHeader)))
      throw IoError("journal header write failed: " + path_);
    bytes_ = sizeof(kJournalHeader);
  } else {
    bytes_ = existing;
  }
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void JournalWriter::append_frame(const std::string& payload) {
  std::string frame;
  frame.resize(kFrameHeaderBytes);
  const std::uint32_t magic = kFrameMagic;
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = util::crc32(payload.data(), payload.size());
  std::memcpy(frame.data(), &magic, sizeof(magic));
  std::memcpy(frame.data() + 4, &len, sizeof(len));
  std::memcpy(frame.data() + 8, &crc, sizeof(crc));
  frame += payload;

  const std::size_t writable =
      fp::truncate("stream.journal.torn_write", frame.size());
  if (!util::write_all_eintr(fd_, frame.data(), writable))
    throw IoError("journal append failed: " + path_);
  bytes_ += writable;
  if (writable != frame.size())
    throw IoError("journal torn write injected at " + path_ + " (wrote " +
                  std::to_string(writable) + "/" +
                  std::to_string(frame.size()) + " bytes)");
}

void JournalWriter::append_accepted(std::uint64_t source_index,
                                    const RawEvent& event) {
  JournalRecord record;
  record.type = FrameType::kAccepted;
  record.source_index = source_index;
  record.event = event;
  append_frame(encode_payload(record));
}

void JournalWriter::append_quarantined(std::uint64_t source_index,
                                       RejectReason reason,
                                       std::string_view line) {
  JournalRecord record;
  record.type = FrameType::kQuarantined;
  record.source_index = source_index;
  record.reason = reason;
  record.line.assign(line);
  append_frame(encode_payload(record));
}

void JournalWriter::append_shed(std::uint64_t source_index,
                                std::string_view line) {
  JournalRecord record;
  record.type = FrameType::kShed;
  record.source_index = source_index;
  record.line.assign(line);
  append_frame(encode_payload(record));
}

void JournalWriter::flush() {
  // Appends are unbuffered write(2) calls: nothing userspace-side to flush.
  // Kept as the semantic point where a tick's frames are "handed off".
}

void JournalWriter::sync() {
  if (!util::fsync_eintr(fd_)) throw IoError("journal fsync failed: " + path_);
}

RecoveredJournal recover_journal(const std::string& path) {
  RecoveredJournal result;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    result.missing = true;
    return result;
  }
  char header[sizeof(kJournalHeader)];
  in.read(header, sizeof(header));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(header)) ||
      std::memcmp(header, kJournalHeader, sizeof(header)) != 0) {
    // Unrecognised or torn header: nothing in this file is trustworthy.
    result.truncated_tail = true;
    return result;
  }
  result.valid_bytes = sizeof(header);
  while (true) {
    char frame_header[kFrameHeaderBytes];
    in.read(frame_header, sizeof(frame_header));
    if (in.gcount() == 0) break;  // clean end of journal
    if (in.gcount() != static_cast<std::streamsize>(sizeof(frame_header))) {
      result.truncated_tail = true;
      break;
    }
    std::uint32_t magic = 0, len = 0, crc = 0;
    std::memcpy(&magic, frame_header, sizeof(magic));
    std::memcpy(&len, frame_header + 4, sizeof(len));
    std::memcpy(&crc, frame_header + 8, sizeof(crc));
    if (magic != kFrameMagic) {
      result.truncated_tail = true;
      break;
    }
    std::string payload(len, '\0');
    in.read(payload.data(), static_cast<std::streamsize>(len));
    if (in.gcount() != static_cast<std::streamsize>(len)) {
      result.truncated_tail = true;
      break;
    }
    if (util::crc32(payload.data(), payload.size()) != crc) {
      result.truncated_tail = true;
      break;
    }
    try {
      result.records.push_back(decode_payload(payload));
    } catch (const Error&) {
      result.truncated_tail = true;
      break;
    } catch (const std::runtime_error&) {  // BinaryReader short read
      result.truncated_tail = true;
      break;
    }
    result.valid_bytes += kFrameHeaderBytes + len;
  }
  return result;
}

void truncate_journal(const std::string& path, std::uint64_t valid_bytes) {
  std::error_code ec;
  std::filesystem::resize_file(path, valid_bytes, ec);
  if (ec)
    throw IoError("cannot truncate journal " + path + " to " +
                  std::to_string(valid_bytes) + " bytes: " + ec.message());
}

void reset_journal(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot reset journal: " + path);
  out.write(kJournalHeader, sizeof(kJournalHeader));
  out.flush();
  if (!out) throw IoError("journal reset write failed: " + path);
}

// ---- snapshots ---------------------------------------------------------

void save_snapshot(const std::string& path, const Snapshot& snapshot) {
  const std::string tmp = path + ".tmp";
  try {
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) throw IoError("cannot open snapshot tmp: " + tmp);
      util::BinaryWriter w(out);
      w.tag("FSSN");
      // Version 2 widened quarantine_counts for the transport-level reject
      // reasons (frame_corrupt/frame_malformed). v1 snapshots are refused by
      // load_snapshot, which falls back to a full journal replay.
      w.u64(2);
      w.crc_begin();
      w.u64(snapshot.config_fingerprint);
      w.u64(snapshot.consumed_lines);
      w.u64(snapshot.shed_total);
      for (const auto count : snapshot.quarantine_counts) w.u64(count);
      w.u64(snapshot.events.size());
      for (const auto& e : snapshot.events) {
        w.u64(e.seq);
        w.u64(e.event_id);
        w.u64(e.has_explicit_id ? 1 : 0);
        w.i64(e.user);
        w.i64(e.time);
        w.f64(e.location.lat);
        w.f64(e.location.lng);
        w.i64(e.poi);
        w.str(e.line);
      }
      w.crc_end();
      out.flush();
      if (!out) throw IoError("snapshot write failed: " + tmp);
    }
    // Durability barrier: the tmp's bytes must be on disk before the rename
    // publishes it, and the rename itself is only durable once the parent
    // directory's entry is synced — otherwise a crash can leave a published
    // name pointing at unwritten data, or silently revert to the old file.
    if (!util::fsync_path(tmp)) throw IoError("snapshot fsync failed: " + tmp);
    std::filesystem::rename(tmp, path);
    if (!util::fsync_parent_dir(path))
      throw IoError("snapshot directory fsync failed for: " + path);
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw;
  }
}

std::optional<Snapshot> load_snapshot(const std::string& path,
                                      std::uint64_t expected_fingerprint) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  try {
    util::BinaryReader r(in);
    r.expect_tag("FSSN");
    if (r.u64() != 2) return std::nullopt;
    r.crc_begin();
    Snapshot snapshot;
    snapshot.config_fingerprint = r.u64();
    snapshot.consumed_lines = r.u64();
    snapshot.shed_total = r.u64();
    for (auto& count : snapshot.quarantine_counts) count = r.u64();
    const auto n = r.u64();
    snapshot.events.resize(n);
    for (auto& e : snapshot.events) {
      e.seq = r.u64();
      e.event_id = r.u64();
      e.has_explicit_id = r.u64() != 0;
      e.user = r.i64();
      e.time = r.i64();
      e.location.lat = r.f64();
      e.location.lng = r.f64();
      e.poi = r.i64();
      e.line = r.str();
    }
    r.crc_end();
    if (snapshot.config_fingerprint != expected_fingerprint)
      return std::nullopt;
    return snapshot;
  } catch (const std::runtime_error&) {
    // Torn, corrupt, or wrong-format snapshot: recovery replays the journal.
    return std::nullopt;
  }
}

}  // namespace fs::stream
