#include "stream/event.h"

#include "util/strings.h"

namespace fs::stream {

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::kShortLine: return "short_line";
    case RejectReason::kBadTimestamp: return "bad_timestamp";
    case RejectReason::kBadNumber: return "bad_number";
    case RejectReason::kOutOfRangeCoord: return "out_of_range";
    case RejectReason::kDuplicateEventId: return "duplicate_event_id";
    case RejectReason::kStaleTimestamp: return "stale_timestamp";
    case RejectReason::kFrameCorrupt: return "frame_corrupt";
    case RejectReason::kFrameMalformed: return "frame_malformed";
  }
  return "unknown";
}

ErrorCode reject_error_code(RejectReason reason) {
  (void)reason;
  return ErrorCode::kParse;
}

std::optional<RejectReason> parse_event_line(std::string_view line,
                                             RawEvent& out) {
  const auto trimmed = util::trim(line);
  const auto fields = util::split_whitespace(trimmed);
  if (fields.size() < 5) return RejectReason::kShortLine;
  out.line.assign(trimmed);
  out.has_explicit_id = false;
  out.event_id = 0;
  try {
    out.user = util::parse_int(fields[0]);
    out.location.lat = util::parse_double(fields[2]);
    out.location.lng = util::parse_double(fields[3]);
    out.poi = util::parse_int(fields[4]);
    if (fields.size() >= 6) {
      out.event_id = static_cast<std::uint64_t>(util::parse_int(fields[5]));
      out.has_explicit_id = true;
    }
  } catch (const std::invalid_argument&) {
    return RejectReason::kBadNumber;
  }
  try {
    out.time = data::parse_iso8601_utc(std::string(fields[1]));
  } catch (const ParseError&) {
    return RejectReason::kBadTimestamp;
  }
  if (out.location.lat < -90.0 || out.location.lat > 90.0 ||
      out.location.lng < -180.0 || out.location.lng > 180.0)
    return RejectReason::kOutOfRangeCoord;
  return std::nullopt;
}

}  // namespace fs::stream
