// Skip-gram with negative sampling (word2vec-style) over walk corpora.
//
// Both embedding baselines learn node vectors whose cosine similarity
// approximates co-occurrence in random walks; friendship is then scored by
// vector similarity, exactly the mechanism of walk2friends (Backes et al.,
// CCS'17) and the mobility-relationship embedding of Yu et al.
#pragma once

#include <cstdint>
#include <vector>

#include "embed/walks.h"
#include "nn/matrix.h"

namespace fs::embed {

struct SkipGramConfig {
  std::size_t dim = 32;
  std::size_t window = 3;
  std::size_t negatives = 5;
  int epochs = 4;
  double learning_rate = 0.025;
  std::uint64_t seed = 17;
};

/// Trains SGNS over the corpus. Returns a (vocab_size x dim) embedding
/// matrix (the "input" vectors, as is standard).
nn::Matrix train_skipgram(const std::vector<std::vector<VocabId>>& corpus,
                          std::size_t vocab_size,
                          const SkipGramConfig& config);

/// Cosine similarity of two embedding rows; 0 when either is all-zero.
double cosine_similarity(const nn::Matrix& embeddings, VocabId a, VocabId b);

}  // namespace fs::embed
