#include "embed/walks.h"

#include <stdexcept>

namespace fs::embed {

void WeightedGraph::add_weight(VocabId a, VocabId b, double weight) {
  if (a >= node_count() || b >= node_count())
    throw std::out_of_range("WeightedGraph::add_weight: node out of range");
  if (weight <= 0.0)
    throw std::invalid_argument("WeightedGraph::add_weight: weight <= 0");
  auto bump = [&](VocabId from, VocabId to) {
    for (Neighbor& n : adjacency_[from]) {
      if (n.node == to) {
        n.weight += weight;
        return;
      }
    }
    adjacency_[from].push_back(Neighbor{to, weight});
  };
  bump(a, b);
  if (a != b) bump(b, a);
}

std::vector<VocabId> WeightedGraph::random_walk(VocabId start,
                                                std::size_t length,
                                                util::Rng& rng) const {
  std::vector<VocabId> walk;
  walk.reserve(length);
  VocabId current = start;
  walk.push_back(current);
  while (walk.size() < length) {
    const auto& nbrs = adjacency_.at(current);
    if (nbrs.empty()) break;
    // Weighted choice; linear scan is fine at social-graph degrees.
    double total = 0.0;
    for (const Neighbor& n : nbrs) total += n.weight;
    double target = rng.uniform() * total;
    VocabId chosen = nbrs.back().node;
    for (const Neighbor& n : nbrs) {
      target -= n.weight;
      if (target < 0.0) {
        chosen = n.node;
        break;
      }
    }
    walk.push_back(chosen);
    current = chosen;
  }
  return walk;
}

bool WeightedGraph::has_edge(VocabId a, VocabId b) const {
  const auto& list = adjacency_.at(a).size() <= adjacency_.at(b).size()
                         ? adjacency_[a]
                         : adjacency_[b];
  const VocabId target =
      adjacency_[a].size() <= adjacency_[b].size() ? b : a;
  for (const Neighbor& n : list)
    if (n.node == target) return true;
  return false;
}

namespace {

std::vector<VocabId> node2vec_walk(const WeightedGraph& g, VocabId start,
                                   const Node2VecConfig& cfg,
                                   util::Rng& rng) {
  std::vector<VocabId> walk{start};
  std::vector<double> weights;
  while (walk.size() < cfg.walks.walk_length) {
    const VocabId current = walk.back();
    const auto& nbrs = g.neighbors(current);
    if (nbrs.empty()) break;
    if (walk.size() == 1 || (cfg.p == 1.0 && cfg.q == 1.0)) {
      // First step (or unbiased config): plain weighted choice.
      double total = 0.0;
      for (const auto& n : nbrs) total += n.weight;
      double target = rng.uniform() * total;
      VocabId chosen = nbrs.back().node;
      for (const auto& n : nbrs) {
        target -= n.weight;
        if (target < 0.0) {
          chosen = n.node;
          break;
        }
      }
      walk.push_back(chosen);
      continue;
    }
    const VocabId previous = walk[walk.size() - 2];
    weights.resize(nbrs.size());
    double total = 0.0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      double w = nbrs[i].weight;
      if (nbrs[i].node == previous) {
        w /= cfg.p;
      } else if (!g.has_edge(previous, nbrs[i].node)) {
        w /= cfg.q;
      }
      weights[i] = w;
      total += w;
    }
    double target = rng.uniform() * total;
    VocabId chosen = nbrs.back().node;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      target -= weights[i];
      if (target < 0.0) {
        chosen = nbrs[i].node;
        break;
      }
    }
    walk.push_back(chosen);
  }
  return walk;
}

}  // namespace

std::vector<std::vector<VocabId>> generate_node2vec_walks(
    const WeightedGraph& graph, const Node2VecConfig& config,
    util::Rng& rng) {
  if (config.p <= 0.0 || config.q <= 0.0)
    throw std::invalid_argument("generate_node2vec_walks: p, q must be > 0");
  std::vector<std::vector<VocabId>> corpus;
  for (VocabId v = 0; v < graph.node_count(); ++v) {
    if (graph.degree(v) == 0) continue;
    for (std::size_t w = 0; w < config.walks.walks_per_node; ++w)
      corpus.push_back(node2vec_walk(graph, v, config, rng));
  }
  return corpus;
}

std::vector<std::vector<VocabId>> generate_walks(const WeightedGraph& graph,
                                                 const WalkConfig& config,
                                                 util::Rng& rng) {
  std::vector<std::vector<VocabId>> corpus;
  for (VocabId v = 0; v < graph.node_count(); ++v) {
    if (graph.degree(v) == 0) continue;
    for (std::size_t w = 0; w < config.walks_per_node; ++w)
      corpus.push_back(graph.random_walk(v, config.walk_length, rng));
  }
  return corpus;
}

}  // namespace fs::embed
