// Weighted graphs and random-walk corpus generation — the substrate under
// the two graph-embedding baselines (walk2friends' user-location bipartite
// walks, Yu et al.'s meeting-graph walks).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace fs::embed {

using VocabId = std::uint32_t;

/// Adjacency-list weighted graph over dense vocabulary ids. Nodes can model
/// anything (users, POIs); bipartite graphs simply place the two node kinds
/// in disjoint id ranges.
class WeightedGraph {
 public:
  explicit WeightedGraph(std::size_t node_count)
      : adjacency_(node_count) {}

  std::size_t node_count() const { return adjacency_.size(); }

  /// Adds weight to the (a, b) edge in both directions, creating it if
  /// absent. Weight must be positive.
  void add_weight(VocabId a, VocabId b, double weight);

  struct Neighbor {
    VocabId node;
    double weight;
  };

  const std::vector<Neighbor>& neighbors(VocabId v) const {
    return adjacency_.at(v);
  }

  std::size_t degree(VocabId v) const { return adjacency_.at(v).size(); }

  /// One weighted random walk of `length` vertices starting at `start`
  /// (fewer if a dead end is reached).
  std::vector<VocabId> random_walk(VocabId start, std::size_t length,
                                   util::Rng& rng) const;

  /// True if an edge (a, b) exists (linear scan of the shorter list).
  bool has_edge(VocabId a, VocabId b) const;

 private:
  std::vector<std::vector<Neighbor>> adjacency_;
};

struct WalkConfig {
  std::size_t walks_per_node = 10;
  std::size_t walk_length = 24;
};

/// Generates `walks_per_node` walks from every node with outgoing edges.
std::vector<std::vector<VocabId>> generate_walks(const WeightedGraph& graph,
                                                 const WalkConfig& config,
                                                 util::Rng& rng);

/// node2vec-style second-order walk biases (Grover & Leskovec, KDD'16):
/// the unnormalized probability of stepping from v to x, having arrived
/// from t, is w(v,x)/p if x == t (return), w(v,x) if x is a neighbor of t
/// (BFS-like), and w(v,x)/q otherwise (DFS-like). p = q = 1 recovers the
/// plain weighted walk.
struct Node2VecConfig {
  double p = 1.0;  // return parameter
  double q = 1.0;  // in-out parameter
  WalkConfig walks;
};

std::vector<std::vector<VocabId>> generate_node2vec_walks(
    const WeightedGraph& graph, const Node2VecConfig& config,
    util::Rng& rng);

}  // namespace fs::embed
