#include "embed/skipgram.h"

#include <cmath>
#include <stdexcept>

namespace fs::embed {

nn::Matrix train_skipgram(const std::vector<std::vector<VocabId>>& corpus,
                          std::size_t vocab_size,
                          const SkipGramConfig& config) {
  if (vocab_size == 0)
    throw std::invalid_argument("train_skipgram: empty vocabulary");
  util::Rng rng(config.seed);

  // Unigram table with the standard 0.75 smoothing for negative sampling.
  std::vector<double> counts(vocab_size, 0.0);
  for (const auto& walk : corpus)
    for (VocabId v : walk) {
      if (v >= vocab_size)
        throw std::out_of_range("train_skipgram: token out of vocabulary");
      counts[v] += 1.0;
    }
  std::vector<double> noise(vocab_size);
  for (std::size_t v = 0; v < vocab_size; ++v)
    noise[v] = std::pow(counts[v], 0.75);
  // Alias-free sampling via cumulative table lookup would be O(log n); the
  // weighted_index linear scan is too slow for hot negative sampling, so
  // build a fixed-size sampling table (word2vec's approach).
  std::vector<VocabId> noise_table;
  {
    const std::size_t table_size = std::max<std::size_t>(1 << 16, vocab_size);
    noise_table.reserve(table_size);
    double total = 0.0;
    for (double w : noise) total += w;
    if (total <= 0.0) total = 1.0;
    double cum = 0.0;
    std::size_t filled = 0;
    for (std::size_t v = 0; v < vocab_size; ++v) {
      cum += noise[v];
      const auto want = static_cast<std::size_t>(
          cum / total * static_cast<double>(table_size));
      for (; filled < want && filled < table_size; ++filled)
        noise_table.push_back(static_cast<VocabId>(v));
    }
    while (noise_table.size() < table_size)
      noise_table.push_back(static_cast<VocabId>(vocab_size - 1));
  }

  // Input and output vector tables.
  const std::size_t dim = config.dim;
  nn::Matrix in(vocab_size, dim);
  nn::Matrix out(vocab_size, dim);
  for (std::size_t i = 0; i < in.size(); ++i)
    in.data()[i] = (rng.uniform() - 0.5) / static_cast<double>(dim);
  // out starts at zero (word2vec convention).

  std::vector<double> grad_center(dim);
  auto sigmoid = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const double lr = config.learning_rate *
                      (1.0 - static_cast<double>(epoch) /
                                 static_cast<double>(config.epochs));
    for (const auto& walk : corpus) {
      for (std::size_t pos = 0; pos < walk.size(); ++pos) {
        const VocabId center = walk[pos];
        const std::size_t lo =
            pos >= config.window ? pos - config.window : 0;
        const std::size_t hi =
            std::min(walk.size() - 1, pos + config.window);
        for (std::size_t cpos = lo; cpos <= hi; ++cpos) {
          if (cpos == pos) continue;
          const VocabId context = walk[cpos];
          std::fill(grad_center.begin(), grad_center.end(), 0.0);
          double* vc = in.row(center);
          // One positive plus `negatives` noise samples.
          for (std::size_t s = 0; s <= config.negatives; ++s) {
            VocabId target;
            double label;
            if (s == 0) {
              target = context;
              label = 1.0;
            } else {
              target = noise_table[rng.index(noise_table.size())];
              if (target == context) continue;
              label = 0.0;
            }
            double* vo = out.row(target);
            double dot = 0.0;
            for (std::size_t d = 0; d < dim; ++d) dot += vc[d] * vo[d];
            const double g = (sigmoid(dot) - label) * lr;
            for (std::size_t d = 0; d < dim; ++d) {
              grad_center[d] += g * vo[d];
              vo[d] -= g * vc[d];
            }
          }
          for (std::size_t d = 0; d < dim; ++d) vc[d] -= grad_center[d];
        }
      }
    }
  }
  return in;
}

double cosine_similarity(const nn::Matrix& embeddings, VocabId a, VocabId b) {
  const std::size_t dim = embeddings.cols();
  const double* va = embeddings.row(a);
  const double* vb = embeddings.row(b);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t d = 0; d < dim; ++d) {
    dot += va[d] * vb[d];
    na += va[d] * va[d];
    nb += vb[d] * vb[d];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace fs::embed
