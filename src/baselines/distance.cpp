#include "baselines/distance.h"

namespace fs::baselines {

geo::LatLng DistanceAttack::center_location(const data::Dataset& dataset,
                                            data::UserId user) {
  const auto trajectory = dataset.trajectory(user);
  if (trajectory.empty()) return {};
  double lat = 0.0, lng = 0.0;
  for (const data::CheckIn& c : trajectory) {
    lat += c.location.lat;
    lng += c.location.lng;
  }
  const auto n = static_cast<double>(trajectory.size());
  return {lat / n, lng / n};
}

std::vector<int> DistanceAttack::infer(
    const data::Dataset& dataset,
    const std::vector<data::UserPair>& train_pairs,
    const std::vector<int>& train_labels,
    const std::vector<data::UserPair>& test_pairs) {
  std::vector<geo::LatLng> centers(dataset.user_count());
  for (data::UserId u = 0; u < dataset.user_count(); ++u)
    centers[u] = center_location(dataset, u);

  auto score = [&](const data::UserPair& p) {
    // Negated distance: nearer centers -> higher friendship score.
    return -geo::equirectangular_m(centers[p.first], centers[p.second]);
  };

  std::vector<double> train_scores(train_pairs.size());
  for (std::size_t i = 0; i < train_pairs.size(); ++i)
    train_scores[i] = score(train_pairs[i]);
  const TunedThreshold tuned = tune_threshold(train_scores, train_labels);

  std::vector<double> test_scores(test_pairs.size());
  for (std::size_t i = 0; i < test_pairs.size(); ++i)
    test_scores[i] = score(test_pairs[i]);
  return apply_threshold(test_scores, tuned.threshold);
}

}  // namespace fs::baselines
