// Co-location-based knowledge attack (after Hsieh et al., CIKM'15: "Where
// you go reveals who you know"). Scores a pair by its co-location evidence
// weighted by location rarity; a pair with zero co-locations can never be
// predicted as friends — the defining limitation the paper contrasts
// against (Fig 12 notes its F1 is undefined at zero common locations).
#pragma once

#include "baselines/baseline.h"

namespace fs::baselines {

struct CoLocationConfig {
  /// Optional temporal co-occurrence bonus: check-ins at the same POI
  /// within the window count as a meeting. DISABLED by default — the
  /// knowledge-based method scores footprint overlap only; it cannot learn
  /// the predictive power of timing (the limitation the paper highlights).
  /// Set meeting_bonus > 0 for an enhanced variant.
  geo::Timestamp meeting_window = 24 * 3600;
  double meeting_bonus = 0.0;
};

class CoLocationAttack final : public FriendshipAttack {
 public:
  explicit CoLocationAttack(const CoLocationConfig& config = {})
      : config_(config) {}

  std::string name() const override { return "co-location"; }

  std::vector<int> infer(const data::Dataset& dataset,
                         const std::vector<data::UserPair>& train_pairs,
                         const std::vector<int>& train_labels,
                         const std::vector<data::UserPair>& test_pairs)
      override;

  /// The raw pair score (exposed for tests and the Fig 12/13 stratified
  /// analyses).
  static double pair_score(const data::Dataset& dataset, data::UserId a,
                           data::UserId b, const CoLocationConfig& config);

 private:
  CoLocationConfig config_;
};

}  // namespace fs::baselines
