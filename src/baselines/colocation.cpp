#include "baselines/colocation.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace fs::baselines {

namespace {

/// Number of distinct visitors per POI (location popularity), computed once
/// per dataset and memoized by the caller.
std::unordered_map<data::PoiId, std::size_t> poi_popularity(
    const data::Dataset& dataset) {
  std::unordered_map<data::PoiId, std::size_t> popularity;
  for (data::UserId u = 0; u < dataset.user_count(); ++u)
    for (data::PoiId p : dataset.visited_pois(u)) ++popularity[p];
  return popularity;
}

}  // namespace

double CoLocationAttack::pair_score(const data::Dataset& dataset,
                                    data::UserId a, data::UserId b,
                                    const CoLocationConfig& config) {
  // Rarity-weighted common POIs: meeting at an unpopular place is stronger
  // evidence of friendship than meeting at a hub (location-entropy idea).
  static thread_local const data::Dataset* cached_ds = nullptr;
  static thread_local std::unordered_map<data::PoiId, std::size_t> popularity;
  if (cached_ds != &dataset) {
    popularity = poi_popularity(dataset);
    cached_ds = &dataset;
  }

  const std::vector<data::PoiId> pa = dataset.visited_pois(a);
  const std::vector<data::PoiId> pb = dataset.visited_pois(b);
  std::vector<data::PoiId> common;
  std::set_intersection(pa.begin(), pa.end(), pb.begin(), pb.end(),
                        std::back_inserter(common));
  if (common.empty()) return 0.0;

  double score = 0.0;
  for (data::PoiId p : common) {
    const auto it = popularity.find(p);
    const double pop = it == popularity.end()
                           ? 1.0
                           : static_cast<double>(it->second);
    score += 1.0 / std::log(1.0 + pop + 1.0);
  }

  // Optional temporal meetings: same POI within the window.
  if (config.meeting_bonus > 0.0) {
    const auto ta = dataset.trajectory(a);
    const auto tb = dataset.trajectory(b);
    std::size_t meetings = 0;
    for (const data::CheckIn& ca : ta)
      for (const data::CheckIn& cb : tb)
        if (ca.poi == cb.poi &&
            std::llabs(static_cast<long long>(ca.time - cb.time)) <=
                config.meeting_window)
          ++meetings;
    score +=
        config.meeting_bonus * std::log1p(static_cast<double>(meetings));
  }
  return score;
}

std::vector<int> CoLocationAttack::infer(
    const data::Dataset& dataset,
    const std::vector<data::UserPair>& train_pairs,
    const std::vector<int>& train_labels,
    const std::vector<data::UserPair>& test_pairs) {
  std::vector<double> train_scores(train_pairs.size());
  for (std::size_t i = 0; i < train_pairs.size(); ++i)
    train_scores[i] = pair_score(dataset, train_pairs[i].first,
                                 train_pairs[i].second, config_);
  TunedThreshold tuned = tune_threshold(train_scores, train_labels);
  // Zero co-location evidence can never mean "friends" in this attack.
  tuned.threshold = std::max(tuned.threshold, 1e-12);

  std::vector<double> test_scores(test_pairs.size());
  for (std::size_t i = 0; i < test_pairs.size(); ++i)
    test_scores[i] = pair_score(dataset, test_pairs[i].first,
                                test_pairs[i].second, config_);
  return apply_threshold(test_scores, tuned.threshold);
}

}  // namespace fs::baselines
