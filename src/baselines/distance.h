// Distance-based knowledge attack (after Hsieh & Li, WWW'14): each user is
// reduced to a check-in-frequency-weighted center location; pairs are scored
// by the negated distance between centers.
#pragma once

#include "baselines/baseline.h"
#include "geo/latlng.h"

namespace fs::baselines {

class DistanceAttack final : public FriendshipAttack {
 public:
  std::string name() const override { return "distance"; }

  std::vector<int> infer(const data::Dataset& dataset,
                         const std::vector<data::UserPair>& train_pairs,
                         const std::vector<int>& train_labels,
                         const std::vector<data::UserPair>& test_pairs)
      override;

  /// Frequency-weighted centroid of a user's check-ins.
  static geo::LatLng center_location(const data::Dataset& dataset,
                                     data::UserId user);
};

}  // namespace fs::baselines
