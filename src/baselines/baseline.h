// Common interface for friendship-inference attacks, so FriendSeeker and
// the four baselines (Fig 11) run under one evaluation protocol.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"
#include "ml/metrics.h"

namespace fs::baselines {

/// A friendship-inference attack: trains on labeled pairs, predicts the
/// test pairs. Implementations must not look at test labels.
class FriendshipAttack {
 public:
  virtual ~FriendshipAttack() = default;

  virtual std::string name() const = 0;

  virtual std::vector<int> infer(
      const data::Dataset& dataset,
      const std::vector<data::UserPair>& train_pairs,
      const std::vector<int>& train_labels,
      const std::vector<data::UserPair>& test_pairs) = 0;
};

/// Picks the score threshold maximizing F1 on the training scores, then
/// thresholds the test scores with it. Shared by the score-based baselines
/// (the original papers tune an operating point the same way).
struct TunedThreshold {
  double threshold = 0.0;
  double train_f1 = 0.0;
};

TunedThreshold tune_threshold(const std::vector<double>& train_scores,
                              const std::vector<int>& train_labels);

std::vector<int> apply_threshold(const std::vector<double>& scores,
                                 double threshold);

}  // namespace fs::baselines
