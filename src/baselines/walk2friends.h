// walk2friends (Backes et al., CCS'17): random walks on the user-location
// bipartite graph, skip-gram embeddings, cosine-similarity link scoring.
#pragma once

#include "baselines/baseline.h"
#include "embed/skipgram.h"

namespace fs::baselines {

struct Walk2FriendsConfig {
  embed::WalkConfig walks;        // walks per node / walk length
  embed::SkipGramConfig skipgram;
  std::uint64_t seed = 23;
};

class Walk2FriendsAttack final : public FriendshipAttack {
 public:
  explicit Walk2FriendsAttack(const Walk2FriendsConfig& config = {})
      : config_(config) {}

  std::string name() const override { return "walk2friends"; }

  std::vector<int> infer(const data::Dataset& dataset,
                         const std::vector<data::UserPair>& train_pairs,
                         const std::vector<int>& train_labels,
                         const std::vector<data::UserPair>& test_pairs)
      override;

  /// Builds the user-location bipartite graph: users occupy ids
  /// [0, user_count), POIs [user_count, user_count + poi_count); edge
  /// weight = the user's check-in count at the POI.
  static embed::WeightedGraph build_bipartite(const data::Dataset& dataset);

 private:
  Walk2FriendsConfig config_;
};

}  // namespace fs::baselines
