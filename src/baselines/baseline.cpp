#include "baselines/baseline.h"

namespace fs::baselines {

TunedThreshold tune_threshold(const std::vector<double>& train_scores,
                              const std::vector<int>& train_labels) {
  const ml::TunedThreshold tuned =
      ml::tune_f1_threshold(train_scores, train_labels);
  return TunedThreshold{tuned.threshold, tuned.train_f1};
}

std::vector<int> apply_threshold(const std::vector<double>& scores,
                                 double threshold) {
  std::vector<int> out(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i)
    out[i] = scores[i] >= threshold ? 1 : 0;
  return out;
}

}  // namespace fs::baselines
