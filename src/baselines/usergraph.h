// User-graph embedding (after Yu et al., IMWUT'18): random walks on a user
// meeting graph whose edge weights are meeting frequencies reweighted by
// POI attributes (category weight and popularity), then skip-gram
// embeddings and cosine scoring.
#pragma once

#include "baselines/baseline.h"
#include "embed/skipgram.h"

namespace fs::baselines {

struct UserGraphConfig {
  /// Two check-ins at the same POI within this window count as a meeting.
  geo::Timestamp meeting_window = 24 * 3600;
  embed::WalkConfig walks;
  embed::SkipGramConfig skipgram;
  /// Per-category multiplier for meeting weights (prior knowledge in the
  /// original paper); empty = all categories weigh 1.
  std::vector<double> category_weight;
  std::uint64_t seed = 29;
};

class UserGraphAttack final : public FriendshipAttack {
 public:
  explicit UserGraphAttack(const UserGraphConfig& config = {})
      : config_(config) {}

  std::string name() const override { return "user-graph-embedding"; }

  std::vector<int> infer(const data::Dataset& dataset,
                         const std::vector<data::UserPair>& train_pairs,
                         const std::vector<int>& train_labels,
                         const std::vector<data::UserPair>& test_pairs)
      override;

  /// The meeting graph over users: weight = sum over meetings of
  /// category_weight / log(2 + POI popularity).
  static embed::WeightedGraph build_meeting_graph(
      const data::Dataset& dataset, const UserGraphConfig& config);

 private:
  UserGraphConfig config_;
};

}  // namespace fs::baselines
