#include "baselines/usergraph.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace fs::baselines {

embed::WeightedGraph UserGraphAttack::build_meeting_graph(
    const data::Dataset& dataset, const UserGraphConfig& config) {
  // Group check-ins by POI, time-sorted, then find meetings with a sliding
  // window.
  std::vector<std::vector<std::pair<geo::Timestamp, data::UserId>>> by_poi(
      dataset.poi_count());
  std::vector<std::size_t> popularity(dataset.poi_count(), 0);
  for (const data::CheckIn& c : dataset.checkins())
    by_poi[c.poi].emplace_back(c.time, c.user);

  for (data::PoiId p = 0; p < dataset.poi_count(); ++p) {
    auto& events = by_poi[p];
    std::sort(events.begin(), events.end());
    // Popularity = distinct visitors.
    std::vector<data::UserId> visitors;
    for (const auto& [t, u] : events) visitors.push_back(u);
    std::sort(visitors.begin(), visitors.end());
    visitors.erase(std::unique(visitors.begin(), visitors.end()),
                   visitors.end());
    popularity[p] = visitors.size();
  }

  // Accumulate meeting weights, then build the graph in one pass.
  std::map<data::UserPair, double> weight;
  for (data::PoiId p = 0; p < dataset.poi_count(); ++p) {
    const auto& events = by_poi[p];
    if (events.size() < 2) continue;
    const data::Poi& poi = dataset.poi(p);
    double cat_weight = 1.0;
    if (!config.category_weight.empty() &&
        poi.category < config.category_weight.size())
      cat_weight = config.category_weight[poi.category];
    const double popularity_discount =
        1.0 / std::log(2.0 + static_cast<double>(popularity[p]));
    for (std::size_t i = 0; i < events.size(); ++i) {
      for (std::size_t j = i + 1; j < events.size(); ++j) {
        if (events[j].first - events[i].first > config.meeting_window) break;
        const data::UserId a = events[i].second;
        const data::UserId b = events[j].second;
        if (a == b) continue;
        weight[data::make_pair_ordered(a, b)] +=
            cat_weight * popularity_discount;
      }
    }
  }

  embed::WeightedGraph g(dataset.user_count());
  for (const auto& [pair, w] : weight)
    g.add_weight(pair.first, pair.second, w);
  return g;
}

std::vector<int> UserGraphAttack::infer(
    const data::Dataset& dataset,
    const std::vector<data::UserPair>& train_pairs,
    const std::vector<int>& train_labels,
    const std::vector<data::UserPair>& test_pairs) {
  const embed::WeightedGraph meeting =
      build_meeting_graph(dataset, config_);
  util::Rng rng(config_.seed);
  const auto corpus = embed::generate_walks(meeting, config_.walks, rng);
  const nn::Matrix embeddings =
      embed::train_skipgram(corpus, dataset.user_count(), config_.skipgram);

  auto score = [&](const data::UserPair& p) {
    return embed::cosine_similarity(embeddings, p.first, p.second);
  };

  std::vector<double> train_scores(train_pairs.size());
  for (std::size_t i = 0; i < train_pairs.size(); ++i)
    train_scores[i] = score(train_pairs[i]);
  const TunedThreshold tuned = tune_threshold(train_scores, train_labels);

  std::vector<double> test_scores(test_pairs.size());
  for (std::size_t i = 0; i < test_pairs.size(); ++i)
    test_scores[i] = score(test_pairs[i]);
  return apply_threshold(test_scores, tuned.threshold);
}

}  // namespace fs::baselines
