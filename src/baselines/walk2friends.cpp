#include "baselines/walk2friends.h"

#include <map>

namespace fs::baselines {

embed::WeightedGraph Walk2FriendsAttack::build_bipartite(
    const data::Dataset& dataset) {
  embed::WeightedGraph g(dataset.user_count() + dataset.poi_count());
  // Aggregate visit counts before inserting so add_weight's linear probing
  // stays cheap on heavy users.
  std::map<std::pair<data::UserId, data::PoiId>, double> visits;
  for (const data::CheckIn& c : dataset.checkins())
    visits[{c.user, c.poi}] += 1.0;
  for (const auto& [key, weight] : visits)
    g.add_weight(key.first,
                 static_cast<embed::VocabId>(dataset.user_count() +
                                             key.second),
                 weight);
  return g;
}

std::vector<int> Walk2FriendsAttack::infer(
    const data::Dataset& dataset,
    const std::vector<data::UserPair>& train_pairs,
    const std::vector<int>& train_labels,
    const std::vector<data::UserPair>& test_pairs) {
  const embed::WeightedGraph bipartite = build_bipartite(dataset);
  util::Rng rng(config_.seed);
  const auto corpus = embed::generate_walks(bipartite, config_.walks, rng);
  const nn::Matrix embeddings = embed::train_skipgram(
      corpus, dataset.user_count() + dataset.poi_count(), config_.skipgram);

  auto score = [&](const data::UserPair& p) {
    return embed::cosine_similarity(embeddings, p.first, p.second);
  };

  std::vector<double> train_scores(train_pairs.size());
  for (std::size_t i = 0; i < train_pairs.size(); ++i)
    train_scores[i] = score(train_pairs[i]);
  const TunedThreshold tuned = tune_threshold(train_scores, train_labels);

  std::vector<double> test_scores(test_pairs.size());
  for (std::size_t i = 0; i < test_pairs.size(); ++i)
    test_scores[i] = score(test_pairs[i]);
  return apply_threshold(test_scores, tuned.threshold);
}

}  // namespace fs::baselines
