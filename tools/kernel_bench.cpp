// kernel_bench — fs::kern micro-benchmark. Sweeps the GEMM macro-kernel
// and the quantized-KNN lower-bound kernel over every ISA path this host
// supports (pinned per measurement with kern::force_path) and writes a
// machine-readable JSON report: GFLOP/s per (path, shape) and lower-bound
// throughput per path, so kernel regressions show up as a number diff
// instead of a pipeline-level slowdown with no attribution.
//
//   kernel_bench [--out kernel_bench.json] [--threads N] [--min-ms 80]
//                [--quick]
//
// Shapes mirror the pipeline's real products: mini-batch forward/backward
// GEMMs (m = batch), batch encoding (m = corpus rows), and the KNN
// reference scan. --quick shrinks reps and the shape list for CI smoke.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "kern/kern.h"
#include "nn/matrix.h"
#include "obs/json.h"
#include "par/pool.h"
#include "util/aligned.h"
#include "util/args.h"
#include "util/rng.h"

namespace {

using namespace fs;
namespace json = obs::json;

struct Shape {
  std::size_t m, n, k;
  const char* what;  // which pipeline product this stands in for
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Times `body` with rep-doubling until the measured wall clears `min_ms`
/// (one warm-up call first), returning {wall_ms, reps}.
template <typename Body>
std::pair<double, std::size_t> measure(double min_ms, const Body& body) {
  body();  // warm-up: touch pages, resolve dispatch, fill pack scratch
  std::size_t reps = 1;
  for (;;) {
    const double start = now_ms();
    for (std::size_t r = 0; r < reps; ++r) body();
    const double wall = now_ms() - start;
    if (wall >= min_ms || reps >= (1u << 20)) return {wall, reps};
    reps *= 2;
  }
}

json::Object bench_gemm(const Shape& shape, double min_ms, util::Rng& rng) {
  nn::Matrix a(shape.m, shape.k);
  nn::Matrix b(shape.k, shape.n);
  nn::Matrix c(shape.m, shape.n);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.normal();
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.normal();

  const auto [wall_ms, reps] = measure(min_ms, [&] {
    kern::gemm_nn(shape.m, shape.n, shape.k, a.data(), shape.k, b.data(),
                  shape.n, c.data(), shape.n);
  });
  const double flops = 2.0 * static_cast<double>(shape.m) *
                       static_cast<double>(shape.n) *
                       static_cast<double>(shape.k) *
                       static_cast<double>(reps);
  json::Object entry;
  entry["what"] = std::string(shape.what);
  entry["m"] = shape.m;
  entry["n"] = shape.n;
  entry["k"] = shape.k;
  entry["reps"] = reps;
  entry["wall_ms"] = wall_ms;
  entry["gflops"] = wall_ms > 0.0 ? flops / (wall_ms * 1e6) : 0.0;
  return entry;
}

json::Object bench_knn_lb(std::size_t rows, std::size_t dim, double min_ms,
                          util::Rng& rng) {
  std::vector<std::uint8_t, util::AlignedAllocator<std::uint8_t>> codes(
      rows * dim);
  std::vector<float> query(dim), scale(dim), offset(dim), half(dim),
      lb(rows);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.range(0, 255));
  for (std::size_t c = 0; c < dim; ++c) {
    query[c] = static_cast<float>(rng.normal());
    scale[c] = 0.01f;
    offset[c] = -1.0f;
    half[c] = 0.005f;
  }
  const auto [wall_ms, reps] = measure(min_ms, [&] {
    kern::knn_lower_bounds(codes.data(), rows, dim, query.data(),
                           scale.data(), offset.data(), half.data(),
                           lb.data());
  });
  const double total_rows =
      static_cast<double>(rows) * static_cast<double>(reps);
  json::Object entry;
  entry["rows"] = rows;
  entry["dim"] = dim;
  entry["reps"] = reps;
  entry["wall_ms"] = wall_ms;
  entry["mrows_per_s"] =
      wall_ms > 0.0 ? total_rows / (wall_ms * 1e3) : 0.0;
  entry["gbytes_per_s"] =
      wall_ms > 0.0
          ? total_rows * static_cast<double>(dim) / (wall_ms * 1e6)
          : 0.0;
  return entry;
}

int run(const util::ArgParser& args) {
  par::set_threads(static_cast<std::size_t>(args.get_int("threads")));
  const bool quick = args.get_flag("quick");
  const double min_ms = quick ? 5.0 : args.get_double("min-ms");

  // Stand-ins for the pipeline's actual hot products (tiny/gowalla-sized
  // training batches, corpus-wide encodes) plus one square stress shape.
  std::vector<Shape> shapes = {
      {16, 320, 640, "dense.forward (mini-batch)"},
      {320, 640, 16, "dense.grad_weights (tn)"},
      {800, 48, 320, "encode (corpus rows)"},
      {256, 256, 256, "square"},
  };
  if (!quick) shapes.push_back({512, 512, 512, "square-large"});

  json::Array paths;
  for (const kern::IsaPath path : kern::supported_paths()) {
    kern::force_path(path);
    util::Rng rng(20260809);  // same operands for every path
    json::Object section;
    section["path"] = std::string(kern::path_name(path));
    json::Array gemm;
    for (const Shape& shape : shapes)
      gemm.emplace_back(bench_gemm(shape, min_ms, rng));
    section["gemm"] = std::move(gemm);
    section["knn_lb"] =
        bench_knn_lb(quick ? 1024 : 4096, 64, min_ms, rng);
    paths.emplace_back(std::move(section));
  }

  json::Object root;
  root["schema_version"] = 1;
  root["threads"] = par::threads();
  root["paths"] = std::move(paths);

  const json::Value report(std::move(root));
  json::write_file(args.get("out"), report, 2);

  // Human-readable recap: peak GFLOP/s per path.
  for (const json::Value& section : report.at("paths").as_array()) {
    double best = 0.0;
    for (const json::Value& entry : section.at("gemm").as_array())
      best = std::max(best, entry.at("gflops").as_number());
    std::printf("%-7s peak %.2f GFLOP/s, knn_lb %.1f Mrows/s\n",
                section.at("path").as_string().c_str(), best,
                section.at("knn_lb").at("mrows_per_s").as_number());
  }
  std::printf("wrote %s\n", args.get("out").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args;
  args.add_option("out", "kernel_bench.json", "JSON report output file");
  args.add_option("threads", "1",
                  "worker threads for the GEMM parallel region (1 gives "
                  "clean per-ISA numbers; results are identical regardless)");
  args.add_option("min-ms", "80",
                  "minimum measured wall per (path, shape); reps double "
                  "until it is reached");
  args.add_flag("quick", "CI smoke: small shapes, short measurements");
  args.add_flag("help", "show options");
  try {
    args.parse(argc, argv);
    if (args.get_flag("help")) {
      std::fputs(args.help().c_str(), stderr);
      return 0;
    }
    return run(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "kernel_bench: %s\n", e.what());
    return 1;
  }
}
