// scenario_runner: executes a declarative scenario config (the attack x
// defense x world matrix) and emits / validates / diffs the JSON artifact.
//
//   scenario_runner --config cfg.json --out matrix.json [--threads N]
//   scenario_runner --config cfg.json --print-grid
//   scenario_runner --validate matrix.json
//   scenario_runner --diff base.json current.json [--tolerance-scale S]
//                   [--lenient-digests]
//
// Exit codes: 0 ok, 1 failure (out-of-band drift, invalid artifact),
// 2 usage error.

#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "par/pool.h"
#include "scenario/artifact.h"
#include "scenario/config.h"
#include "scenario/runner.h"
#include "util/args.h"
#include "util/error.h"

namespace {

namespace json = fs::obs::json;

fs::scenario::ScenarioConfig load_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw fs::IoError("scenario config: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return fs::scenario::parse_scenario_config_text(text.str());
}

int run_validate(const std::string& path) {
  fs::scenario::load_matrix_file(path);
  std::printf("valid: %s\n", path.c_str());
  return 0;
}

int run_diff(const std::string& base_path, const std::string& current_path,
             double tolerance_scale, bool lenient_digests) {
  fs::scenario::DiffOptions options;
  options.tolerance_scale = tolerance_scale;
  options.lenient_digests = lenient_digests;
  const fs::scenario::DiffReport report = fs::scenario::diff_matrices(
      fs::scenario::load_matrix_file(base_path),
      fs::scenario::load_matrix_file(current_path), options);
  for (const std::string& note : report.notes)
    std::printf("note: %s\n", note.c_str());
  for (const std::string& failure : report.failures)
    std::fprintf(stderr, "FAIL: %s\n", failure.c_str());
  std::printf("scenario_diff: %zu failure(s), %zu note(s)\n",
              report.failures.size(), report.notes.size());
  return report.ok() ? 0 : 1;
}

int run_matrix(const fs::util::ArgParser& args) {
  const fs::scenario::ScenarioConfig config = load_config(args.get("config"));
  const auto grid = fs::scenario::expand_grid(config);

  if (args.get_flag("print-grid")) {
    std::printf("scenario '%s': %zu cells (fingerprint %s)\n",
                config.name.c_str(), grid.size(),
                fs::scenario::config_fingerprint(config).c_str());
    for (const fs::scenario::ScenarioCell& cell : grid)
      std::printf("  [%3zu] %s\n", cell.index, cell.id.c_str());
    return 0;
  }

  const std::string out = args.get("out");
  if (out.empty()) {
    std::fprintf(stderr, "--out is required (or use --print-grid)\n");
    return 2;
  }

  fs::scenario::RunOptions options;
  options.threads = static_cast<std::size_t>(args.get_int("threads"));
  options.on_cell = [&](const fs::scenario::CellResult& cell) {
    std::printf(
        "[%3zu/%3zu] %s  f1=%.4f auc=%.4f p@k=%.4f  wall=%.0fms  graph=%s\n",
        cell.cell.index + 1, grid.size(), cell.cell.id.c_str(),
        cell.quality.f1, cell.quality.auc, cell.quality.precision_at_k,
        cell.wall_ms, cell.final_graph_digest.c_str());
    std::fflush(stdout);
  };

  std::printf("scenario '%s': running %zu cells...\n", config.name.c_str(),
              grid.size());
  const fs::scenario::MatrixResult matrix =
      fs::scenario::run_scenario(config, options);
  fs::scenario::write_matrix(out, matrix);
  std::printf("matrix: %s (%zu cells, %.0f ms total, toolchain '%s')\n",
              out.c_str(), matrix.cells.size(), matrix.total_wall_ms,
              matrix.toolchain.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  fs::util::ArgParser args;
  args.add_option("config", "", "scenario config JSON to run");
  args.add_option("out", "", "matrix artifact output path");
  args.add_option("threads", "0", "thread count (0 = auto)");
  args.add_option("validate", "", "validate an existing matrix artifact");
  args.add_option("tolerance-scale", "1.0",
                  "multiplier on the base artifact's tolerance bands");
  args.add_flag("print-grid", "list the expanded cells and exit");
  args.add_flag("lenient-digests",
                "same-toolchain digest mismatches become notes");
  args.add_flag("diff",
                "compare two artifacts: --diff BASE CURRENT (positional)");
  args.add_flag("help", "print usage");

  try {
    args.parse(argc, argv);
    if (args.get_flag("help")) {
      std::printf("scenario_runner — attack x defense x world matrix\n%s",
                  args.help().c_str());
      return 0;
    }
    if (args.get_flag("diff")) {
      if (args.positional().size() != 2) {
        std::fprintf(stderr, "--diff needs BASE and CURRENT paths\n");
        return 2;
      }
      return run_diff(args.positional()[0], args.positional()[1],
                      args.get_double("tolerance-scale"),
                      args.get_flag("lenient-digests"));
    }
    if (!args.get("validate").empty()) return run_validate(args.get("validate"));
    if (args.get("config").empty()) {
      std::fprintf(stderr,
                   "one of --config, --validate, or --diff is required\n%s",
                   args.help().c_str());
      return 2;
    }
    return run_matrix(args);
  } catch (const fs::ParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "usage error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
