#!/usr/bin/env bash
# Re-pins the committed golden results (tests/golden/*.json) from the
# current build. Run after an intentional behavior change, then commit the
# tests/golden/ diff together with the change that caused it.
#
#   tools/update_golden.sh [build-dir]
set -euo pipefail

build_dir="${1:-build}"
binary="${build_dir}/tests/golden_test"

if [[ ! -x "${binary}" ]]; then
  echo "update_golden: ${binary} not built (cmake --build ${build_dir} --target golden_test)" >&2
  exit 1
fi

FS_UPDATE_GOLDEN=1 "${binary}"
echo "update_golden: re-pinned, review with: git diff tests/golden/"
