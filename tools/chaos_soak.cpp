// chaos_soak — randomized, seeded fault-injection soak for the FriendSeeker
// pipeline.
//
//   chaos_soak [--runs N] [--seed S] [--users U] [--budget-mode] [--help]
//
// Soak mode (the default) generates a small synthetic world, runs one
// uninterrupted baseline attack, then replays the same attack N times under
// seeded failpoint schedules drawn from the compiled-in registry: injected
// kills at iteration boundaries (resumed from the on-disk checkpoint),
// checkpoint save/rename/load faults, transient loader I/O failures,
// latency injection, and NaN-poisoned training. After every run it checks
// three invariants:
//
//   1. resume-equivalence — runs whose faults are all equivalence-preserving
//      (kills, checkpoint I/O faults, retried opens, latency) end
//      byte-identical to the baseline;
//   2. no partial checkpoint files — a checkpoint.fsck.tmp must never
//      survive any attempt, killed or not;
//   3. fault accounting — every fault that fired maps to an observed kill,
//      a diagnostics entry, or is latency-only; nothing fails silently.
//
// Budget mode (--budget-mode) instead exercises graceful degradation:
// memory-capped and deadline-capped runs must complete with exit status 0,
// a last-good result, and a populated DegradationReport.
//
// Stream mode (--stream-mode) soaks the `friendseeker serve` ingestion
// path: a replayed check-in stream (with trailing poison lines) is killed
// mid-tick, torn mid-journal-write, and denied file opens under seeded
// schedules; every killed run is resumed from the journal + snapshot by a
// fresh daemon. Invariants: the post-drain engine digest is identical to
// the uninterrupted baseline, the quarantine census is preserved across
// kills, nothing is shed under kBlock, and the stream-assembled dataset
// drives the batch pipeline to byte-identical predictions.
//
// The schedule stream is fully determined by --seed, so a CI failure
// reproduces locally with the same flags.
#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "data/loader.h"
#include "data/synthetic.h"
#include "eval/pairs.h"
#include "graph/metrics.h"
#include "par/pool.h"
#include "stream/daemon.h"
#include "stream/source.h"
#include "util/args.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/runtime.h"

namespace {

using namespace fs;
namespace fp = util::failpoint;

struct ScheduledFault {
  std::string name;
  fp::Config config;
};

struct Schedule {
  std::vector<ScheduledFault> faults;
  bool has_kill = false;
  bool perturbs_model = false;  // NaN faults change the trained model
};

struct SoakOptions {
  int runs = 25;
  std::uint64_t seed = 1;
  std::size_t users = 90;
  std::string work_dir;
};

struct Violation {
  int run = 0;
  std::string invariant;
  std::string detail;
};

struct World {
  data::Dataset dataset;
  eval::PairSplit split;
  core::FriendSeekerConfig config;
  std::string checkins_path;
  std::string edges_path;
};

World make_world(const SoakOptions& options) {
  data::SyntheticWorldConfig world_cfg;
  world_cfg.user_count = options.users;
  world_cfg.poi_count = options.users * 3;
  world_cfg.city_count = 3;
  world_cfg.weeks = 4;
  world_cfg.seed = 9;
  const auto generated = data::generate_world(world_cfg);

  World world;
  world.checkins_path = options.work_dir + "/checkins.txt";
  world.edges_path = options.work_dir + "/edges.txt";
  data::save_checkins_snap(generated.dataset, world.checkins_path,
                           world.edges_path);
  // Reload from disk so every soak run (which reloads under fault
  // injection) sees the identical post-densification dataset.
  world.dataset =
      data::load_checkins_snap(world.checkins_path, world.edges_path);
  world.split =
      eval::split_pairs(eval::sample_candidate_pairs(world.dataset), 0.7, 5);

  core::FriendSeekerConfig cfg;
  cfg.sigma = 50;
  cfg.presence.feature_dim = 12;
  cfg.presence.epochs = 3;
  cfg.presence.max_autoencoder_rows = 120;
  cfg.max_iterations = 4;
  // Never converge early: a fixed iteration count makes kill schedules
  // cover every boundary and keeps run time predictable.
  cfg.convergence_threshold = 0.0;
  world.config = cfg;
  return world;
}

/// One seeded schedule. Kill runs inject `pipeline.iteration.abort` plus
/// (sometimes) an equivalence-preserving checkpoint or loader fault, timed
/// so its evidence lands in the final (surviving) attempt's diagnostics.
/// Every sixth run is instead a model-perturbing NaN run.
Schedule make_schedule(int run_index, const SoakOptions& options,
                       int max_iterations) {
  util::Rng rng(options.seed * 0x9e3779b97f4a7c15ULL +
                static_cast<std::uint64_t>(run_index));
  Schedule schedule;
  if (run_index % 6 == 5) {
    // NaN run: poison one training step; the pipeline retries or degrades.
    schedule.perturbs_model = true;
    ScheduledFault fault;
    fault.name = rng.uniform() < 0.5 ? "nn.train.nan" : "ml.svm.nan";
    fault.config.action = fp::Action::kNan;
    fault.config.limit = 1;
    schedule.faults.push_back(fault);
    return schedule;
  }

  schedule.has_kill = true;
  const int kill_after =
      1 + static_cast<int>(
              rng.next_u64(static_cast<std::uint64_t>(max_iterations)));
  ScheduledFault kill;
  kill.name = "pipeline.iteration.abort";
  kill.config.action = fp::Action::kError;
  kill.config.skip = kill_after - 1;
  kill.config.limit = 1;
  schedule.faults.push_back(kill);

  const double extra = rng.uniform();
  if (extra < 0.25 && kill_after < max_iterations) {
    // A checkpoint save fault timed to fire in the post-kill attempt, so
    // the surviving result's diagnostics carry the evidence.
    ScheduledFault save;
    save.name = rng.uniform() < 0.5 ? "checkpoint.save.io"
                                    : "checkpoint.save.rename";
    save.config.action = fp::Action::kError;
    save.config.skip =
        kill_after +
        static_cast<int>(rng.next_u64(
            static_cast<std::uint64_t>(max_iterations - kill_after)));
    save.config.limit = 1;
    schedule.faults.push_back(save);
  } else if (extra < 0.5) {
    // The resume load sees a torn checkpoint and restarts from phase 1.
    ScheduledFault torn;
    torn.name = "checkpoint.load.truncate";
    torn.config.action = fp::Action::kTruncate;
    torn.config.limit = 1;
    schedule.faults.push_back(torn);
  } else if (extra < 0.75) {
    // Transient open failure, absorbed by the loader's retry policy.
    ScheduledFault open_fault;
    open_fault.name = "data.load.open";
    open_fault.config.action = fp::Action::kError;
    open_fault.config.limit = 1;
    schedule.faults.push_back(open_fault);
  } else {
    // Pure latency: must be behaviourally invisible.
    ScheduledFault latency;
    latency.name = "data.load.open";
    latency.config.action = fp::Action::kLatency;
    latency.config.latency_ms = 1;
    latency.config.limit = 2;
    schedule.faults.push_back(latency);
  }
  return schedule;
}

std::size_t count_diagnostics(const util::Diagnostics& diagnostics,
                              const char* needle) {
  std::size_t hits = 0;
  for (const auto& entry : diagnostics.entries())
    if (entry.message.find(needle) != std::string::npos) ++hits;
  return hits;
}

bool scores_identical(const std::vector<double>& a,
                      const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

int run_soak(const SoakOptions& options) {
  const World world = make_world(options);
  std::printf("chaos_soak: world users=%zu pairs=%zu seed=%llu runs=%d\n",
              world.dataset.user_count(),
              world.split.train_pairs.size() + world.split.test_pairs.size(),
              static_cast<unsigned long long>(options.seed), options.runs);

  core::FriendSeeker baseline_seeker(world.config);
  const core::FriendSeekerResult baseline = baseline_seeker.run(
      world.dataset, world.split.train_pairs, world.split.train_labels,
      world.split.test_pairs);
  std::printf("chaos_soak: baseline iterations=%d edges=%zu\n",
              baseline.iterations_run, baseline.final_graph.edge_count());

  std::vector<Violation> violations;
  const auto violation = [&](int run, std::string invariant,
                             std::string detail) {
    violations.push_back(
        Violation{run, std::move(invariant), std::move(detail)});
  };

  int interrupted_and_resumed = 0;
  std::uint64_t total_fired = 0;
  for (int run = 0; run < options.runs; ++run) {
    const Schedule schedule =
        make_schedule(run, options, world.config.max_iterations);
    const std::string checkpoint_dir =
        options.work_dir + "/run_" + std::to_string(run);
    std::filesystem::remove_all(checkpoint_dir);

    fp::clear();
    for (const ScheduledFault& fault : schedule.faults)
      fp::activate(fault.name, fault.config);

    core::FriendSeekerConfig cfg = world.config;
    cfg.checkpoint_dir = checkpoint_dir;
    util::Diagnostics loader_diagnostics;  // survives killed attempts

    int kills = 0;
    bool completed = false;
    core::FriendSeekerResult result;
    while (!completed) {
      const auto check_no_partial = [&] {
        if (std::filesystem::exists(checkpoint_dir + "/checkpoint.fsck.tmp"))
          violation(run, "no-partial-checkpoint",
                    "stray checkpoint.fsck.tmp after attempt");
      };
      try {
        // Reload from disk each attempt: loader faults (retried opens,
        // latency) are part of the schedule.
        data::LoadOptions load_options;
        load_options.diagnostics = &loader_diagnostics;
        const data::Dataset dataset = data::load_checkins_snap(
            world.checkins_path, world.edges_path, load_options);
        core::FriendSeeker seeker(cfg);
        result = seeker.run(dataset, world.split.train_pairs,
                            world.split.train_labels, world.split.test_pairs);
        completed = true;
        check_no_partial();
      } catch (const fp::InjectedKill&) {
        ++kills;
        check_no_partial();
        if (kills > 8) {
          violation(run, "liveness", "kill budget never exhausted");
          break;
        }
        cfg.resume = true;  // come back from the on-disk checkpoint
      } catch (const std::exception& e) {
        violation(run, "liveness",
                  std::string("run died on un-degradable fault: ") +
                      e.what());
        break;
      }
    }
    if (!completed) continue;
    if (kills > 0) ++interrupted_and_resumed;

    // ---- invariant: every fired fault is accounted for. ----
    for (const ScheduledFault& fault : schedule.faults) {
      const std::uint64_t fired = fp::triggers(fault.name);
      total_fired += fired;
      if (fired == 0) continue;
      bool accounted = false;
      std::string evidence;
      if (fault.name == "pipeline.iteration.abort") {
        accounted = static_cast<std::uint64_t>(kills) == fired;
        evidence = std::to_string(kills) + " observed kills";
      } else if (fault.config.action == fp::Action::kLatency) {
        accounted = true;  // latency is delay-only by contract
      } else if (fault.name == "data.load.open") {
        accounted = count_diagnostics(loader_diagnostics, "retrying") >=
                    fired;
        evidence = "loader retry diagnostics";
      } else if (fault.name == "checkpoint.save.io" ||
                 fault.name == "checkpoint.save.rename") {
        accounted = count_diagnostics(result.diagnostics,
                                      "checkpoint save failed") >= fired;
        evidence = "pipeline save-failure diagnostics";
      } else if (fault.name == "checkpoint.load.truncate") {
        accounted =
            count_diagnostics(result.diagnostics, "cannot resume") >= fired;
        evidence = "pipeline rejected-checkpoint diagnostics";
      } else if (fault.name == "nn.train.nan" ||
                 fault.name == "ml.svm.nan") {
        for (const auto& entry : result.diagnostics.entries())
          if (entry.code == ErrorCode::kNumeric ||
              entry.code == ErrorCode::kConvergence)
            accounted = true;
        evidence = "numeric-degradation diagnostics";
      }
      if (!accounted)
        violation(run, "fault-accounting",
                  fault.name + " fired " + std::to_string(fired) +
                      "x but left no trace (" + evidence + ")");
    }

    // ---- invariant: equivalence-preserving runs match the baseline. ----
    if (!schedule.perturbs_model) {
      if (result.test_predictions != baseline.test_predictions)
        violation(run, "resume-equivalence", "test predictions diverged");
      if (!scores_identical(result.test_scores, baseline.test_scores))
        violation(run, "resume-equivalence",
                  "test scores are not byte-identical");
      if (graph::edge_change_ratio(result.final_graph,
                                   baseline.final_graph) != 0.0)
        violation(run, "resume-equivalence", "final graph diverged");
    }

    std::filesystem::remove_all(checkpoint_dir);
  }

  fp::clear();
  std::printf("chaos_soak: %d/%d runs interrupted+resumed, %llu faults "
              "fired, %zu invariant violations\n",
              interrupted_and_resumed, options.runs,
              static_cast<unsigned long long>(total_fired),
              violations.size());
  for (const Violation& v : violations)
    std::fprintf(stderr, "violation (run %d, %s): %s\n", v.run,
                 v.invariant.c_str(), v.detail.c_str());
  if (total_fired == 0) {
    std::fprintf(stderr, "chaos_soak: no faults fired — schedule bug\n");
    return 1;
  }
  return violations.empty() ? 0 : 1;
}

/// Writes the streaming input: every batch check-in line verbatim, plus a
/// trailing poison block (one line per structured reject reason the parser
/// can hit on a replay) so the quarantine census is nontrivial and its
/// crash-survival is actually exercised.
std::string write_stream_input(const World& world,
                               const SoakOptions& options) {
  const std::string path = options.work_dir + "/stream_checkins.txt";
  std::ifstream in(world.checkins_path, std::ios::binary);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << in.rdbuf();
  out << "7\tmalformed\n";                                   // short line
  out << "7\t2010-13-40T99:99:99Z\t10.0\t20.0\t3\n";          // bad timestamp
  out << "7\t2010-10-19T23:55:27Z\t95.0\t20.0\t3\n";          // |lat| > 90
  out << "7\t2010-10-19T23:55:27Z\t10.0\t20.0\tnot-a-poi\n";  // bad number
  return path;
}

stream::ServeConfig make_serve_config(std::string journal_dir) {
  stream::ServeConfig cfg;
  cfg.ring_capacity = 64;
  cfg.backpressure = stream::Backpressure::kBlock;
  cfg.events_per_tick = 16;
  cfg.tick_budget_ms = 0;  // unlimited decide phase: deterministic ticks
  cfg.snapshot_every = 4;
  cfg.journal_dir = std::move(journal_dir);
  return cfg;
}

int run_stream_soak(const SoakOptions& options) {
  const World world = make_world(options);
  const std::string stream_path = write_stream_input(world, options);

  // Uninterrupted baseline: replay the whole stream once, fault-free.
  fp::clear();
  const std::string baseline_dir = options.work_dir + "/stream_baseline";
  std::filesystem::remove_all(baseline_dir);
  std::filesystem::create_directories(baseline_dir);
  stream::ServeDaemon baseline_daemon(
      make_serve_config(baseline_dir),
      std::make_unique<stream::ReplaySource>(stream_path));
  const stream::ServeReport baseline = baseline_daemon.run();
  const auto baseline_counts = baseline_daemon.quarantine().counts();
  std::printf("stream-soak: baseline lines=%llu accepted=%llu "
              "quarantined=%llu edges=%llu digest=%016llx\n",
              static_cast<unsigned long long>(baseline.consumed_lines),
              static_cast<unsigned long long>(baseline.accepted),
              static_cast<unsigned long long>(baseline.quarantined),
              static_cast<unsigned long long>(baseline.live_edges),
              static_cast<unsigned long long>(baseline.final_digest));
  if (!baseline.exhausted || baseline.quarantined != 4 ||
      baseline.shed != 0) {
    std::fprintf(stderr, "stream-soak: baseline malformed (exhausted=%d "
                 "quarantined=%llu shed=%llu)\n",
                 baseline.exhausted ? 1 : 0,
                 static_cast<unsigned long long>(baseline.quarantined),
                 static_cast<unsigned long long>(baseline.shed));
    return 1;
  }

  std::vector<Violation> violations;
  const auto violation = [&](int run, std::string invariant,
                             std::string detail) {
    violations.push_back(
        Violation{run, std::move(invariant), std::move(detail)});
  };

  // ---- differential: the stream-assembled dataset must drive the batch
  // pipeline to byte-identical results. ----
  {
    const auto raw_edges = data::read_edges_file(world.edges_path);
    const data::Dataset stream_ds =
        baseline_daemon.engine().to_dataset(raw_edges);
    if (stream_ds.user_count() != world.dataset.user_count() ||
        stream_ds.poi_count() != world.dataset.poi_count())
      violation(-1, "stream-to-batch",
                "stream dataset shape diverged from batch load");
    core::FriendSeekerConfig cfg = world.config;
    cfg.max_iterations = 2;
    core::FriendSeeker batch_seeker(cfg);
    const auto batch_result = batch_seeker.run(
        world.dataset, world.split.train_pairs, world.split.train_labels,
        world.split.test_pairs);
    core::FriendSeeker stream_seeker(cfg);
    const auto stream_result = stream_seeker.run(
        stream_ds, world.split.train_pairs, world.split.train_labels,
        world.split.test_pairs);
    if (stream_result.test_predictions != batch_result.test_predictions)
      violation(-1, "stream-to-batch", "pipeline predictions diverged");
    if (!scores_identical(stream_result.test_scores,
                          batch_result.test_scores))
      violation(-1, "stream-to-batch",
                "pipeline scores are not byte-identical");
    if (graph::edge_change_ratio(stream_result.final_graph,
                                 batch_result.final_graph) != 0.0)
      violation(-1, "stream-to-batch", "pipeline final graph diverged");
    std::printf("stream-soak: stream-to-batch pipeline differential %s\n",
                violations.empty() ? "identical" : "DIVERGED");
  }

  // Seeded fault runs. Each picks one stream fault; every killed attempt
  // is resumed by a brand-new daemon over a brand-new source, so recovery
  // is always from durable state alone.
  int interrupted_and_resumed = 0;
  std::uint64_t total_fired = 0;
  const std::uint64_t total_ticks =
      baseline.consumed_lines / 16 + 2;  // matches events_per_tick above
  for (int run = 0; run < options.runs; ++run) {
    util::Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + 0xace5ULL +
                  static_cast<std::uint64_t>(run));
    fp::clear();
    std::string fault_name;
    fp::Config fault_cfg;
    bool absorbed = false;  // absorbed faults must NOT kill the daemon
    switch (run % 3) {
      case 0:  // mid-stream kill between commit points
        fault_name = "stream.tick.abort";
        fault_cfg.action = fp::Action::kError;
        fault_cfg.skip = static_cast<int>(rng.next_u64(total_ticks));
        fault_cfg.limit = 1;
        break;
      case 1:  // torn journal write: partial frame hits the disk
        fault_name = "stream.journal.torn_write";
        fault_cfg.action = fp::Action::kTruncate;
        fault_cfg.skip =
            static_cast<int>(rng.next_u64(baseline.consumed_lines));
        fault_cfg.limit = 1;
        break;
      default:  // transient open failure, absorbed by the retry policy
        fault_name = "stream.source.open_fail";
        fault_cfg.action = fp::Action::kError;
        fault_cfg.limit = 1;
        absorbed = true;
        break;
    }
    fp::activate(fault_name, fault_cfg);

    const std::string dir =
        options.work_dir + "/stream_run_" + std::to_string(run);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    int kills = 0;
    bool completed = false;
    bool truncation_seen = false;
    stream::ServeReport report;
    std::array<std::uint64_t, stream::kRejectReasonCount> counts{};
    while (!completed) {
      stream::ServeDaemon daemon(
          make_serve_config(dir),
          std::make_unique<stream::ReplaySource>(stream_path));
      const auto info = daemon.recover();
      truncation_seen = truncation_seen || info.journal_truncated;
      try {
        report = daemon.run();
        counts = daemon.quarantine().counts();
        completed = true;
      } catch (const fp::InjectedKill&) {
        ++kills;
      } catch (const IoError&) {
        ++kills;  // torn journal write surfaces as an I/O crash
      }
      if (kills > 8) {
        violation(run, "liveness", "kill budget never exhausted");
        break;
      }
    }
    if (!completed) continue;
    if (kills > 0) ++interrupted_and_resumed;

    // ---- invariant: fault accounting. ----
    const std::uint64_t fired = fp::triggers(fault_name);
    total_fired += fired;
    if (fired > 0) {
      if (absorbed) {
        if (kills != 0)
          violation(run, "fault-accounting",
                    fault_name + " should be retry-absorbed but killed " +
                        std::to_string(kills) + "x");
      } else if (kills == 0) {
        violation(run, "fault-accounting",
                  fault_name + " fired " + std::to_string(fired) +
                      "x but no kill was observed");
      } else if (fault_name == "stream.journal.torn_write" &&
                 !truncation_seen) {
        violation(run, "fault-accounting",
                  "torn write fired but recovery never cut a torn tail");
      }
    }

    // ---- invariant: convergence to the uninterrupted baseline. ----
    if (report.final_digest != baseline.final_digest)
      violation(run, "resume-equivalence",
                "post-drain digest diverged from baseline");
    if (report.shed != 0)
      violation(run, "resume-equivalence", "kBlock run shed lines");
    if (counts != baseline_counts)
      violation(run, "quarantine-census",
                "quarantine counts diverged across kill/resume");

    std::filesystem::remove_all(dir);
  }

  fp::clear();
  std::printf("stream-soak: %d/%d runs interrupted+resumed, %llu faults "
              "fired, %zu invariant violations\n",
              interrupted_and_resumed, options.runs,
              static_cast<unsigned long long>(total_fired),
              violations.size());
  for (const Violation& v : violations)
    std::fprintf(stderr, "violation (run %d, %s): %s\n", v.run,
                 v.invariant.c_str(), v.detail.c_str());
  if (total_fired == 0) {
    std::fprintf(stderr, "stream-soak: no faults fired — schedule bug\n");
    return 1;
  }
  return violations.empty() ? 0 : 1;
}

int run_budget_mode(const SoakOptions& options) {
  const World world = make_world(options);
  int failures = 0;
  const auto expect = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "budget-mode expectation failed: %s\n", what);
      ++failures;
    }
  };

  const auto attack = [&](core::FriendSeekerConfig cfg) {
    core::FriendSeeker seeker(cfg);
    return seeker.run(world.dataset, world.split.train_pairs,
                      world.split.train_labels, world.split.test_pairs);
  };

  // Probe the phase-1 footprint, then allow just that much: phase 2 must
  // degrade to the last-good (phase-1) graph instead of dying.
  runtime::ExecutionContext probe;
  core::FriendSeekerConfig probe_cfg = world.config;
  probe_cfg.context = &probe;
  probe_cfg.iterate = false;
  (void)attack(probe_cfg);
  expect(probe.peak_charged() > 0, "probe charged no memory");

  runtime::ExecutionContext capped;
  capped.set_memory_limit(probe.peak_charged() + 1024);
  core::FriendSeekerConfig capped_cfg = world.config;
  capped_cfg.context = &capped;
  const core::FriendSeekerResult capped_result = attack(capped_cfg);
  expect(capped_result.degradation.degraded(),
         "memory-capped run reported no degradation");
  expect(!capped_result.degradation.phases.empty() &&
             capped_result.degradation.phases.front().reason == "memory",
         "memory-capped run did not degrade on the memory budget");
  expect(capped_result.test_predictions.size() ==
             world.split.test_pairs.size(),
         "memory-capped run returned no last-good predictions");
  std::printf("budget-mode: memory-capped run degraded as expected:\n%s\n",
              capped_result.degradation.to_string().c_str());

  // A spent phase-2 deadline truncates at the first iteration boundary.
  runtime::ExecutionContext timed;
  core::FriendSeekerConfig timed_cfg = world.config;
  timed_cfg.context = &timed;
  timed_cfg.phase2_budget_sec = 1e-9;
  const core::FriendSeekerResult timed_result = attack(timed_cfg);
  expect(timed_result.degradation.degraded() &&
             timed_result.degradation.phases.front().reason == "deadline",
         "deadline-capped run did not degrade on the deadline");
  expect(timed_result.iterations_run == 0,
         "deadline-capped run still iterated");

  // The iteration cap on a governed run is reported, not silent.
  runtime::ExecutionContext iter_ctx;
  core::FriendSeekerConfig iter_cfg = world.config;
  iter_cfg.context = &iter_ctx;
  iter_cfg.max_iterations = 1;
  const core::FriendSeekerResult iter_result = attack(iter_cfg);
  expect(iter_result.degradation.degraded() &&
             iter_result.degradation.phases.front().reason == "iterations",
         "iteration-capped run did not report the cap");

  std::printf("budget-mode: %s\n",
              failures == 0 ? "all degradation paths verified"
                            : "FAILED");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args;
  args.add_option("runs", "25", "number of seeded chaos runs");
  args.add_option("seed", "1", "schedule stream seed");
  args.add_option("users", "90", "synthetic world size");
  args.add_option("work-dir", "", "scratch directory (default: a temp dir)");
  args.add_option("threads", "0",
                  "worker threads for parallel regions (0 = FS_THREADS env "
                  "or hardware concurrency)");
  args.add_flag("budget-mode",
                "verify graceful degradation under memory/deadline budgets "
                "instead of running the soak");
  args.add_flag("stream-mode",
                "soak the serve/streaming path: seeded mid-stream kills, "
                "torn journal writes, open failures, digest convergence");
  args.add_flag("help", "show options");
  try {
    args.parse(argc, argv, 1);
    if (args.get_flag("help")) {
      std::fprintf(stderr, "usage: chaos_soak [options]\n%s",
                   args.help().c_str());
      return 0;
    }
    par::set_threads(static_cast<std::size_t>(args.get_int("threads")));
    SoakOptions options;
    options.runs = static_cast<int>(args.get_int("runs"));
    options.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    options.users = static_cast<std::size_t>(args.get_int("users"));
    options.work_dir = args.get("work-dir");
    if (options.work_dir.empty())
      options.work_dir =
          (std::filesystem::temp_directory_path() / "fs_chaos_soak")
              .string();
    std::filesystem::create_directories(options.work_dir);
    if (args.get_flag("budget-mode")) return run_budget_mode(options);
    if (args.get_flag("stream-mode")) return run_stream_soak(options);
    return run_soak(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaos_soak: %s\n", e.what());
    return 1;
  }
}
