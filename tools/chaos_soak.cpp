// chaos_soak — randomized, seeded fault-injection soak for the FriendSeeker
// pipeline.
//
//   chaos_soak [--runs N] [--seed S] [--users U]
//              [--budget-mode | --stream-mode | --net-mode | --store-mode]
//              [--help]
//
// Soak mode (the default) generates a small synthetic world, runs one
// uninterrupted baseline attack, then replays the same attack N times under
// seeded failpoint schedules drawn from the compiled-in registry: injected
// kills at iteration boundaries (resumed from the on-disk checkpoint),
// checkpoint save/rename/load faults, transient loader I/O failures,
// latency injection, and NaN-poisoned training. After every run it checks
// three invariants:
//
//   1. resume-equivalence — runs whose faults are all equivalence-preserving
//      (kills, checkpoint I/O faults, retried opens, latency) end
//      byte-identical to the baseline;
//   2. no partial checkpoint files — a checkpoint.fsck.tmp must never
//      survive any attempt, killed or not;
//   3. fault accounting — every fault that fired maps to an observed kill,
//      a diagnostics entry, or is latency-only; nothing fails silently.
//
// Budget mode (--budget-mode) instead exercises graceful degradation:
// memory-capped and deadline-capped runs must complete with exit status 0,
// a last-good result, and a populated DegradationReport.
//
// Stream mode (--stream-mode) soaks the `friendseeker serve` ingestion
// path: a replayed check-in stream (with trailing poison lines) is killed
// mid-tick, torn mid-journal-write, and denied file opens under seeded
// schedules; every killed run is resumed from the journal + snapshot by a
// fresh daemon. Invariants: the post-drain engine digest is identical to
// the uninterrupted baseline, the quarantine census is preserved across
// kills, nothing is shed under kBlock, and the stream-assembled dataset
// drives the batch pipeline to byte-identical predictions.
//
// Net mode (--net-mode) soaks the socket front end: the same poisoned
// stream is replayed over the fs::net wire protocol by a real feed client
// (its own thread, retrying with backoff) while seeded faults kill the
// daemon between commit points, tear client sends mid-frame, drop
// connections server-side, tear ack writes, fail accept(2), and stall the
// sender. Killed daemons are rebuilt from snapshot+journal and rebind the
// same port; the client reconnects and resumes from the hello watermark.
// Invariants: the drained engine digest is byte-identical to the batch
// replay baseline, the quarantine census survives, nothing is shed, every
// fault leaves a trace (kill, reconnect, or counted accept failure), a
// stalled peer is idle-reaped, and a mid-ingest /metrics scrape returns
// parseable Prometheus text without delaying ingestion.
//
// Store mode (--store-mode) soaks the SNAP -> columnar-store converter's
// atomicity discipline: seeded faults at the write (I/O error, tmp cleaned
// up) and at the kill point between the payload fsync and the rename (tmp
// left behind like a dead process). Invariants: the final path never holds
// a store that fails full validation, a pre-existing store survives a
// faulted overwrite byte-for-byte, and a fault-free retry converges to the
// byte-identical baseline store.
//
// The schedule stream is fully determined by --seed, so a CI failure
// reproduces locally with the same flags.
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "data/loader.h"
#include "data/synthetic.h"
#include "eval/pairs.h"
#include "graph/metrics.h"
#include "net/feed.h"
#include "net/server.h"
#include "net/socket.h"
#include "par/pool.h"
#include "store/convert.h"
#include "store/store.h"
#include "stream/daemon.h"
#include "stream/source.h"
#include "util/args.h"
#include "util/binary_io.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/runtime.h"

namespace {

using namespace fs;
namespace fp = util::failpoint;

struct ScheduledFault {
  std::string name;
  fp::Config config;
};

struct Schedule {
  std::vector<ScheduledFault> faults;
  bool has_kill = false;
  bool perturbs_model = false;  // NaN faults change the trained model
};

struct SoakOptions {
  int runs = 25;
  std::uint64_t seed = 1;
  std::size_t users = 90;
  std::string work_dir;
};

struct Violation {
  int run = 0;
  std::string invariant;
  std::string detail;
};

struct World {
  data::Dataset dataset;
  eval::PairSplit split;
  core::FriendSeekerConfig config;
  std::string checkins_path;
  std::string edges_path;
};

World make_world(const SoakOptions& options) {
  data::SyntheticWorldConfig world_cfg;
  world_cfg.user_count = options.users;
  world_cfg.poi_count = options.users * 3;
  world_cfg.city_count = 3;
  world_cfg.weeks = 4;
  world_cfg.seed = 9;
  const auto generated = data::generate_world(world_cfg);

  World world;
  world.checkins_path = options.work_dir + "/checkins.txt";
  world.edges_path = options.work_dir + "/edges.txt";
  data::save_checkins_snap(generated.dataset, world.checkins_path,
                           world.edges_path);
  // Reload from disk so every soak run (which reloads under fault
  // injection) sees the identical post-densification dataset.
  world.dataset =
      data::load_checkins_snap(world.checkins_path, world.edges_path);
  world.split =
      eval::split_pairs(eval::sample_candidate_pairs(world.dataset), 0.7, 5);

  core::FriendSeekerConfig cfg;
  cfg.sigma = 50;
  cfg.presence.feature_dim = 12;
  cfg.presence.epochs = 3;
  cfg.presence.max_autoencoder_rows = 120;
  cfg.max_iterations = 4;
  // Never converge early: a fixed iteration count makes kill schedules
  // cover every boundary and keeps run time predictable.
  cfg.convergence_threshold = 0.0;
  world.config = cfg;
  return world;
}

/// One seeded schedule. Kill runs inject `pipeline.iteration.abort` plus
/// (sometimes) an equivalence-preserving checkpoint or loader fault, timed
/// so its evidence lands in the final (surviving) attempt's diagnostics.
/// Every sixth run is instead a model-perturbing NaN run.
Schedule make_schedule(int run_index, const SoakOptions& options,
                       int max_iterations) {
  util::Rng rng(options.seed * 0x9e3779b97f4a7c15ULL +
                static_cast<std::uint64_t>(run_index));
  Schedule schedule;
  if (run_index % 6 == 5) {
    // NaN run: poison one training step; the pipeline retries or degrades.
    schedule.perturbs_model = true;
    ScheduledFault fault;
    fault.name = rng.uniform() < 0.5 ? "nn.train.nan" : "ml.svm.nan";
    fault.config.action = fp::Action::kNan;
    fault.config.limit = 1;
    schedule.faults.push_back(fault);
    return schedule;
  }

  schedule.has_kill = true;
  const int kill_after =
      1 + static_cast<int>(
              rng.next_u64(static_cast<std::uint64_t>(max_iterations)));
  ScheduledFault kill;
  kill.name = "pipeline.iteration.abort";
  kill.config.action = fp::Action::kError;
  kill.config.skip = kill_after - 1;
  kill.config.limit = 1;
  schedule.faults.push_back(kill);

  const double extra = rng.uniform();
  if (extra < 0.25 && kill_after < max_iterations) {
    // A checkpoint save fault timed to fire in the post-kill attempt, so
    // the surviving result's diagnostics carry the evidence.
    ScheduledFault save;
    save.name = rng.uniform() < 0.5 ? "checkpoint.save.io"
                                    : "checkpoint.save.rename";
    save.config.action = fp::Action::kError;
    save.config.skip =
        kill_after +
        static_cast<int>(rng.next_u64(
            static_cast<std::uint64_t>(max_iterations - kill_after)));
    save.config.limit = 1;
    schedule.faults.push_back(save);
  } else if (extra < 0.5) {
    // The resume load sees a torn checkpoint and restarts from phase 1.
    ScheduledFault torn;
    torn.name = "checkpoint.load.truncate";
    torn.config.action = fp::Action::kTruncate;
    torn.config.limit = 1;
    schedule.faults.push_back(torn);
  } else if (extra < 0.75) {
    // Transient open failure, absorbed by the loader's retry policy.
    ScheduledFault open_fault;
    open_fault.name = "data.load.open";
    open_fault.config.action = fp::Action::kError;
    open_fault.config.limit = 1;
    schedule.faults.push_back(open_fault);
  } else {
    // Pure latency: must be behaviourally invisible.
    ScheduledFault latency;
    latency.name = "data.load.open";
    latency.config.action = fp::Action::kLatency;
    latency.config.latency_ms = 1;
    latency.config.limit = 2;
    schedule.faults.push_back(latency);
  }
  return schedule;
}

std::size_t count_diagnostics(const util::Diagnostics& diagnostics,
                              const char* needle) {
  std::size_t hits = 0;
  for (const auto& entry : diagnostics.entries())
    if (entry.message.find(needle) != std::string::npos) ++hits;
  return hits;
}

bool scores_identical(const std::vector<double>& a,
                      const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

int run_soak(const SoakOptions& options) {
  const World world = make_world(options);
  std::printf("chaos_soak: world users=%zu pairs=%zu seed=%llu runs=%d\n",
              world.dataset.user_count(),
              world.split.train_pairs.size() + world.split.test_pairs.size(),
              static_cast<unsigned long long>(options.seed), options.runs);

  core::FriendSeeker baseline_seeker(world.config);
  const core::FriendSeekerResult baseline = baseline_seeker.run(
      world.dataset, world.split.train_pairs, world.split.train_labels,
      world.split.test_pairs);
  std::printf("chaos_soak: baseline iterations=%d edges=%zu\n",
              baseline.iterations_run, baseline.final_graph.edge_count());

  std::vector<Violation> violations;
  const auto violation = [&](int run, std::string invariant,
                             std::string detail) {
    violations.push_back(
        Violation{run, std::move(invariant), std::move(detail)});
  };

  int interrupted_and_resumed = 0;
  std::uint64_t total_fired = 0;
  for (int run = 0; run < options.runs; ++run) {
    const Schedule schedule =
        make_schedule(run, options, world.config.max_iterations);
    const std::string checkpoint_dir =
        options.work_dir + "/run_" + std::to_string(run);
    std::filesystem::remove_all(checkpoint_dir);

    fp::clear();
    for (const ScheduledFault& fault : schedule.faults)
      fp::activate(fault.name, fault.config);

    core::FriendSeekerConfig cfg = world.config;
    cfg.checkpoint_dir = checkpoint_dir;
    util::Diagnostics loader_diagnostics;  // survives killed attempts

    int kills = 0;
    bool completed = false;
    core::FriendSeekerResult result;
    while (!completed) {
      const auto check_no_partial = [&] {
        if (std::filesystem::exists(checkpoint_dir + "/checkpoint.fsck.tmp"))
          violation(run, "no-partial-checkpoint",
                    "stray checkpoint.fsck.tmp after attempt");
      };
      try {
        // Reload from disk each attempt: loader faults (retried opens,
        // latency) are part of the schedule.
        data::LoadOptions load_options;
        load_options.diagnostics = &loader_diagnostics;
        const data::Dataset dataset = data::load_checkins_snap(
            world.checkins_path, world.edges_path, load_options);
        core::FriendSeeker seeker(cfg);
        result = seeker.run(dataset, world.split.train_pairs,
                            world.split.train_labels, world.split.test_pairs);
        completed = true;
        check_no_partial();
      } catch (const fp::InjectedKill&) {
        ++kills;
        check_no_partial();
        if (kills > 8) {
          violation(run, "liveness", "kill budget never exhausted");
          break;
        }
        cfg.resume = true;  // come back from the on-disk checkpoint
      } catch (const std::exception& e) {
        violation(run, "liveness",
                  std::string("run died on un-degradable fault: ") +
                      e.what());
        break;
      }
    }
    if (!completed) continue;
    if (kills > 0) ++interrupted_and_resumed;

    // ---- invariant: every fired fault is accounted for. ----
    for (const ScheduledFault& fault : schedule.faults) {
      const std::uint64_t fired = fp::triggers(fault.name);
      total_fired += fired;
      if (fired == 0) continue;
      bool accounted = false;
      std::string evidence;
      if (fault.name == "pipeline.iteration.abort") {
        accounted = static_cast<std::uint64_t>(kills) == fired;
        evidence = std::to_string(kills) + " observed kills";
      } else if (fault.config.action == fp::Action::kLatency) {
        accounted = true;  // latency is delay-only by contract
      } else if (fault.name == "data.load.open") {
        accounted = count_diagnostics(loader_diagnostics, "retrying") >=
                    fired;
        evidence = "loader retry diagnostics";
      } else if (fault.name == "checkpoint.save.io" ||
                 fault.name == "checkpoint.save.rename") {
        accounted = count_diagnostics(result.diagnostics,
                                      "checkpoint save failed") >= fired;
        evidence = "pipeline save-failure diagnostics";
      } else if (fault.name == "checkpoint.load.truncate") {
        accounted =
            count_diagnostics(result.diagnostics, "cannot resume") >= fired;
        evidence = "pipeline rejected-checkpoint diagnostics";
      } else if (fault.name == "nn.train.nan" ||
                 fault.name == "ml.svm.nan") {
        for (const auto& entry : result.diagnostics.entries())
          if (entry.code == ErrorCode::kNumeric ||
              entry.code == ErrorCode::kConvergence)
            accounted = true;
        evidence = "numeric-degradation diagnostics";
      }
      if (!accounted)
        violation(run, "fault-accounting",
                  fault.name + " fired " + std::to_string(fired) +
                      "x but left no trace (" + evidence + ")");
    }

    // ---- invariant: equivalence-preserving runs match the baseline. ----
    if (!schedule.perturbs_model) {
      if (result.test_predictions != baseline.test_predictions)
        violation(run, "resume-equivalence", "test predictions diverged");
      if (!scores_identical(result.test_scores, baseline.test_scores))
        violation(run, "resume-equivalence",
                  "test scores are not byte-identical");
      if (graph::edge_change_ratio(result.final_graph,
                                   baseline.final_graph) != 0.0)
        violation(run, "resume-equivalence", "final graph diverged");
    }

    std::filesystem::remove_all(checkpoint_dir);
  }

  fp::clear();
  std::printf("chaos_soak: %d/%d runs interrupted+resumed, %llu faults "
              "fired, %zu invariant violations\n",
              interrupted_and_resumed, options.runs,
              static_cast<unsigned long long>(total_fired),
              violations.size());
  for (const Violation& v : violations)
    std::fprintf(stderr, "violation (run %d, %s): %s\n", v.run,
                 v.invariant.c_str(), v.detail.c_str());
  if (total_fired == 0) {
    std::fprintf(stderr, "chaos_soak: no faults fired — schedule bug\n");
    return 1;
  }
  return violations.empty() ? 0 : 1;
}

/// Writes the streaming input: every batch check-in line verbatim, plus a
/// trailing poison block (one line per structured reject reason the parser
/// can hit on a replay) so the quarantine census is nontrivial and its
/// crash-survival is actually exercised.
std::string write_stream_input(const World& world,
                               const SoakOptions& options) {
  const std::string path = options.work_dir + "/stream_checkins.txt";
  std::ifstream in(world.checkins_path, std::ios::binary);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << in.rdbuf();
  out << "7\tmalformed\n";                                   // short line
  out << "7\t2010-13-40T99:99:99Z\t10.0\t20.0\t3\n";          // bad timestamp
  out << "7\t2010-10-19T23:55:27Z\t95.0\t20.0\t3\n";          // |lat| > 90
  out << "7\t2010-10-19T23:55:27Z\t10.0\t20.0\tnot-a-poi\n";  // bad number
  return path;
}

stream::ServeConfig make_serve_config(std::string journal_dir) {
  stream::ServeConfig cfg;
  cfg.ring_capacity = 64;
  cfg.backpressure = stream::Backpressure::kBlock;
  cfg.events_per_tick = 16;
  cfg.tick_budget_ms = 0;  // unlimited decide phase: deterministic ticks
  cfg.snapshot_every = 4;
  cfg.journal_dir = std::move(journal_dir);
  return cfg;
}

int run_stream_soak(const SoakOptions& options) {
  const World world = make_world(options);
  const std::string stream_path = write_stream_input(world, options);

  // Uninterrupted baseline: replay the whole stream once, fault-free.
  fp::clear();
  const std::string baseline_dir = options.work_dir + "/stream_baseline";
  std::filesystem::remove_all(baseline_dir);
  std::filesystem::create_directories(baseline_dir);
  stream::ServeDaemon baseline_daemon(
      make_serve_config(baseline_dir),
      std::make_unique<stream::ReplaySource>(stream_path));
  const stream::ServeReport baseline = baseline_daemon.run();
  const auto baseline_counts = baseline_daemon.quarantine().counts();
  std::printf("stream-soak: baseline lines=%llu accepted=%llu "
              "quarantined=%llu edges=%llu digest=%016llx\n",
              static_cast<unsigned long long>(baseline.consumed_lines),
              static_cast<unsigned long long>(baseline.accepted),
              static_cast<unsigned long long>(baseline.quarantined),
              static_cast<unsigned long long>(baseline.live_edges),
              static_cast<unsigned long long>(baseline.final_digest));
  if (!baseline.exhausted || baseline.quarantined != 4 ||
      baseline.shed != 0) {
    std::fprintf(stderr, "stream-soak: baseline malformed (exhausted=%d "
                 "quarantined=%llu shed=%llu)\n",
                 baseline.exhausted ? 1 : 0,
                 static_cast<unsigned long long>(baseline.quarantined),
                 static_cast<unsigned long long>(baseline.shed));
    return 1;
  }

  std::vector<Violation> violations;
  const auto violation = [&](int run, std::string invariant,
                             std::string detail) {
    violations.push_back(
        Violation{run, std::move(invariant), std::move(detail)});
  };

  // ---- differential: the stream-assembled dataset must drive the batch
  // pipeline to byte-identical results. ----
  {
    const auto raw_edges = data::read_edges_file(world.edges_path);
    const data::Dataset stream_ds =
        baseline_daemon.engine().to_dataset(raw_edges);
    if (stream_ds.user_count() != world.dataset.user_count() ||
        stream_ds.poi_count() != world.dataset.poi_count())
      violation(-1, "stream-to-batch",
                "stream dataset shape diverged from batch load");
    core::FriendSeekerConfig cfg = world.config;
    cfg.max_iterations = 2;
    core::FriendSeeker batch_seeker(cfg);
    const auto batch_result = batch_seeker.run(
        world.dataset, world.split.train_pairs, world.split.train_labels,
        world.split.test_pairs);
    core::FriendSeeker stream_seeker(cfg);
    const auto stream_result = stream_seeker.run(
        stream_ds, world.split.train_pairs, world.split.train_labels,
        world.split.test_pairs);
    if (stream_result.test_predictions != batch_result.test_predictions)
      violation(-1, "stream-to-batch", "pipeline predictions diverged");
    if (!scores_identical(stream_result.test_scores,
                          batch_result.test_scores))
      violation(-1, "stream-to-batch",
                "pipeline scores are not byte-identical");
    if (graph::edge_change_ratio(stream_result.final_graph,
                                 batch_result.final_graph) != 0.0)
      violation(-1, "stream-to-batch", "pipeline final graph diverged");
    std::printf("stream-soak: stream-to-batch pipeline differential %s\n",
                violations.empty() ? "identical" : "DIVERGED");
  }

  // Seeded fault runs. Each picks one stream fault; every killed attempt
  // is resumed by a brand-new daemon over a brand-new source, so recovery
  // is always from durable state alone.
  int interrupted_and_resumed = 0;
  std::uint64_t total_fired = 0;
  const std::uint64_t total_ticks =
      baseline.consumed_lines / 16 + 2;  // matches events_per_tick above
  for (int run = 0; run < options.runs; ++run) {
    util::Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + 0xace5ULL +
                  static_cast<std::uint64_t>(run));
    fp::clear();
    std::string fault_name;
    fp::Config fault_cfg;
    bool absorbed = false;  // absorbed faults must NOT kill the daemon
    switch (run % 3) {
      case 0:  // mid-stream kill between commit points
        fault_name = "stream.tick.abort";
        fault_cfg.action = fp::Action::kError;
        fault_cfg.skip = static_cast<int>(rng.next_u64(total_ticks));
        fault_cfg.limit = 1;
        break;
      case 1:  // torn journal write: partial frame hits the disk
        fault_name = "stream.journal.torn_write";
        fault_cfg.action = fp::Action::kTruncate;
        fault_cfg.skip =
            static_cast<int>(rng.next_u64(baseline.consumed_lines));
        fault_cfg.limit = 1;
        break;
      default:  // transient open failure, absorbed by the retry policy
        fault_name = "stream.source.open_fail";
        fault_cfg.action = fp::Action::kError;
        fault_cfg.limit = 1;
        absorbed = true;
        break;
    }
    fp::activate(fault_name, fault_cfg);

    const std::string dir =
        options.work_dir + "/stream_run_" + std::to_string(run);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    int kills = 0;
    bool completed = false;
    bool truncation_seen = false;
    stream::ServeReport report;
    std::array<std::uint64_t, stream::kRejectReasonCount> counts{};
    while (!completed) {
      stream::ServeDaemon daemon(
          make_serve_config(dir),
          std::make_unique<stream::ReplaySource>(stream_path));
      const auto info = daemon.recover();
      truncation_seen = truncation_seen || info.journal_truncated;
      try {
        report = daemon.run();
        counts = daemon.quarantine().counts();
        completed = true;
      } catch (const fp::InjectedKill&) {
        ++kills;
      } catch (const IoError&) {
        ++kills;  // torn journal write surfaces as an I/O crash
      }
      if (kills > 8) {
        violation(run, "liveness", "kill budget never exhausted");
        break;
      }
    }
    if (!completed) continue;
    if (kills > 0) ++interrupted_and_resumed;

    // ---- invariant: fault accounting. ----
    const std::uint64_t fired = fp::triggers(fault_name);
    total_fired += fired;
    if (fired > 0) {
      if (absorbed) {
        if (kills != 0)
          violation(run, "fault-accounting",
                    fault_name + " should be retry-absorbed but killed " +
                        std::to_string(kills) + "x");
      } else if (kills == 0) {
        violation(run, "fault-accounting",
                  fault_name + " fired " + std::to_string(fired) +
                      "x but no kill was observed");
      } else if (fault_name == "stream.journal.torn_write" &&
                 !truncation_seen) {
        violation(run, "fault-accounting",
                  "torn write fired but recovery never cut a torn tail");
      }
    }

    // ---- invariant: convergence to the uninterrupted baseline. ----
    if (report.final_digest != baseline.final_digest)
      violation(run, "resume-equivalence",
                "post-drain digest diverged from baseline");
    if (report.shed != 0)
      violation(run, "resume-equivalence", "kBlock run shed lines");
    if (counts != baseline_counts)
      violation(run, "quarantine-census",
                "quarantine counts diverged across kill/resume");

    std::filesystem::remove_all(dir);
  }

  fp::clear();
  std::printf("stream-soak: %d/%d runs interrupted+resumed, %llu faults "
              "fired, %zu invariant violations\n",
              interrupted_and_resumed, options.runs,
              static_cast<unsigned long long>(total_fired),
              violations.size());
  for (const Violation& v : violations)
    std::fprintf(stderr, "violation (run %d, %s): %s\n", v.run,
                 v.invariant.c_str(), v.detail.c_str());
  if (total_fired == 0) {
    std::fprintf(stderr, "stream-soak: no faults fired — schedule bug\n");
    return 1;
  }
  return violations.empty() ? 0 : 1;
}

net::NetConfig make_net_config(std::uint16_t port) {
  net::NetConfig cfg;
  cfg.port = port;
  cfg.idle_timeout_ms = 400.0;  // short: the stalled-peer reap is on-path
  cfg.poll_interval_ms = 5.0;
  return cfg;
}

stream::ServeConfig make_net_serve_config(std::string journal_dir) {
  stream::ServeConfig cfg = make_serve_config(std::move(journal_dir));
  cfg.stop_when_exhausted = false;  // a listener never runs dry
  cfg.idle_sleep_ms = 1.0;
  return cfg;
}

/// Plain blocking HTTP GET against the scrape side of the server.
std::string http_get(std::uint16_t port, const std::string& target) {
  net::Fd fd = net::connect_tcp("127.0.0.1", port);
  net::set_recv_timeout(fd.get(), 5000.0);
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: soak\r\n"
                              "Connection: close\r\n\r\n";
  if (!util::write_all_eintr(fd.get(), request.data(), request.size()))
    return {};
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = util::read_eintr(fd.get(), buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  return response;
}

/// Everything one network ingest pass produces, across however many
/// daemon incarnations the faults forced.
struct IngestOutcome {
  net::FeedReport feed;
  std::string feed_error;
  int kills = 0;
  bool completed = false;
  std::uint64_t digest = 0;
  std::uint64_t shed = 0;
  std::array<std::uint64_t, stream::kRejectReasonCount> counts{};
  net::NetStats final_stats;       // of the last (surviving) server
  std::string metrics_body;        // mid-ingest /metrics scrape, if probed
};

/// Drives one full wire-protocol ingest of `stream_path`: a feed client on
/// its own thread (generous retry budget — it must survive daemon
/// restarts), the serve daemon chunk-ticking on this thread, and on every
/// injected kill a full teardown + recovery: new server bound to the SAME
/// port, new daemon recovered from snapshot+journal. The server is started
/// only after recovery has published the resume base, so a reconnecting
/// client can never see a stale hello watermark.
IngestOutcome run_net_ingest(const std::string& dir,
                             const std::string& stream_path,
                             std::uint64_t client_seed, bool with_probes) {
  IngestOutcome out;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::uint16_t port = 0;
  std::unique_ptr<net::NetServer> server;
  std::atomic<bool> client_done{false};
  std::thread client;
  std::optional<net::Fd> stalled;

  while (!out.completed && out.kills <= 8) {
    server = std::make_unique<net::NetServer>(make_net_config(port));
    stream::ServeConfig cfg = make_net_serve_config(dir);
    net::NetServer* srv = server.get();
    cfg.after_tick = [srv](stream::ServeDaemon& d) {
      if (srv->commit_pending()) {
        d.sync_journal();
        srv->publish_durable(d.journaled_watermark());
      }
    };
    stream::ServeDaemon daemon(cfg,
                               std::make_unique<net::SocketSource>(*server));
    try {
      daemon.recover();  // publishes the resume base — BEFORE listening
      server->start();
      if (port == 0) {
        port = server->port();
        net::FeedOptions fopts;
        fopts.port = port;
        fopts.retry.max_attempts = 200;
        fopts.retry.backoff_ms = 5.0;
        fopts.retry.multiplier = 1.0;  // flat: restarts are cheap, poll often
        fopts.retry.seed = client_seed;
        fopts.ack_timeout_ms = 2000.0;
        client = std::thread([&out, &client_done, fopts, stream_path] {
          try {
            out.feed = net::feed_file(stream_path, fopts);
          } catch (const std::exception& e) {
            out.feed_error = e.what();
          }
          client_done.store(true);
        });
        if (with_probes) {
          // A peer that connects and then says nothing: must be reaped,
          // and must not delay the ingest happening around it.
          stalled.emplace(net::connect_tcp("127.0.0.1", port));
          out.metrics_body = http_get(port, "/metrics");
        }
      }
      while (!client_done.load()) daemon.run_for(8);
      if (with_probes) {
        // Keep serving until the stalled peer hits its idle deadline.
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(5);
        while (server->stats().connections_reaped == 0 &&
               std::chrono::steady_clock::now() < deadline)
          daemon.run_for(4);
      }
      daemon.run_for(4);  // absorb any straggler items, then drain
      daemon.finish();
      out.digest = daemon.report().final_digest;
      out.shed = daemon.report().shed;
      out.counts = daemon.quarantine().counts();
      out.completed = true;
    } catch (const fp::InjectedKill&) {
      ++out.kills;
    } catch (const IoError&) {
      ++out.kills;  // torn journal write surfaces as an I/O crash
    }
    if (!out.completed) server->stop();
  }

  if (server != nullptr) {
    out.final_stats = server->stats();
    server->stop();
  }
  stalled.reset();
  if (client.joinable()) client.join();
  return out;
}

int run_net_soak(const SoakOptions& options) {
  const World world = make_world(options);
  const std::string stream_path = write_stream_input(world, options);

  // Uninterrupted batch replay of the same input: the digest every
  // network ingest must converge to, byte for byte.
  fp::clear();
  const std::string baseline_dir = options.work_dir + "/net_baseline";
  std::filesystem::remove_all(baseline_dir);
  std::filesystem::create_directories(baseline_dir);
  stream::ServeDaemon baseline_daemon(
      make_serve_config(baseline_dir),
      std::make_unique<stream::ReplaySource>(stream_path));
  const stream::ServeReport baseline = baseline_daemon.run();
  const auto baseline_counts = baseline_daemon.quarantine().counts();
  std::printf("net-soak: baseline lines=%llu quarantined=%llu "
              "digest=%016llx\n",
              static_cast<unsigned long long>(baseline.consumed_lines),
              static_cast<unsigned long long>(baseline.quarantined),
              static_cast<unsigned long long>(baseline.final_digest));
  if (!baseline.exhausted || baseline.quarantined != 4) {
    std::fprintf(stderr, "net-soak: baseline malformed\n");
    return 1;
  }

  std::vector<Violation> violations;
  const auto violation = [&](int run, std::string invariant,
                             std::string detail) {
    violations.push_back(
        Violation{run, std::move(invariant), std::move(detail)});
  };
  const auto check_converged = [&](int run, const IngestOutcome& out) {
    if (!out.feed_error.empty())
      violation(run, "liveness", "feed client died: " + out.feed_error);
    else if (!out.feed.committed ||
             out.feed.durable_watermark != baseline.consumed_lines)
      violation(run, "durability",
                "client commit not durably acked through " +
                    std::to_string(baseline.consumed_lines));
    if (out.digest != baseline.final_digest)
      violation(run, "resume-equivalence",
                "net-ingested digest diverged from batch replay");
    if (out.shed != 0)
      violation(run, "resume-equivalence", "kBlock run shed lines");
    if (out.counts != baseline_counts)
      violation(run, "quarantine-census",
                "quarantine counts diverged over the wire");
  };

  // ---- fault-free probe pass: stalled peer + mid-ingest scrape. ----
  {
    fp::clear();
    const IngestOutcome out = run_net_ingest(
        options.work_dir + "/net_probe", stream_path, options.seed, true);
    if (!out.completed) {
      violation(-1, "liveness", "probe ingest never completed");
    } else {
      check_converged(-1, out);
      if (out.final_stats.connections_reaped == 0)
        violation(-1, "idle-reaping", "stalled peer was never reaped");
      if (out.metrics_body.find("200 OK") == std::string::npos ||
          out.metrics_body.find("# TYPE") == std::string::npos ||
          out.metrics_body.find("net_frames_total") == std::string::npos)
        violation(-1, "scrape",
                  "/metrics mid-ingest was not parseable Prometheus text");
    }
    std::printf("net-soak: probe pass %s (reaped=%llu, scrape %zu bytes)\n",
                violations.empty() ? "converged" : "FAILED",
                static_cast<unsigned long long>(
                    out.final_stats.connections_reaped),
                out.metrics_body.size());
  }

  // ---- seeded fault runs. ----
  const std::uint64_t total_ticks = baseline.consumed_lines / 16 + 2;
  int interrupted_and_resumed = 0;
  std::uint64_t total_fired = 0;
  for (int run = 0; run < options.runs; ++run) {
    util::Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + 0xfeedULL +
                  static_cast<std::uint64_t>(run));
    fp::clear();
    std::string fault_name;
    fp::Config fault_cfg;
    bool expect_kill = false;       // daemon must die and be rebuilt
    bool expect_reconnect = false;  // client must reconnect and resume
    switch (run % 6) {
      case 0:  // daemon killed between commit points
        fault_name = "stream.tick.abort";
        fault_cfg.action = fp::Action::kError;
        fault_cfg.skip = static_cast<int>(rng.next_u64(total_ticks));
        fault_cfg.limit = 1;
        expect_kill = true;
        break;
      case 1:  // client send torn mid-frame
        fault_name = "net.feed.torn_send";
        fault_cfg.action = fp::Action::kTruncate;
        fault_cfg.skip =
            static_cast<int>(rng.next_u64(baseline.consumed_lines));
        fault_cfg.limit = 1;
        expect_reconnect = true;
        break;
      case 2:  // server drops the connection mid-stream
        fault_name = "net.conn.drop";
        fault_cfg.action = fp::Action::kError;
        // Evaluated once per live connection per poll iteration; a fast
        // feed only spans a few dozen iterations, so keep the skip small
        // enough that the drop lands while the connection exists.
        fault_cfg.skip = static_cast<int>(rng.next_u64(8));
        fault_cfg.limit = 1;
        expect_reconnect = true;
        break;
      case 3:  // server-side torn write (hello/ack desync)
        fault_name = "net.write.torn";
        fault_cfg.action = fp::Action::kTruncate;
        fault_cfg.limit = 1;
        expect_reconnect = true;
        break;
      case 4:  // transient accept(2) failure, absorbed by the backlog
        fault_name = "net.accept.fail";
        fault_cfg.action = fp::Action::kError;
        fault_cfg.limit = 1;
        break;
      default:  // sender stall: pure latency, behaviourally invisible
        fault_name = "net.feed.stall";
        fault_cfg.action = fp::Action::kLatency;
        fault_cfg.latency_ms = 1;
        fault_cfg.limit = 2;
        break;
    }
    fp::activate(fault_name, fault_cfg);

    const std::string dir =
        options.work_dir + "/net_run_" + std::to_string(run);
    const IngestOutcome out = run_net_ingest(
        dir, stream_path,
        options.seed + 0xc11e47ULL + static_cast<std::uint64_t>(run),
        false);
    if (!out.completed) {
      violation(run, "liveness", "kill budget never exhausted");
      continue;
    }
    if (out.kills > 0) ++interrupted_and_resumed;

    // ---- invariant: fault accounting — nothing fails silently. ----
    const std::uint64_t fired = fp::triggers(fault_name);
    total_fired += fired;
    if (fired == 0)
      violation(run, "fault-accounting", fault_name + " never fired");
    if (expect_kill && fired > 0 && out.kills == 0)
      violation(run, "fault-accounting",
                fault_name + " fired but the daemon never died");
    if (!expect_kill && out.kills != 0)
      violation(run, "fault-accounting",
                fault_name + " should not kill the daemon but did");
    // A disconnect fault that lands before the final ack forces the
    // client back for a retry; one that lands after it (ack delivered,
    // socket not yet closed) is invisible to the client by design. So the
    // trace is either a reconnect or an intact durable commit — a fired
    // disconnect with neither is silent loss.
    if (expect_reconnect && fired > 0 && out.feed.reconnects == 0 &&
        !(out.feed_error.empty() && out.feed.committed))
      violation(run, "fault-accounting",
                fault_name + " fired, no reconnect, and no durable commit");
    if (fault_name == "net.accept.fail" && fired > 0 &&
        out.final_stats.accept_failures == 0)
      violation(run, "fault-accounting",
                "accept failure fired but was not counted");

    // ---- invariant: convergence to the batch baseline. ----
    check_converged(run, out);
    std::filesystem::remove_all(dir);
  }

  fp::clear();
  std::printf("net-soak: %d/%d runs interrupted+resumed, %llu faults "
              "fired, %zu invariant violations\n",
              interrupted_and_resumed, options.runs,
              static_cast<unsigned long long>(total_fired),
              violations.size());
  for (const Violation& v : violations)
    std::fprintf(stderr, "violation (run %d, %s): %s\n", v.run,
                 v.invariant.c_str(), v.detail.c_str());
  if (total_fired == 0) {
    std::fprintf(stderr, "net-soak: no faults fired — schedule bug\n");
    return 1;
  }
  return violations.empty() ? 0 : 1;
}

// ---- store mode ----
//
// Soaks the SNAP -> columnar-store converter's atomicity discipline under
// seeded faults at its two kill points (a failed write before the rename,
// a process kill after the payload fsync but before the rename), half the
// time overwriting an existing valid store. Invariants per run:
//
//   1. the final path never holds a store that fails full validation —
//      it is either absent, or the byte-identical pre-existing store
//      (overwrite runs), never a torn new one;
//   2. tmp semantics match the fault: a kill leaves the .tmp behind
//      exactly like a dead process would, an I/O failure cleans it up;
//   3. a fault-free retry converges to the byte-identical baseline store.
int run_store_soak(const SoakOptions& options) {
  const World world = make_world(options);
  store::ConvertOptions convert_options;
  convert_options.sigma = 40;

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };

  // Fault-free baseline conversion; everything below must converge to
  // these bytes. The materialized dataset must round-trip the batch load.
  fp::clear();
  const std::string baseline_path = options.work_dir + "/baseline.fsst";
  const store::ConvertStats stats = store::convert_snap_to_store(
      world.checkins_path, world.edges_path, baseline_path, convert_options);
  const std::string baseline_bytes = slurp(baseline_path);
  std::printf("store-soak: baseline %zu rows, %zu bytes\n", stats.rows,
              baseline_bytes.size());
  {
    const store::MappedStore mapped = store::MappedStore::open(baseline_path);
    const data::Dataset ds = mapped.to_dataset();
    if (ds.checkin_count() != world.dataset.checkin_count() ||
        ds.friendships().edges() != world.dataset.friendships().edges()) {
      std::fprintf(stderr,
                   "store-soak: baseline store does not round-trip the "
                   "batch-loaded dataset\n");
      return 1;
    }
  }

  std::vector<Violation> violations;
  const auto violation = [&](int run, std::string invariant,
                             std::string detail) {
    violations.push_back(
        Violation{run, std::move(invariant), std::move(detail)});
  };

  const std::string path = options.work_dir + "/soak.fsst";
  const std::string tmp = path + ".tmp";
  int kills = 0, io_faults = 0;
  for (int run = 0; run < options.runs; ++run) {
    util::Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + 0x5704eULL +
                  static_cast<std::uint64_t>(run));
    const bool kill = rng.uniform() < 0.5;
    const bool overwrite = rng.uniform() < 0.5;
    std::filesystem::remove(path);
    std::filesystem::remove(tmp);
    if (overwrite)
      std::filesystem::copy_file(baseline_path, path);
    (kill ? kills : io_faults)++;

    fp::activate(kill ? "store.convert.kill" : "store.convert.io",
                 fp::Action::kError, 1);
    bool threw_expected = false;
    try {
      store::convert_snap_to_store(world.checkins_path, world.edges_path,
                                   path, convert_options);
    } catch (const fp::InjectedKill&) {
      threw_expected = kill;
    } catch (const IoError&) {
      threw_expected = !kill;
    }
    fp::clear();
    if (!threw_expected)
      violation(run, "fault-surfacing",
                "the scheduled fault did not surface as the right error");

    // Invariant 1: the final path never validates as a torn new store.
    if (std::filesystem::exists(path)) {
      if (!overwrite) {
        violation(run, "atomicity",
                  "final path appeared although the rename never ran");
      } else {
        try {
          store::MappedStore::open(path);  // Verify::kFull
        } catch (const std::exception& e) {
          violation(run, "atomicity",
                    std::string("pre-existing store no longer validates: ") +
                        e.what());
        }
        if (slurp(path) != baseline_bytes)
          violation(run, "atomicity",
                    "pre-existing store bytes changed under a faulted "
                    "conversion");
      }
    } else if (overwrite) {
      violation(run, "atomicity",
                "faulted conversion deleted the pre-existing store");
    }

    // Invariant 2: tmp semantics match the fault kind.
    const bool tmp_left = std::filesystem::exists(tmp);
    if (kill && !tmp_left)
      violation(run, "tmp-semantics",
                "a kill before the rename should leave the .tmp behind");
    if (!kill && tmp_left)
      violation(run, "tmp-semantics",
                "an I/O failure should have cleaned up the .tmp");

    // Invariant 3: the retry converges to the baseline bytes (the stray
    // tmp from a kill must not get in its way, just like a real restart).
    try {
      store::convert_snap_to_store(world.checkins_path, world.edges_path,
                                   path, convert_options);
    } catch (const std::exception& e) {
      violation(run, "retry-convergence",
                std::string("fault-free retry failed: ") + e.what());
      continue;
    }
    if (slurp(path) != baseline_bytes)
      violation(run, "retry-convergence",
                "retry produced different store bytes than the baseline");
    if (std::filesystem::exists(tmp))
      violation(run, "retry-convergence", "retry left a .tmp behind");
  }

  std::printf("store-soak: %d runs (%d kills, %d io faults), %zu invariant "
              "violations\n",
              options.runs, kills, io_faults, violations.size());
  for (const Violation& v : violations)
    std::fprintf(stderr, "  run %d: [%s] %s\n", v.run, v.invariant.c_str(),
                 v.detail.c_str());
  return violations.empty() ? 0 : 1;
}

int run_budget_mode(const SoakOptions& options) {
  const World world = make_world(options);
  int failures = 0;
  const auto expect = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "budget-mode expectation failed: %s\n", what);
      ++failures;
    }
  };

  const auto attack = [&](core::FriendSeekerConfig cfg) {
    core::FriendSeeker seeker(cfg);
    return seeker.run(world.dataset, world.split.train_pairs,
                      world.split.train_labels, world.split.test_pairs);
  };

  // Probe the phase-1 footprint, then allow just that much: phase 2 must
  // degrade to the last-good (phase-1) graph instead of dying.
  runtime::ExecutionContext probe;
  core::FriendSeekerConfig probe_cfg = world.config;
  probe_cfg.context = &probe;
  probe_cfg.iterate = false;
  (void)attack(probe_cfg);
  expect(probe.peak_charged() > 0, "probe charged no memory");

  runtime::ExecutionContext capped;
  capped.set_memory_limit(probe.peak_charged() + 1024);
  core::FriendSeekerConfig capped_cfg = world.config;
  capped_cfg.context = &capped;
  const core::FriendSeekerResult capped_result = attack(capped_cfg);
  expect(capped_result.degradation.degraded(),
         "memory-capped run reported no degradation");
  expect(!capped_result.degradation.phases.empty() &&
             capped_result.degradation.phases.front().reason == "memory",
         "memory-capped run did not degrade on the memory budget");
  expect(capped_result.test_predictions.size() ==
             world.split.test_pairs.size(),
         "memory-capped run returned no last-good predictions");
  std::printf("budget-mode: memory-capped run degraded as expected:\n%s\n",
              capped_result.degradation.to_string().c_str());

  // A spent phase-2 deadline truncates at the first iteration boundary.
  runtime::ExecutionContext timed;
  core::FriendSeekerConfig timed_cfg = world.config;
  timed_cfg.context = &timed;
  timed_cfg.phase2_budget_sec = 1e-9;
  const core::FriendSeekerResult timed_result = attack(timed_cfg);
  expect(timed_result.degradation.degraded() &&
             timed_result.degradation.phases.front().reason == "deadline",
         "deadline-capped run did not degrade on the deadline");
  expect(timed_result.iterations_run == 0,
         "deadline-capped run still iterated");

  // The iteration cap on a governed run is reported, not silent.
  runtime::ExecutionContext iter_ctx;
  core::FriendSeekerConfig iter_cfg = world.config;
  iter_cfg.context = &iter_ctx;
  iter_cfg.max_iterations = 1;
  const core::FriendSeekerResult iter_result = attack(iter_cfg);
  expect(iter_result.degradation.degraded() &&
             iter_result.degradation.phases.front().reason == "iterations",
         "iteration-capped run did not report the cap");

  std::printf("budget-mode: %s\n",
              failures == 0 ? "all degradation paths verified"
                            : "FAILED");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args;
  args.add_option("runs", "25", "number of seeded chaos runs");
  args.add_option("seed", "1", "schedule stream seed");
  args.add_option("users", "90", "synthetic world size");
  args.add_option("work-dir", "", "scratch directory (default: a temp dir)");
  args.add_option("threads", "0",
                  "worker threads for parallel regions (0 = FS_THREADS env "
                  "or hardware concurrency)");
  args.add_flag("budget-mode",
                "verify graceful degradation under memory/deadline budgets "
                "instead of running the soak");
  args.add_flag("stream-mode",
                "soak the serve/streaming path: seeded mid-stream kills, "
                "torn journal writes, open failures, digest convergence");
  args.add_flag("net-mode",
                "soak the socket front end: a real feed client under "
                "daemon kills, torn sends, dropped connections, accept "
                "failures; digest convergence to the batch baseline");
  args.add_flag("store-mode",
                "soak the SNAP->store converter's atomic tmp+rename under "
                "seeded kill/IO faults: the final path never holds a store "
                "that fails validation, and retries converge byte-for-byte");
  args.add_flag("help", "show options");
  try {
    args.parse(argc, argv, 1);
    if (args.get_flag("help")) {
      std::fprintf(stderr, "usage: chaos_soak [options]\n%s",
                   args.help().c_str());
      return 0;
    }
    par::set_threads(static_cast<std::size_t>(args.get_int("threads")));
    SoakOptions options;
    options.runs = static_cast<int>(args.get_int("runs"));
    options.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    options.users = static_cast<std::size_t>(args.get_int("users"));
    options.work_dir = args.get("work-dir");
    if (options.work_dir.empty())
      options.work_dir =
          (std::filesystem::temp_directory_path() / "fs_chaos_soak")
              .string();
    std::filesystem::create_directories(options.work_dir);
    if (args.get_flag("budget-mode")) return run_budget_mode(options);
    if (args.get_flag("stream-mode")) return run_stream_soak(options);
    if (args.get_flag("net-mode")) return run_net_soak(options);
    if (args.get_flag("store-mode")) return run_store_soak(options);
    return run_soak(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaos_soak: %s\n", e.what());
    return 1;
  }
}
