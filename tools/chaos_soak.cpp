// chaos_soak — randomized, seeded fault-injection soak for the FriendSeeker
// pipeline.
//
//   chaos_soak [--runs N] [--seed S] [--users U] [--budget-mode] [--help]
//
// Soak mode (the default) generates a small synthetic world, runs one
// uninterrupted baseline attack, then replays the same attack N times under
// seeded failpoint schedules drawn from the compiled-in registry: injected
// kills at iteration boundaries (resumed from the on-disk checkpoint),
// checkpoint save/rename/load faults, transient loader I/O failures,
// latency injection, and NaN-poisoned training. After every run it checks
// three invariants:
//
//   1. resume-equivalence — runs whose faults are all equivalence-preserving
//      (kills, checkpoint I/O faults, retried opens, latency) end
//      byte-identical to the baseline;
//   2. no partial checkpoint files — a checkpoint.fsck.tmp must never
//      survive any attempt, killed or not;
//   3. fault accounting — every fault that fired maps to an observed kill,
//      a diagnostics entry, or is latency-only; nothing fails silently.
//
// Budget mode (--budget-mode) instead exercises graceful degradation:
// memory-capped and deadline-capped runs must complete with exit status 0,
// a last-good result, and a populated DegradationReport.
//
// The schedule stream is fully determined by --seed, so a CI failure
// reproduces locally with the same flags.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "data/loader.h"
#include "data/synthetic.h"
#include "eval/pairs.h"
#include "graph/metrics.h"
#include "par/pool.h"
#include "util/args.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/runtime.h"

namespace {

using namespace fs;
namespace fp = util::failpoint;

struct ScheduledFault {
  std::string name;
  fp::Config config;
};

struct Schedule {
  std::vector<ScheduledFault> faults;
  bool has_kill = false;
  bool perturbs_model = false;  // NaN faults change the trained model
};

struct SoakOptions {
  int runs = 25;
  std::uint64_t seed = 1;
  std::size_t users = 90;
  std::string work_dir;
};

struct Violation {
  int run = 0;
  std::string invariant;
  std::string detail;
};

struct World {
  data::Dataset dataset;
  eval::PairSplit split;
  core::FriendSeekerConfig config;
  std::string checkins_path;
  std::string edges_path;
};

World make_world(const SoakOptions& options) {
  data::SyntheticWorldConfig world_cfg;
  world_cfg.user_count = options.users;
  world_cfg.poi_count = options.users * 3;
  world_cfg.city_count = 3;
  world_cfg.weeks = 4;
  world_cfg.seed = 9;
  const auto generated = data::generate_world(world_cfg);

  World world;
  world.checkins_path = options.work_dir + "/checkins.txt";
  world.edges_path = options.work_dir + "/edges.txt";
  data::save_checkins_snap(generated.dataset, world.checkins_path,
                           world.edges_path);
  // Reload from disk so every soak run (which reloads under fault
  // injection) sees the identical post-densification dataset.
  world.dataset =
      data::load_checkins_snap(world.checkins_path, world.edges_path);
  world.split =
      eval::split_pairs(eval::sample_candidate_pairs(world.dataset), 0.7, 5);

  core::FriendSeekerConfig cfg;
  cfg.sigma = 50;
  cfg.presence.feature_dim = 12;
  cfg.presence.epochs = 3;
  cfg.presence.max_autoencoder_rows = 120;
  cfg.max_iterations = 4;
  // Never converge early: a fixed iteration count makes kill schedules
  // cover every boundary and keeps run time predictable.
  cfg.convergence_threshold = 0.0;
  world.config = cfg;
  return world;
}

/// One seeded schedule. Kill runs inject `pipeline.iteration.abort` plus
/// (sometimes) an equivalence-preserving checkpoint or loader fault, timed
/// so its evidence lands in the final (surviving) attempt's diagnostics.
/// Every sixth run is instead a model-perturbing NaN run.
Schedule make_schedule(int run_index, const SoakOptions& options,
                       int max_iterations) {
  util::Rng rng(options.seed * 0x9e3779b97f4a7c15ULL +
                static_cast<std::uint64_t>(run_index));
  Schedule schedule;
  if (run_index % 6 == 5) {
    // NaN run: poison one training step; the pipeline retries or degrades.
    schedule.perturbs_model = true;
    ScheduledFault fault;
    fault.name = rng.uniform() < 0.5 ? "nn.train.nan" : "ml.svm.nan";
    fault.config.action = fp::Action::kNan;
    fault.config.limit = 1;
    schedule.faults.push_back(fault);
    return schedule;
  }

  schedule.has_kill = true;
  const int kill_after =
      1 + static_cast<int>(
              rng.next_u64(static_cast<std::uint64_t>(max_iterations)));
  ScheduledFault kill;
  kill.name = "pipeline.iteration.abort";
  kill.config.action = fp::Action::kError;
  kill.config.skip = kill_after - 1;
  kill.config.limit = 1;
  schedule.faults.push_back(kill);

  const double extra = rng.uniform();
  if (extra < 0.25 && kill_after < max_iterations) {
    // A checkpoint save fault timed to fire in the post-kill attempt, so
    // the surviving result's diagnostics carry the evidence.
    ScheduledFault save;
    save.name = rng.uniform() < 0.5 ? "checkpoint.save.io"
                                    : "checkpoint.save.rename";
    save.config.action = fp::Action::kError;
    save.config.skip =
        kill_after +
        static_cast<int>(rng.next_u64(
            static_cast<std::uint64_t>(max_iterations - kill_after)));
    save.config.limit = 1;
    schedule.faults.push_back(save);
  } else if (extra < 0.5) {
    // The resume load sees a torn checkpoint and restarts from phase 1.
    ScheduledFault torn;
    torn.name = "checkpoint.load.truncate";
    torn.config.action = fp::Action::kTruncate;
    torn.config.limit = 1;
    schedule.faults.push_back(torn);
  } else if (extra < 0.75) {
    // Transient open failure, absorbed by the loader's retry policy.
    ScheduledFault open_fault;
    open_fault.name = "data.load.open";
    open_fault.config.action = fp::Action::kError;
    open_fault.config.limit = 1;
    schedule.faults.push_back(open_fault);
  } else {
    // Pure latency: must be behaviourally invisible.
    ScheduledFault latency;
    latency.name = "data.load.open";
    latency.config.action = fp::Action::kLatency;
    latency.config.latency_ms = 1;
    latency.config.limit = 2;
    schedule.faults.push_back(latency);
  }
  return schedule;
}

std::size_t count_diagnostics(const util::Diagnostics& diagnostics,
                              const char* needle) {
  std::size_t hits = 0;
  for (const auto& entry : diagnostics.entries())
    if (entry.message.find(needle) != std::string::npos) ++hits;
  return hits;
}

bool scores_identical(const std::vector<double>& a,
                      const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

int run_soak(const SoakOptions& options) {
  const World world = make_world(options);
  std::printf("chaos_soak: world users=%zu pairs=%zu seed=%llu runs=%d\n",
              world.dataset.user_count(),
              world.split.train_pairs.size() + world.split.test_pairs.size(),
              static_cast<unsigned long long>(options.seed), options.runs);

  core::FriendSeeker baseline_seeker(world.config);
  const core::FriendSeekerResult baseline = baseline_seeker.run(
      world.dataset, world.split.train_pairs, world.split.train_labels,
      world.split.test_pairs);
  std::printf("chaos_soak: baseline iterations=%d edges=%zu\n",
              baseline.iterations_run, baseline.final_graph.edge_count());

  std::vector<Violation> violations;
  const auto violation = [&](int run, std::string invariant,
                             std::string detail) {
    violations.push_back(
        Violation{run, std::move(invariant), std::move(detail)});
  };

  int interrupted_and_resumed = 0;
  std::uint64_t total_fired = 0;
  for (int run = 0; run < options.runs; ++run) {
    const Schedule schedule =
        make_schedule(run, options, world.config.max_iterations);
    const std::string checkpoint_dir =
        options.work_dir + "/run_" + std::to_string(run);
    std::filesystem::remove_all(checkpoint_dir);

    fp::clear();
    for (const ScheduledFault& fault : schedule.faults)
      fp::activate(fault.name, fault.config);

    core::FriendSeekerConfig cfg = world.config;
    cfg.checkpoint_dir = checkpoint_dir;
    util::Diagnostics loader_diagnostics;  // survives killed attempts

    int kills = 0;
    bool completed = false;
    core::FriendSeekerResult result;
    while (!completed) {
      const auto check_no_partial = [&] {
        if (std::filesystem::exists(checkpoint_dir + "/checkpoint.fsck.tmp"))
          violation(run, "no-partial-checkpoint",
                    "stray checkpoint.fsck.tmp after attempt");
      };
      try {
        // Reload from disk each attempt: loader faults (retried opens,
        // latency) are part of the schedule.
        data::LoadOptions load_options;
        load_options.diagnostics = &loader_diagnostics;
        const data::Dataset dataset = data::load_checkins_snap(
            world.checkins_path, world.edges_path, load_options);
        core::FriendSeeker seeker(cfg);
        result = seeker.run(dataset, world.split.train_pairs,
                            world.split.train_labels, world.split.test_pairs);
        completed = true;
        check_no_partial();
      } catch (const fp::InjectedKill&) {
        ++kills;
        check_no_partial();
        if (kills > 8) {
          violation(run, "liveness", "kill budget never exhausted");
          break;
        }
        cfg.resume = true;  // come back from the on-disk checkpoint
      } catch (const std::exception& e) {
        violation(run, "liveness",
                  std::string("run died on un-degradable fault: ") +
                      e.what());
        break;
      }
    }
    if (!completed) continue;
    if (kills > 0) ++interrupted_and_resumed;

    // ---- invariant: every fired fault is accounted for. ----
    for (const ScheduledFault& fault : schedule.faults) {
      const std::uint64_t fired = fp::triggers(fault.name);
      total_fired += fired;
      if (fired == 0) continue;
      bool accounted = false;
      std::string evidence;
      if (fault.name == "pipeline.iteration.abort") {
        accounted = static_cast<std::uint64_t>(kills) == fired;
        evidence = std::to_string(kills) + " observed kills";
      } else if (fault.config.action == fp::Action::kLatency) {
        accounted = true;  // latency is delay-only by contract
      } else if (fault.name == "data.load.open") {
        accounted = count_diagnostics(loader_diagnostics, "retrying") >=
                    fired;
        evidence = "loader retry diagnostics";
      } else if (fault.name == "checkpoint.save.io" ||
                 fault.name == "checkpoint.save.rename") {
        accounted = count_diagnostics(result.diagnostics,
                                      "checkpoint save failed") >= fired;
        evidence = "pipeline save-failure diagnostics";
      } else if (fault.name == "checkpoint.load.truncate") {
        accounted =
            count_diagnostics(result.diagnostics, "cannot resume") >= fired;
        evidence = "pipeline rejected-checkpoint diagnostics";
      } else if (fault.name == "nn.train.nan" ||
                 fault.name == "ml.svm.nan") {
        for (const auto& entry : result.diagnostics.entries())
          if (entry.code == ErrorCode::kNumeric ||
              entry.code == ErrorCode::kConvergence)
            accounted = true;
        evidence = "numeric-degradation diagnostics";
      }
      if (!accounted)
        violation(run, "fault-accounting",
                  fault.name + " fired " + std::to_string(fired) +
                      "x but left no trace (" + evidence + ")");
    }

    // ---- invariant: equivalence-preserving runs match the baseline. ----
    if (!schedule.perturbs_model) {
      if (result.test_predictions != baseline.test_predictions)
        violation(run, "resume-equivalence", "test predictions diverged");
      if (!scores_identical(result.test_scores, baseline.test_scores))
        violation(run, "resume-equivalence",
                  "test scores are not byte-identical");
      if (graph::edge_change_ratio(result.final_graph,
                                   baseline.final_graph) != 0.0)
        violation(run, "resume-equivalence", "final graph diverged");
    }

    std::filesystem::remove_all(checkpoint_dir);
  }

  fp::clear();
  std::printf("chaos_soak: %d/%d runs interrupted+resumed, %llu faults "
              "fired, %zu invariant violations\n",
              interrupted_and_resumed, options.runs,
              static_cast<unsigned long long>(total_fired),
              violations.size());
  for (const Violation& v : violations)
    std::fprintf(stderr, "violation (run %d, %s): %s\n", v.run,
                 v.invariant.c_str(), v.detail.c_str());
  if (total_fired == 0) {
    std::fprintf(stderr, "chaos_soak: no faults fired — schedule bug\n");
    return 1;
  }
  return violations.empty() ? 0 : 1;
}

int run_budget_mode(const SoakOptions& options) {
  const World world = make_world(options);
  int failures = 0;
  const auto expect = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "budget-mode expectation failed: %s\n", what);
      ++failures;
    }
  };

  const auto attack = [&](core::FriendSeekerConfig cfg) {
    core::FriendSeeker seeker(cfg);
    return seeker.run(world.dataset, world.split.train_pairs,
                      world.split.train_labels, world.split.test_pairs);
  };

  // Probe the phase-1 footprint, then allow just that much: phase 2 must
  // degrade to the last-good (phase-1) graph instead of dying.
  runtime::ExecutionContext probe;
  core::FriendSeekerConfig probe_cfg = world.config;
  probe_cfg.context = &probe;
  probe_cfg.iterate = false;
  (void)attack(probe_cfg);
  expect(probe.peak_charged() > 0, "probe charged no memory");

  runtime::ExecutionContext capped;
  capped.set_memory_limit(probe.peak_charged() + 1024);
  core::FriendSeekerConfig capped_cfg = world.config;
  capped_cfg.context = &capped;
  const core::FriendSeekerResult capped_result = attack(capped_cfg);
  expect(capped_result.degradation.degraded(),
         "memory-capped run reported no degradation");
  expect(!capped_result.degradation.phases.empty() &&
             capped_result.degradation.phases.front().reason == "memory",
         "memory-capped run did not degrade on the memory budget");
  expect(capped_result.test_predictions.size() ==
             world.split.test_pairs.size(),
         "memory-capped run returned no last-good predictions");
  std::printf("budget-mode: memory-capped run degraded as expected:\n%s\n",
              capped_result.degradation.to_string().c_str());

  // A spent phase-2 deadline truncates at the first iteration boundary.
  runtime::ExecutionContext timed;
  core::FriendSeekerConfig timed_cfg = world.config;
  timed_cfg.context = &timed;
  timed_cfg.phase2_budget_sec = 1e-9;
  const core::FriendSeekerResult timed_result = attack(timed_cfg);
  expect(timed_result.degradation.degraded() &&
             timed_result.degradation.phases.front().reason == "deadline",
         "deadline-capped run did not degrade on the deadline");
  expect(timed_result.iterations_run == 0,
         "deadline-capped run still iterated");

  // The iteration cap on a governed run is reported, not silent.
  runtime::ExecutionContext iter_ctx;
  core::FriendSeekerConfig iter_cfg = world.config;
  iter_cfg.context = &iter_ctx;
  iter_cfg.max_iterations = 1;
  const core::FriendSeekerResult iter_result = attack(iter_cfg);
  expect(iter_result.degradation.degraded() &&
             iter_result.degradation.phases.front().reason == "iterations",
         "iteration-capped run did not report the cap");

  std::printf("budget-mode: %s\n",
              failures == 0 ? "all degradation paths verified"
                            : "FAILED");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args;
  args.add_option("runs", "25", "number of seeded chaos runs");
  args.add_option("seed", "1", "schedule stream seed");
  args.add_option("users", "90", "synthetic world size");
  args.add_option("work-dir", "", "scratch directory (default: a temp dir)");
  args.add_option("threads", "0",
                  "worker threads for parallel regions (0 = FS_THREADS env "
                  "or hardware concurrency)");
  args.add_flag("budget-mode",
                "verify graceful degradation under memory/deadline budgets "
                "instead of running the soak");
  args.add_flag("help", "show options");
  try {
    args.parse(argc, argv, 1);
    if (args.get_flag("help")) {
      std::fprintf(stderr, "usage: chaos_soak [options]\n%s",
                   args.help().c_str());
      return 0;
    }
    par::set_threads(static_cast<std::size_t>(args.get_int("threads")));
    SoakOptions options;
    options.runs = static_cast<int>(args.get_int("runs"));
    options.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    options.users = static_cast<std::size_t>(args.get_int("users"));
    options.work_dir = args.get("work-dir");
    if (options.work_dir.empty())
      options.work_dir =
          (std::filesystem::temp_directory_path() / "fs_chaos_soak")
              .string();
    std::filesystem::create_directories(options.work_dir);
    return args.get_flag("budget-mode") ? run_budget_mode(options)
                                        : run_soak(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaos_soak: %s\n", e.what());
    return 1;
  }
}
