// feed_client — replays a SNAP check-in file over the fs::net wire
// protocol to a running `friendseeker serve --listen` daemon.
//
//   feed_client CHECKINS.txt --connect 127.0.0.1:7071
//       [--no-commit] [--retries N] [--backoff-ms MS] [--ack-timeout-ms MS]
//       [--seed N]
//
// Disconnects (including injected torn sends via FS_FAILPOINTS) are
// absorbed by reconnecting under a RetryPolicy and resuming from the
// server's hello watermark. Exit 0 once everything sent is durably acked
// (or sent, with --no-commit); exit 1 when the retry budget runs out.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "net/feed.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: feed_client CHECKINS.txt --connect HOST:PORT [--no-commit]\n"
      "                   [--retries N] [--backoff-ms MS]\n"
      "                   [--ack-timeout-ms MS] [--seed N]\n");
}

bool parse_endpoint(const std::string& text, std::string& host,
                    std::uint16_t& port) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos) return false;
  host = text.substr(0, colon);
  const long long value = fs::util::parse_int(text.substr(colon + 1));
  if (value < 1 || value > 65535) return false;
  port = static_cast<std::uint16_t>(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  fs::net::FeedOptions options;
  options.retry.max_attempts = 8;
  options.retry.backoff_ms = 50.0;
  bool have_endpoint = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--connect") {
      if (!parse_endpoint(next(), options.host, options.port)) {
        std::fprintf(stderr, "feed_client: bad --connect endpoint\n");
        return 2;
      }
      have_endpoint = true;
    } else if (arg == "--no-commit") {
      options.commit = false;
    } else if (arg == "--retries") {
      options.retry.max_attempts =
          static_cast<int>(fs::util::parse_int(next()));
    } else if (arg == "--backoff-ms") {
      options.retry.backoff_ms = fs::util::parse_double(next());
    } else if (arg == "--ack-timeout-ms") {
      options.ack_timeout_ms = fs::util::parse_double(next());
    } else if (arg == "--seed") {
      options.retry.seed =
          static_cast<std::uint64_t>(fs::util::parse_int(next()));
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] != '-' && input.empty()) {
      input = arg;
    } else {
      std::fprintf(stderr, "feed_client: unknown argument '%s'\n",
                   arg.c_str());
      usage();
      return 2;
    }
  }
  if (input.empty() || !have_endpoint) {
    usage();
    return 2;
  }

  fs::util::failpoint::init_from_env();
  try {
    const auto report = fs::net::feed_file(input, options);
    const std::string tail =
        report.committed ? ", durable through ordinal " +
                               std::to_string(report.durable_watermark)
                         : ", not committed";
    std::printf("feed_client: %llu lines, %llu sent (%llu reconnects)%s\n",
                static_cast<unsigned long long>(report.lines_total),
                static_cast<unsigned long long>(report.lines_sent),
                static_cast<unsigned long long>(report.reconnects),
                tail.c_str());
    return 0;
  } catch (const fs::Error& error) {
    std::fprintf(stderr, "feed_client: %s\n", error.what());
    return 1;
  }
}
